//! Checkpoint/restore: serialize a mid-run machine into a versioned
//! binary snapshot and rebuild a bit-identical session from it.
//!
//! A [`Snapshot`] captures the **canonical** machine state — everything
//! the paper's machine physically holds: token queues and acknowledge
//! slots on every arc (with their delivery/expiry times), per-cell
//! source/generator cursors, firing counters, accumulated outputs and
//! emission times, the step clock, and the watchdog's progress
//! bookkeeping. It deliberately does *not* capture the event-driven
//! scheduler's wakeup wheels: those are an optimization artifact of one
//! kernel, fully implied by the canonical state. Restore re-seeds the
//! wheels from the in-flight packets (see [`crate::scheduler`]'s resume
//! notes), which is what makes a snapshot **kernel-neutral** — a
//! checkpoint taken under [`Kernel::Scan`] resumes under
//! [`Kernel::EventDriven`] (and vice versa) and the continued run is
//! bit-identical to an uninterrupted one.
//!
//! On-disk format (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic "VALPSNAP"
//!      8     4  format version (currently 1)
//!     12     8  program fingerprint (Graph::fingerprint)
//!     20     8  instruction time of the checkpoint
//!     28     8  payload length in bytes
//!     36     8  FNV-1a 64 checksum of the payload
//!     44     8  FNV-1a 64 checksum of bytes 0..44
//!     52     …  payload
//! ```
//!
//! Loading is corruption-tolerant: a truncated, garbled, or foreign file
//! yields a typed [`SnapshotError`], never a panic. The fingerprint
//! refuses to restore a snapshot onto a different program than the one
//! it was taken from. Maps are serialized in sorted key order and
//! acknowledge-slot lists sorted by expiry, so the same machine state
//! always produces the same bytes, whichever kernel produced it.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use valpipe_ir::graph::Graph;
use valpipe_ir::opcode::Opcode;
use valpipe_ir::value::Value;
use valpipe_util::checksum64;

use crate::fault::{CellFreeze, FaultPlan, LinkFault};
use crate::scheduler::{Kernel, Scheduler};
use crate::session::SimConfig;
use crate::sim::{ArcDelays, ArcState, Cells, ResourceModel, Simulator, StepScratch, StopSlots};
use crate::watchdog::{ProgressTracker, WatchdogConfig};

/// Leading bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"VALPSNAP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

const HEADER_LEN: usize = 52;

/// Why a snapshot could not be loaded or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not begin with the snapshot magic.
    NotASnapshot,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ends before the header or payload does.
    Truncated,
    /// The header checksum does not match (garbled header).
    HeaderChecksum,
    /// The payload checksum does not match (garbled payload).
    PayloadChecksum,
    /// The snapshot was taken from a different program graph.
    ProgramMismatch {
        /// Fingerprint of the graph handed to restore.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// The payload disagrees with the graph's shape (cell/arc counts,
    /// port names) despite a matching fingerprint.
    ShapeMismatch(String),
    /// The payload is structurally invalid (bad tag, count, or bound).
    Malformed(String),
    /// Reading or writing the snapshot file failed.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::NotASnapshot => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot format version {v} not supported (this build reads {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::HeaderChecksum => write!(f, "snapshot header checksum mismatch"),
            SnapshotError::PayloadChecksum => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::ProgramMismatch { expected, found } => write!(
                f,
                "snapshot was taken from a different program (graph fingerprint {expected:#018x}, snapshot has {found:#018x})"
            ),
            SnapshotError::ShapeMismatch(msg) => write!(f, "snapshot shape mismatch: {msg}"),
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot payload: {msg}"),
            SnapshotError::Io(msg) => write!(f, "snapshot i/o failed: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A validated snapshot of a mid-run machine.
///
/// Construction validates the header and both checksums, so a held
/// `Snapshot` is known-intact; restoring onto a graph additionally
/// validates the program fingerprint and every structural bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// The raw snapshot bytes (header + payload).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Validate header magic, version, and both checksums.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() || bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::NotASnapshot);
        }
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        let stored_header_sum = read_u64_at(&bytes, 44);
        if checksum64(&bytes[..44]) != stored_header_sum {
            return Err(SnapshotError::HeaderChecksum);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let payload_len = read_u64_at(&bytes, 28) as usize;
        match (bytes.len() - HEADER_LEN).cmp(&payload_len) {
            std::cmp::Ordering::Less => return Err(SnapshotError::Truncated),
            std::cmp::Ordering::Greater => {
                return Err(SnapshotError::Malformed(
                    "trailing bytes after payload".into(),
                ))
            }
            std::cmp::Ordering::Equal => {}
        }
        if checksum64(&bytes[HEADER_LEN..]) != read_u64_at(&bytes, 36) {
            return Err(SnapshotError::PayloadChecksum);
        }
        Ok(Snapshot { bytes })
    }

    /// Load and validate a snapshot file.
    pub fn read_from(path: impl AsRef<std::path::Path>) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::from_bytes(bytes)
    }

    /// Write the snapshot to `path` atomically (temporary file + rename),
    /// so a crash mid-write cannot clobber an existing good checkpoint.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &self.bytes).map_err(|e| SnapshotError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    /// Delete stale `*.tmp` files under `dir` — the droppings of a crash
    /// that landed between a checkpoint's temporary-file write and its
    /// atomic rename. Returns the file names removed (sorted, for
    /// deterministic reporting). Call on startup before trusting a
    /// checkpoint/hibernation directory; completed snapshots are never
    /// touched, because a finished write has already renamed its
    /// temporary away. A missing directory sweeps nothing.
    pub fn sweep_stale_tmp(dir: impl AsRef<std::path::Path>) -> Result<Vec<String>, SnapshotError> {
        let dir = dir.as_ref();
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(SnapshotError::Io(e.to_string())),
        };
        let mut removed = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| SnapshotError::Io(e.to_string()))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") && entry.file_type().is_ok_and(|t| t.is_file()) {
                std::fs::remove_file(entry.path()).map_err(|e| SnapshotError::Io(e.to_string()))?;
                removed.push(name.to_string());
            }
        }
        removed.sort();
        Ok(removed)
    }

    /// Snapshot format version.
    pub fn version(&self) -> u32 {
        u32::from_le_bytes(self.bytes[8..12].try_into().unwrap())
    }

    /// Fingerprint of the program the snapshot was taken from.
    pub fn fingerprint(&self) -> u64 {
        read_u64_at(&self.bytes, 12)
    }

    /// Instruction time at which the checkpoint was taken.
    pub fn step(&self) -> u64 {
        read_u64_at(&self.bytes, 20)
    }

    /// Serialize the complete state of a mid-run machine.
    pub(crate) fn capture(sim: &Simulator<'_>) -> Snapshot {
        let mut w = Writer::default();
        encode_config(&mut w, &sim.cfg);
        w.u64(sim.now);
        w.u64(sim.idle);
        let (a, b, c) = sim.tracker.state();
        w.u64(a);
        w.u64(b);
        w.u64(c);
        w.u64(sim.am_fires);
        w.u64(sim.fu_fires);

        let n = sim.g.nodes.len();
        w.u64(n as u64);
        for &p in &sim.cells.src_pos {
            w.u64(p as u64);
        }
        for v in [
            &sim.cells.ctl_pos,
            &sim.cells.fires,
            &sim.cells.gate_passes,
            &sim.cells.gate_discards,
        ] {
            for &x in v.iter() {
                w.u64(x);
            }
        }
        for d in &sim.cells.src_data {
            w.opt(d.as_ref(), |w, data| {
                w.u64(data.len() as u64);
                for v in data.iter() {
                    w.value(*v);
                }
            });
        }
        w.opt(sim.cells.fire_times.as_ref(), |w, ft| {
            for times in ft.iter() {
                w.u64(times.len() as u64);
                for &t in times.iter() {
                    w.u64(t);
                }
            }
        });

        // Port slots serialize in sorted-name order — the same bytes the
        // name-keyed maps produced before the slot layout.
        let mut sinks: Vec<_> = sim.cells.outputs.iter().collect();
        sinks.sort_by(|a, b| a.0.cmp(&b.0));
        w.u64(sinks.len() as u64);
        for (name, packets) in sinks {
            w.string(name);
            w.u64(packets.len() as u64);
            for &(t, v) in packets {
                w.u64(t);
                w.value(v);
            }
        }
        let mut sources: Vec<_> = sim.cells.emit_times.iter().collect();
        sources.sort_by(|a, b| a.0.cmp(&b.0));
        w.u64(sources.len() as u64);
        for (name, times) in sources {
            w.string(name);
            w.u64(times.len() as u64);
            for &t in times {
                w.u64(t);
            }
        }

        w.u64(sim.arcs.len() as u64);
        for st in &sim.arcs {
            w.u64(st.queue.len() as u64);
            for &(v, t) in &st.queue {
                w.value(v);
                w.u64(t);
            }
            // Expiry order is semantically irrelevant (the release filter
            // is elementwise); sort so equal states give equal bytes.
            let mut freeing = st.freeing.clone();
            freeing.sort_unstable();
            w.u64(freeing.len() as u64);
            for t in freeing {
                w.u64(t);
            }
            w.u64(st.sent);
            w.u64(st.consumed);
            w.u64(st.acked);
            w.u64(st.lost_result);
            w.u64(st.lost_ack);
        }

        let payload = w.bytes;
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&sim.g.fingerprint().to_le_bytes());
        bytes.extend_from_slice(&sim.now.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&checksum64(&payload).to_le_bytes());
        let header_sum = checksum64(&bytes);
        bytes.extend_from_slice(&header_sum.to_le_bytes());
        bytes.extend_from_slice(&payload);
        Snapshot { bytes }
    }

    /// Rebuild a mid-run machine over `g`, resuming on `kernel`.
    pub(crate) fn rebuild<'g>(
        &self,
        g: &'g Graph,
        kernel: Kernel,
    ) -> Result<Simulator<'g>, SnapshotError> {
        let expected = g.fingerprint();
        let found = self.fingerprint();
        if expected != found {
            return Err(SnapshotError::ProgramMismatch { expected, found });
        }
        let mut r = Reader::new(&self.bytes[HEADER_LEN..]);
        let mut cfg = decode_config(&mut r)?;
        cfg.kernel = kernel;
        let now = r.u64()?;
        if now != self.step() {
            return Err(SnapshotError::Malformed(
                "payload clock disagrees with header step".into(),
            ));
        }
        let idle = r.u64()?;
        let tracker = ProgressTracker::from_state((r.u64()?, r.u64()?, r.u64()?));
        let am_fires = r.u64()?;
        let fu_fires = r.u64()?;

        let n = g.nodes.len();
        let node_count = r.u64()? as usize;
        if node_count != n {
            return Err(SnapshotError::ShapeMismatch(format!(
                "snapshot has {node_count} cells, graph has {n}"
            )));
        }
        let src_pos: Vec<usize> = r.u64_vec(n)?.into_iter().map(|x| x as usize).collect();
        let ctl_pos = r.u64_vec(n)?;
        let fires = r.u64_vec(n)?;
        let gate_passes = r.u64_vec(n)?;
        let gate_discards = r.u64_vec(n)?;
        let mut src_data: Vec<Option<Vec<Value>>> = Vec::with_capacity(n);
        for _ in 0..n {
            src_data.push(r.opt(|r| {
                let len = r.count(1)?;
                let mut data = Vec::with_capacity(len);
                for _ in 0..len {
                    data.push(r.value()?);
                }
                Ok(data)
            })?);
        }
        let fire_times = r.opt(|r| {
            let mut ft = Vec::with_capacity(n);
            for _ in 0..n {
                ft.push(r.counted_u64_vec()?);
            }
            Ok(ft)
        })?;

        let mut outputs = HashMap::new();
        let sink_count = r.count(1)?;
        for _ in 0..sink_count {
            let name = r.string()?;
            let len = r.count(9)?;
            let mut packets = Vec::with_capacity(len);
            for _ in 0..len {
                let t = r.u64()?;
                packets.push((t, r.value()?));
            }
            if outputs.insert(name, packets).is_some() {
                return Err(SnapshotError::Malformed("duplicate sink port".into()));
            }
        }
        let mut source_emit_times = HashMap::new();
        let source_count = r.count(1)?;
        for _ in 0..source_count {
            let name = r.string()?;
            let times = r.counted_u64_vec()?;
            if source_emit_times.insert(name, times).is_some() {
                return Err(SnapshotError::Malformed("duplicate source port".into()));
            }
        }

        let arc_count = r.count(1)?;
        if arc_count != g.arcs.len() {
            return Err(SnapshotError::ShapeMismatch(format!(
                "snapshot has {arc_count} arcs, graph has {}",
                g.arcs.len()
            )));
        }
        let mut arcs = Vec::with_capacity(arc_count);
        for i in 0..arc_count {
            let qlen = r.count(9)?;
            let mut queue = VecDeque::with_capacity(qlen);
            for _ in 0..qlen {
                let v = r.value()?;
                queue.push_back((v, r.u64()?));
            }
            let freeing = r.counted_u64_vec()?;
            let st = ArcState {
                queue,
                freeing,
                cap: cfg.arc_capacity,
                sent: r.u64()?,
                consumed: r.u64()?,
                acked: r.u64()?,
                lost_result: r.u64()?,
                lost_ack: r.u64()?,
            };
            if st.queue.len() + st.freeing.len() + (st.lost_result + st.lost_ack) as usize > st.cap
            {
                return Err(SnapshotError::Malformed(format!(
                    "arc {i} holds more token slots than its capacity {}",
                    st.cap
                )));
            }
            arcs.push(st);
        }
        r.finish()?;

        validate_against_graph(g, &cfg, &src_data, &outputs, &source_emit_times, &src_pos)?;
        if let Some(ft) = &fire_times {
            if !cfg.record_fire_times || ft.len() != n {
                return Err(SnapshotError::Malformed("fire-time table mismatch".into()));
            }
        } else if cfg.record_fire_times {
            return Err(SnapshotError::Malformed(
                "record_fire_times set but no fire-time table".into(),
            ));
        }

        let (fwd_delay, ack_delay) = match &cfg.delays {
            Some(d) => (d.forward.clone(), d.ack.clone()),
            None => (vec![1; g.arcs.len()], vec![1; g.arcs.len()]),
        };
        let fault = cfg.fault_plan.clone().filter(|p| !p.is_empty());

        // Kernel-neutral resume: seed every cell at `now` (anything
        // enabled fires exactly as a scan would), then re-post the future
        // wakeups implied by canonical state — token deliveries and
        // acknowledge-slot expiries still in flight.
        let mut sched = Scheduler::resume(kernel, n, now);
        for (i, st) in arcs.iter().enumerate() {
            let dst = g.arcs[i].dst.idx() as u32;
            let src = g.arcs[i].src.idx() as u32;
            for &(_, ready) in &st.queue {
                if ready > now {
                    sched.wake(dst, ready);
                }
            }
            for &t in &st.freeing {
                if t >= now {
                    sched.wake_arc(i as u32, t);
                    sched.wake(src, t);
                }
            }
        }

        // Scatter the name-keyed payload maps into the dense slot
        // layout, assigning slots by the same graph walk `with_config`
        // uses so slot numbering matches a from-scratch build.
        let mut cells = Cells::empty(n, cfg.record_fire_times);
        cells.src_pos = src_pos;
        cells.src_data = src_data;
        cells.ctl_pos = ctl_pos;
        cells.fires = fires;
        cells.gate_passes = gate_passes;
        cells.gate_discards = gate_discards;
        cells.fire_times = fire_times;
        for (i, node) in g.nodes.iter().enumerate() {
            match &node.op {
                Opcode::Source(name) => {
                    let s = Cells::name_slot(&mut cells.emit_times, name);
                    cells.src_slot[i] = s;
                    if let Some(times) = source_emit_times.remove(name) {
                        cells.emit_times[s as usize].1 = times;
                    }
                }
                Opcode::Sink(name) => {
                    let s = Cells::name_slot(&mut cells.outputs, name);
                    cells.sink_slot[i] = s;
                    if let Some(packets) = outputs.remove(name) {
                        cells.outputs[s as usize].1 = packets;
                    }
                }
                _ => {}
            }
        }
        let stop_slots = StopSlots::compile(&cfg.stop_outputs, &cells);

        Ok(Simulator {
            g,
            cfg,
            arcs,
            cells,
            now,
            fwd_delay,
            ack_delay,
            am_fires,
            fu_fires,
            fault,
            sched,
            stop_slots,
            // Progress is definitionally the packets that visibly moved:
            // derived from the serialized histories, never stored.
            progress: 0,
            idle,
            tracker,
            scratch: StepScratch::default(),
            pool: None,
            allow_epochs: false,
            epoch_stop_cap: 0,
            epoch: None,
        }
        .with_derived_progress())
    }
}

impl<'g> Simulator<'g> {
    fn with_derived_progress(mut self) -> Self {
        self.progress = self.cells.derived_progress();
        self
    }
}

/// Structural checks beyond the fingerprint: the payload's port maps and
/// tables must line up with the graph and with the embedded config.
fn validate_against_graph(
    g: &Graph,
    cfg: &SimConfig,
    src_data: &[Option<Vec<Value>>],
    outputs: &HashMap<String, Vec<(u64, Value)>>,
    source_emit_times: &HashMap<String, Vec<u64>>,
    src_pos: &[usize],
) -> Result<(), SnapshotError> {
    let n = g.nodes.len();
    let mut sink_names = 0usize;
    let mut source_names = 0usize;
    for (i, node) in g.nodes.iter().enumerate() {
        match &node.op {
            Opcode::Source(name) => {
                source_names += 1;
                let data = src_data[i].as_ref().ok_or_else(|| {
                    SnapshotError::ShapeMismatch(format!("source cell {i} has no input sequence"))
                })?;
                if src_pos[i] > data.len() {
                    return Err(SnapshotError::Malformed(format!(
                        "source cell {i} cursor {} beyond its {} packets",
                        src_pos[i],
                        data.len()
                    )));
                }
                if !source_emit_times.contains_key(name) {
                    return Err(SnapshotError::ShapeMismatch(format!(
                        "source port '{name}' missing from emission times"
                    )));
                }
            }
            Opcode::Sink(name) => {
                sink_names += 1;
                if !outputs.contains_key(name) {
                    return Err(SnapshotError::ShapeMismatch(format!(
                        "sink port '{name}' missing from outputs"
                    )));
                }
            }
            Opcode::Fifo(_) => {
                return Err(SnapshotError::ShapeMismatch(format!(
                    "graph cell {i} is an unexpanded FIFO"
                )))
            }
            _ => {
                if src_data[i].is_some() {
                    return Err(SnapshotError::Malformed(format!(
                        "non-source cell {i} carries an input sequence"
                    )));
                }
            }
        }
    }
    if outputs.len() != sink_names || source_emit_times.len() != source_names {
        return Err(SnapshotError::ShapeMismatch(
            "snapshot port maps do not match the graph's sources/sinks".into(),
        ));
    }
    if let Some(d) = &cfg.delays {
        if d.forward.len() != g.arcs.len() || d.ack.len() != g.arcs.len() {
            return Err(SnapshotError::ShapeMismatch(
                "arc delay tables do not cover the graph".into(),
            ));
        }
    }
    if let Some(res) = &cfg.resources {
        if res.unit_of.len() != n {
            return Err(SnapshotError::ShapeMismatch(
                "resource unit table does not cover the graph".into(),
            ));
        }
        if res
            .unit_of
            .iter()
            .any(|&u| u as usize >= res.capacity.len())
        {
            return Err(SnapshotError::Malformed(
                "resource unit index out of range".into(),
            ));
        }
    }
    if let Some(plan) = &cfg.fault_plan {
        if plan.freezes.iter().any(|fz| fz.node >= n) {
            return Err(SnapshotError::ShapeMismatch(
                "fault plan freezes a cell beyond the graph".into(),
            ));
        }
        if !(plan.drop_result.is_finite()
            && plan.dup_result.is_finite()
            && plan.delay_result.is_finite()
            && plan.drop_ack.is_finite()
            && plan.delay_ack.is_finite())
        {
            return Err(SnapshotError::Malformed(
                "fault plan probability is not finite".into(),
            ));
        }
    }
    Ok(())
}

fn encode_config(w: &mut Writer, cfg: &SimConfig) {
    w.u64(cfg.max_steps);
    w.u64(cfg.arc_capacity as u64);
    w.byte(cfg.record_fire_times as u8);
    w.byte(cfg.check_invariants as u8);
    w.u64(cfg.checkpoint_every);
    w.opt(cfg.checkpoint_path.as_ref(), |w, p| w.string(p));
    w.opt(cfg.delays.as_ref(), |w, d| {
        w.u64(d.forward.len() as u64);
        for &x in &d.forward {
            w.u64(x);
        }
        w.u64(d.ack.len() as u64);
        for &x in &d.ack {
            w.u64(x);
        }
    });
    w.opt(cfg.resources.as_ref(), |w, res| {
        w.u64(res.unit_of.len() as u64);
        for &u in &res.unit_of {
            w.u64(u as u64);
        }
        w.u64(res.capacity.len() as u64);
        for &c in &res.capacity {
            w.u64(c as u64);
        }
    });
    w.opt(cfg.stop_outputs.as_ref(), |w, list| {
        w.u64(list.len() as u64);
        for (name, count) in list {
            w.string(name);
            w.u64(*count as u64);
        }
    });
    w.opt(cfg.watchdog.as_ref(), |w, wd| {
        w.u64(wd.step_budget);
        w.u64(wd.progress_window);
    });
    w.opt(cfg.fault_plan.as_ref(), |w, plan| {
        w.u64(plan.seed);
        w.f64(plan.drop_result);
        w.f64(plan.dup_result);
        w.f64(plan.delay_result);
        w.u64(plan.delay_result_max);
        w.f64(plan.drop_ack);
        w.f64(plan.delay_ack);
        w.u64(plan.delay_ack_max);
        w.u64(plan.freezes.len() as u64);
        for fz in &plan.freezes {
            w.u64(fz.node as u64);
            w.u64(fz.from);
            w.u64(fz.until);
        }
        w.u64(plan.link_faults.len() as u64);
        for lf in &plan.link_faults {
            w.u64(lf.stage as u64);
            w.u64(lf.port as u64);
            w.u64(lf.from);
            w.u64(lf.until);
        }
    });
}

fn decode_config(r: &mut Reader<'_>) -> Result<SimConfig, SnapshotError> {
    let max_steps = r.u64()?;
    let arc_capacity = r.u64()? as usize;
    let record_fire_times = r.bool()?;
    let check_invariants = r.bool()?;
    let checkpoint_every = r.u64()?;
    let checkpoint_path = r.opt(|r| r.string())?;
    let delays = r.opt(|r| {
        let forward = r.counted_u64_vec()?;
        let ack = r.counted_u64_vec()?;
        Ok(ArcDelays { forward, ack })
    })?;
    let resources = r.opt(|r| {
        let unit_of = r
            .counted_u64_vec()?
            .into_iter()
            .map(u32_of)
            .collect::<Result<Vec<_>, _>>()?;
        let capacity = r
            .counted_u64_vec()?
            .into_iter()
            .map(u32_of)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ResourceModel { unit_of, capacity })
    })?;
    let stop_outputs = r.opt(|r| {
        let len = r.count(9)?;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            let name = r.string()?;
            list.push((name, r.u64()? as usize));
        }
        Ok(list)
    })?;
    let watchdog = r.opt(|r| {
        Ok(WatchdogConfig {
            step_budget: r.u64()?,
            progress_window: r.u64()?,
        })
    })?;
    let fault_plan = r.opt(|r| {
        let seed = r.u64()?;
        let drop_result = r.f64()?;
        let dup_result = r.f64()?;
        let delay_result = r.f64()?;
        let delay_result_max = r.u64()?;
        let drop_ack = r.f64()?;
        let delay_ack = r.f64()?;
        let delay_ack_max = r.u64()?;
        let n_freezes = r.count(24)?;
        let mut freezes = Vec::with_capacity(n_freezes);
        for _ in 0..n_freezes {
            freezes.push(CellFreeze {
                node: r.u64()? as usize,
                from: r.u64()?,
                until: r.u64()?,
            });
        }
        let n_links = r.count(32)?;
        let mut link_faults = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            link_faults.push(LinkFault {
                stage: r.u64()? as usize,
                port: r.u64()? as usize,
                from: r.u64()?,
                until: r.u64()?,
            });
        }
        Ok(FaultPlan {
            seed,
            drop_result,
            dup_result,
            delay_result,
            delay_result_max,
            drop_ack,
            delay_ack,
            delay_ack_max,
            freezes,
            link_faults,
        })
    })?;
    Ok(SimConfig {
        max_steps,
        arc_capacity,
        delays,
        resources,
        record_fire_times,
        stop_outputs,
        fault_plan,
        watchdog,
        check_invariants,
        kernel: Kernel::default(),
        checkpoint_every,
        checkpoint_path,
        // Like the kernel, the epoch knobs are execution strategy, not
        // machine state: never serialized, restored to defaults (the
        // restoring session overrides them as it likes).
        epoch_cap: crate::session::DEFAULT_EPOCH_CAP,
        shard_policy: crate::shard::ShardPolicy::default(),
    })
}

fn u32_of(x: u64) -> Result<u32, SnapshotError> {
    u32::try_from(x).map_err(|_| SnapshotError::Malformed("value exceeds u32".into()))
}

fn read_u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

// Value tags in serialized packets.
const TAG_INT: u8 = 0;
const TAG_REAL: u8 = 1;
const TAG_BOOL: u8 = 2;

/// Canonical-byte encoder shared by snapshot capture and the
/// fast-forward engine's rebased state fingerprints (`fastforward`):
/// one encoding for machine state means fingerprint equality carries
/// the same guarantees as snapshot byte equality.
#[derive(Default)]
pub(crate) struct Writer {
    pub(crate) bytes: Vec<u8>,
}

impl Writer {
    pub(crate) fn byte(&mut self, b: u8) {
        self.bytes.push(b);
    }
    pub(crate) fn u64(&mut self, x: u64) {
        self.bytes.extend_from_slice(&x.to_le_bytes());
    }
    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    fn string(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes.extend_from_slice(s.as_bytes());
    }
    pub(crate) fn value(&mut self, v: Value) {
        match v {
            Value::Int(i) => {
                self.byte(TAG_INT);
                self.u64(i as u64);
            }
            Value::Real(x) => {
                self.byte(TAG_REAL);
                self.f64(x);
            }
            Value::Bool(b) => {
                self.byte(TAG_BOOL);
                self.byte(b as u8);
            }
        }
    }
    fn opt<T>(&mut self, v: Option<T>, f: impl FnOnce(&mut Writer, T)) {
        match v {
            None => self.byte(0),
            Some(x) => {
                self.byte(1);
                f(self, x);
            }
        }
    }
}

struct Reader<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    fn new(bytes: &'b [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
    fn take(&mut self, len: usize) -> Result<&'b [u8], SnapshotError> {
        if self.remaining() < len {
            return Err(SnapshotError::Malformed("payload ends mid-field".into()));
        }
        let s = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }
    fn byte(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Malformed(format!(
                "bad boolean byte {b:#04x}"
            ))),
        }
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// Read a length/count and reject counts that cannot possibly fit in
    /// the remaining bytes (`min_elem` bytes per element) — a garbled
    /// count must not drive a giant allocation.
    fn count(&mut self, min_elem: usize) -> Result<usize, SnapshotError> {
        let c = self.u64()?;
        let c = usize::try_from(c)
            .map_err(|_| SnapshotError::Malformed("count exceeds address space".into()))?;
        if c.checked_mul(min_elem)
            .is_none_or(|need| need > self.remaining())
        {
            return Err(SnapshotError::Malformed(format!(
                "count {c} exceeds remaining payload"
            )));
        }
        Ok(c)
    }
    /// A `u64` vector prefixed by its own length.
    fn counted_u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.count(8)?;
        self.u64_vec(len)
    }
    fn u64_vec(&mut self, len: usize) -> Result<Vec<u64>, SnapshotError> {
        if len
            .checked_mul(8)
            .is_none_or(|need| need > self.remaining())
        {
            return Err(SnapshotError::Malformed(format!(
                "vector of {len} words exceeds remaining payload"
            )));
        }
        (0..len).map(|_| self.u64()).collect()
    }
    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not UTF-8".into()))
    }
    fn value(&mut self) -> Result<Value, SnapshotError> {
        match self.byte()? {
            TAG_INT => Ok(Value::Int(self.u64()? as i64)),
            TAG_REAL => Ok(Value::Real(self.f64()?)),
            TAG_BOOL => Ok(Value::Bool(self.bool()?)),
            t => Err(SnapshotError::Malformed(format!("bad value tag {t:#04x}"))),
        }
    }
    fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Reader<'b>) -> Result<T, SnapshotError>,
    ) -> Result<Option<T>, SnapshotError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }
    /// The whole payload must be consumed; trailing garbage is an error.
    fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} unread byte(s) after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ProgramInputs;
    use valpipe_ir::value::BinOp;

    fn pipeline_graph() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[a.into(), 1.0.into()]);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[add.into()]);
        g
    }

    fn mid_run_snapshot(g: &Graph) -> Snapshot {
        let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let mut s = Simulator::builder(g)
            .inputs(ProgramInputs::new().bind_reals("a", &data))
            .build()
            .unwrap();
        for _ in 0..10 {
            s.step().unwrap();
        }
        s.checkpoint()
    }

    #[test]
    fn header_fields_are_exposed() {
        let g = pipeline_graph();
        let snap = mid_run_snapshot(&g);
        assert_eq!(snap.version(), SNAPSHOT_VERSION);
        assert_eq!(snap.fingerprint(), g.fingerprint());
        assert_eq!(snap.step(), 10);
        assert_eq!(&snap.as_bytes()[..8], &SNAPSHOT_MAGIC);
    }

    #[test]
    fn from_bytes_roundtrip() {
        let g = pipeline_graph();
        let snap = mid_run_snapshot(&g);
        let again = Snapshot::from_bytes(snap.as_bytes().to_vec()).unwrap();
        assert_eq!(snap, again);
    }

    #[test]
    fn bad_magic_is_not_a_snapshot() {
        let g = pipeline_graph();
        let mut bytes = mid_run_snapshot(&g).as_bytes().to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::NotASnapshot)
        );
        assert_eq!(
            Snapshot::from_bytes(b"hello".to_vec()),
            Err(SnapshotError::NotASnapshot)
        );
    }

    #[test]
    fn every_truncation_is_typed() {
        let g = pipeline_graph();
        let bytes = mid_run_snapshot(&g).as_bytes().to_vec();
        for keep in 8..bytes.len() {
            let err = Snapshot::from_bytes(bytes[..keep].to_vec()).unwrap_err();
            assert_eq!(err, SnapshotError::Truncated, "at {keep} bytes");
        }
    }

    #[test]
    fn every_single_byte_corruption_is_caught() {
        let g = pipeline_graph();
        let bytes = mid_run_snapshot(&g).as_bytes().to_vec();
        for i in 0..bytes.len() {
            let mut garbled = bytes.clone();
            garbled[i] ^= 0x40;
            let err = Snapshot::from_bytes(garbled).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::NotASnapshot
                        | SnapshotError::HeaderChecksum
                        | SnapshotError::PayloadChecksum
                        | SnapshotError::Truncated
                        | SnapshotError::Malformed(_)
                ),
                "byte {i}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn unsupported_version_is_reported() {
        let g = pipeline_graph();
        let mut bytes = mid_run_snapshot(&g).as_bytes().to_vec();
        bytes[8] = 99; // version field
                       // Re-seal the header checksum so only the version is "wrong".
        let sum = checksum64(&bytes[..44]).to_le_bytes();
        bytes[44..52].copy_from_slice(&sum);
        assert_eq!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn restore_refuses_a_different_program() {
        let g = pipeline_graph();
        let snap = mid_run_snapshot(&g);
        let mut other = Graph::new();
        let a = other.add_node(Opcode::Source("a".into()), "a");
        let _ = other.cell(Opcode::Sink("out".into()), "out", &[a.into()]);
        match crate::session::Session::restore(&other, &snap) {
            Err(SnapshotError::ProgramMismatch { .. }) => {}
            Err(e) => panic!("unexpected error {e:?}"),
            Ok(_) => panic!("restore accepted a different program"),
        }
    }

    #[test]
    fn capture_is_deterministic() {
        let g = pipeline_graph();
        let a = mid_run_snapshot(&g);
        let b = mid_run_snapshot(&g);
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn sweep_removes_only_stale_tmp_files() {
        let dir = std::env::temp_dir().join(format!("valpipe_sweep_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.snap.tmp"), b"torn half-write").unwrap();
        std::fs::write(dir.join("b.snap"), b"not a tmp").unwrap();
        let removed = Snapshot::sweep_stale_tmp(&dir).unwrap();
        assert_eq!(removed, vec!["a.snap.tmp".to_string()]);
        assert!(!dir.join("a.snap.tmp").exists());
        assert!(dir.join("b.snap").exists());
        // Missing directories sweep nothing rather than erroring.
        assert_eq!(
            Snapshot::sweep_stale_tmp(dir.join("missing")).unwrap(),
            Vec::<String>::new()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_render_human_readable() {
        let e = SnapshotError::ProgramMismatch {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("different program"));
        assert!(SnapshotError::Truncated.to_string().contains("truncated"));
    }
}
