//! Deterministic fault injection for the machine simulators.
//!
//! A [`FaultPlan`] describes which perturbations to apply to a run: result
//! packets can be dropped, delayed, or duplicated; acknowledge packets can
//! be dropped or delayed; individual cells can be frozen for a window of
//! instruction times; and routing-network links can be taken down (see
//! [`crate::network::OmegaNetwork::fail_link`]).
//!
//! Every decision is **position-keyed**: whether the packet on arc `a` at
//! step `t` is perturbed depends only on `(seed, kind, a, t)` via
//! [`valpipe_util::hash_mix`], never on event iteration order. Two runs
//! with the same plan perturb exactly the same packets, which is what makes
//! fault experiments reproducible and shrinkable.
//!
//! The empty plan ([`FaultPlan::default`]) injects nothing; the simulator
//! special-cases it so that a run with `fault_plan: None` and a run with
//! an empty plan are bit-identical.

use valpipe_util::hash_mix;

/// A window of instruction times during which one cell may not fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellFreeze {
    /// Frozen cell index.
    pub node: usize,
    /// First frozen instruction time (inclusive).
    pub from: u64,
    /// First instruction time at which the cell thaws (exclusive bound).
    pub until: u64,
}

/// A window of instruction times during which one network link is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFault {
    /// Network stage of the failed link.
    pub stage: usize,
    /// Output-port index within the stage.
    pub port: usize,
    /// First failed cycle (inclusive).
    pub from: u64,
    /// First cycle at which the link recovers (exclusive bound).
    pub until: u64,
}

/// A seeded, deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every position-keyed decision.
    pub seed: u64,
    /// Probability that a result packet is lost in the network. The
    /// producer's destination slot is then never acknowledged — one
    /// dropped result wedges its arc, which is exactly the failure mode
    /// the watchdog's stall report attributes.
    pub drop_result: f64,
    /// Probability that a result packet is duplicated. The duplicate is
    /// delivered only if the destination arc has a free slot (a full
    /// link discards it), so arc capacity is never exceeded.
    pub dup_result: f64,
    /// Probability that a result packet is delayed.
    pub delay_result: f64,
    /// Maximum extra instruction times for a delayed result (uniform in
    /// `1..=max`).
    pub delay_result_max: u64,
    /// Probability that an acknowledge packet is lost. The producer's
    /// slot then never frees.
    pub drop_ack: f64,
    /// Probability that an acknowledge packet is delayed.
    pub delay_ack: f64,
    /// Maximum extra instruction times for a delayed acknowledge.
    pub delay_ack_max: u64,
    /// Cells frozen for windows of instruction times.
    pub freezes: Vec<CellFreeze>,
    /// Routing-network links taken down for windows of cycles (consumed
    /// by the closed-loop machine / network experiments).
    pub link_faults: Vec<LinkFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_result: 0.0,
            dup_result: 0.0,
            delay_result: 0.0,
            delay_result_max: 4,
            drop_ack: 0.0,
            delay_ack: 0.0,
            delay_ack_max: 4,
            freezes: Vec::new(),
            link_faults: Vec::new(),
        }
    }
}

/// What happens to one result packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultFate {
    /// Delivered normally.
    Deliver,
    /// Lost; the destination slot is never acknowledged.
    Drop,
    /// Delivered with the given extra latency.
    Delay(u64),
    /// Delivered twice (second copy only if the arc has room).
    Duplicate,
}

/// What happens to one acknowledge packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckFate {
    /// Delivered normally.
    Deliver,
    /// Lost; the producer's slot never frees.
    Drop,
    /// Delivered with the given extra latency.
    Delay(u64),
}

// Salts separating the decision streams; arbitrary distinct constants.
const SALT_DROP_RESULT: u64 = 0xD0;
const SALT_DUP_RESULT: u64 = 0xD1;
const SALT_DELAY_RESULT: u64 = 0xD2;
const SALT_DELAY_RESULT_AMT: u64 = 0xD3;
const SALT_DROP_ACK: u64 = 0xA0;
const SALT_DELAY_ACK: u64 = 0xA1;
const SALT_DELAY_ACK_AMT: u64 = 0xA2;

/// Uniform `[0, 1)` draw keyed by position.
fn u01(seed: u64, salt: u64, arc: u64, step: u64) -> f64 {
    (hash_mix(&[seed, salt, arc, step]) >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform `1..=max` draw keyed by position.
fn amount(seed: u64, salt: u64, arc: u64, step: u64, max: u64) -> u64 {
    1 + hash_mix(&[seed, salt, arc, step]) % max.max(1)
}

impl FaultPlan {
    /// The plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.drop_result == 0.0
            && self.dup_result == 0.0
            && self.delay_result == 0.0
            && self.drop_ack == 0.0
            && self.delay_ack == 0.0
            && self.freezes.is_empty()
            && self.link_faults.is_empty()
    }

    /// Whether the plan contains any cell- or packet-level fault (i.e.
    /// anything beyond network link outages). Consumers that only model
    /// the network planes use this to warn about knobs they ignore.
    pub fn has_cell_faults(&self) -> bool {
        let mut links_stripped = self.clone();
        links_stripped.link_faults.clear();
        !links_stripped.is_empty()
    }

    /// Fate of the result packet emitted onto `arc` at instruction time
    /// `step`. Deterministic in `(seed, arc, step)`.
    pub fn result_fate(&self, arc: usize, step: u64) -> ResultFate {
        let a = arc as u64;
        if self.drop_result > 0.0 && u01(self.seed, SALT_DROP_RESULT, a, step) < self.drop_result {
            return ResultFate::Drop;
        }
        if self.dup_result > 0.0 && u01(self.seed, SALT_DUP_RESULT, a, step) < self.dup_result {
            return ResultFate::Duplicate;
        }
        if self.delay_result > 0.0 && u01(self.seed, SALT_DELAY_RESULT, a, step) < self.delay_result
        {
            return ResultFate::Delay(amount(
                self.seed,
                SALT_DELAY_RESULT_AMT,
                a,
                step,
                self.delay_result_max,
            ));
        }
        ResultFate::Deliver
    }

    /// Fate of the acknowledge packet for a token consumed from `arc` at
    /// instruction time `step`.
    pub fn ack_fate(&self, arc: usize, step: u64) -> AckFate {
        let a = arc as u64;
        if self.drop_ack > 0.0 && u01(self.seed, SALT_DROP_ACK, a, step) < self.drop_ack {
            return AckFate::Drop;
        }
        if self.delay_ack > 0.0 && u01(self.seed, SALT_DELAY_ACK, a, step) < self.delay_ack {
            return AckFate::Delay(amount(
                self.seed,
                SALT_DELAY_ACK_AMT,
                a,
                step,
                self.delay_ack_max,
            ));
        }
        AckFate::Deliver
    }

    /// Whether `node` is frozen at instruction time `step`.
    pub fn frozen(&self, node: usize, step: u64) -> bool {
        self.freezes
            .iter()
            .any(|fz| fz.node == node && fz.from <= step && step < fz.until)
    }

    /// First instruction time `≥ step` at which `node` is not frozen —
    /// the event-driven scheduler's wakeup time for a cell examined
    /// inside a freeze window. Chained and overlapping windows are
    /// followed to their joint end.
    pub fn thaw_time(&self, node: usize, step: u64) -> u64 {
        let mut t = step;
        loop {
            let until = self
                .freezes
                .iter()
                .filter(|fz| fz.node == node && fz.from <= t && t < fz.until)
                .map(|fz| fz.until)
                .max();
            match until {
                Some(u) => t = u,
                None => return t,
            }
        }
    }

    /// Parse a command-line fault specification: comma-separated
    /// `key=value` pairs.
    ///
    /// ```text
    /// seed=42,drop_ack=0.001,delay_result=0.05:4,freeze=7@100..200
    /// ```
    ///
    /// Keys: `seed`, `drop_result`, `dup_result`, `drop_ack` (probability),
    /// `delay_result`, `delay_ack` (`probability[:max_extra]`),
    /// `freeze` (`node@from..until`, repeatable),
    /// `link` (`stage.port@from..until`, repeatable).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec '{part}': expected key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault spec '{part}': bad probability '{v}'"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!(
                        "fault spec '{part}': probability {p} outside [0, 1]"
                    ));
                }
                Ok(p)
            };
            let prob_max = |v: &str| -> Result<(f64, Option<u64>), String> {
                match v.split_once(':') {
                    None => Ok((prob(v)?, None)),
                    Some((p, m)) => {
                        let max = m
                            .parse::<u64>()
                            .map_err(|_| format!("fault spec '{part}': bad max delay '{m}'"))?;
                        if max == 0 {
                            return Err(format!("fault spec '{part}': max delay must be ≥ 1"));
                        }
                        Ok((prob(p)?, Some(max)))
                    }
                }
            };
            let window = |v: &str| -> Result<(u64, std::ops::Range<u64>), String> {
                let (id, range) = v
                    .split_once('@')
                    .ok_or_else(|| format!("fault spec '{part}': expected id@from..until"))?;
                let (from, until) = range
                    .split_once("..")
                    .ok_or_else(|| format!("fault spec '{part}': expected from..until"))?;
                let id = id
                    .parse()
                    .map_err(|_| format!("fault spec '{part}': bad id '{id}'"))?;
                let from: u64 = from
                    .parse()
                    .map_err(|_| format!("fault spec '{part}': bad start '{from}'"))?;
                let until: u64 = until
                    .parse()
                    .map_err(|_| format!("fault spec '{part}': bad end '{until}'"))?;
                if from >= until {
                    return Err(format!("fault spec '{part}': empty window {from}..{until}"));
                }
                Ok((id, from..until))
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault spec '{part}': bad seed '{value}'"))?;
                }
                "drop_result" => plan.drop_result = prob(value)?,
                "dup_result" => plan.dup_result = prob(value)?,
                "drop_ack" => plan.drop_ack = prob(value)?,
                "delay_result" => {
                    let (p, max) = prob_max(value)?;
                    plan.delay_result = p;
                    if let Some(m) = max {
                        plan.delay_result_max = m;
                    }
                }
                "delay_ack" => {
                    let (p, max) = prob_max(value)?;
                    plan.delay_ack = p;
                    if let Some(m) = max {
                        plan.delay_ack_max = m;
                    }
                }
                "freeze" => {
                    let (node, w) = window(value)?;
                    plan.freezes.push(CellFreeze {
                        node: node as usize,
                        from: w.start,
                        until: w.end,
                    });
                }
                "link" => {
                    // stage.port@from..until
                    let (addr, rest) = value.split_once('@').ok_or_else(|| {
                        format!("fault spec '{part}': expected stage.port@from..until")
                    })?;
                    let (stage, port) = addr
                        .split_once('.')
                        .ok_or_else(|| format!("fault spec '{part}': expected stage.port"))?;
                    let (_, w) = window(&format!("0@{rest}"))?;
                    plan.link_faults.push(LinkFault {
                        stage: stage
                            .parse()
                            .map_err(|_| format!("fault spec '{part}': bad stage '{stage}'"))?,
                        port: port
                            .parse()
                            .map_err(|_| format!("fault spec '{part}': bad port '{port}'"))?,
                        from: w.start,
                        until: w.end,
                    });
                }
                other => return Err(format!("fault spec: unknown key '{other}'")),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for arc in 0..16 {
            for step in 0..64 {
                assert_eq!(plan.result_fate(arc, step), ResultFate::Deliver);
                assert_eq!(plan.ack_fate(arc, step), AckFate::Deliver);
            }
        }
        assert!(!plan.frozen(0, 0));
    }

    #[test]
    fn decisions_are_deterministic_and_position_keyed() {
        let plan = FaultPlan {
            seed: 7,
            drop_result: 0.3,
            ..Default::default()
        };
        let a: Vec<ResultFate> = (0..200).map(|t| plan.result_fate(3, t)).collect();
        let b: Vec<ResultFate> = (0..200).map(|t| plan.result_fate(3, t)).collect();
        assert_eq!(a, b, "same position → same fate");
        let dropped = a.iter().filter(|f| **f == ResultFate::Drop).count();
        assert!(
            (30..=90).contains(&dropped),
            "≈30% of 200 dropped, got {dropped}"
        );
        // A different arc sees a different (but equally deterministic) pattern.
        let c: Vec<ResultFate> = (0..200).map(|t| plan.result_fate(4, t)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn delay_amounts_bounded() {
        let plan = FaultPlan {
            seed: 1,
            delay_result: 1.0,
            delay_result_max: 3,
            ..Default::default()
        };
        for t in 0..100 {
            match plan.result_fate(0, t) {
                ResultFate::Delay(d) => assert!((1..=3).contains(&d), "delay {d}"),
                f => panic!("expected delay, got {f:?}"),
            }
        }
    }

    #[test]
    fn freeze_windows() {
        let plan = FaultPlan {
            freezes: vec![CellFreeze {
                node: 2,
                from: 10,
                until: 20,
            }],
            ..Default::default()
        };
        assert!(!plan.frozen(2, 9));
        assert!(plan.frozen(2, 10));
        assert!(plan.frozen(2, 19));
        assert!(!plan.frozen(2, 20));
        assert!(!plan.frozen(3, 15));
    }

    #[test]
    fn parses_full_spec() {
        let plan = FaultPlan::parse(
            "seed=42,drop_result=0.01,dup_result=0.02,delay_result=0.05:7,drop_ack=0.003,delay_ack=0.04:2,freeze=7@100..200,link=1.3@50..60",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.drop_result, 0.01);
        assert_eq!(plan.dup_result, 0.02);
        assert_eq!(plan.delay_result, 0.05);
        assert_eq!(plan.delay_result_max, 7);
        assert_eq!(plan.drop_ack, 0.003);
        assert_eq!(plan.delay_ack, 0.04);
        assert_eq!(plan.delay_ack_max, 2);
        assert_eq!(
            plan.freezes,
            vec![CellFreeze {
                node: 7,
                from: 100,
                until: 200
            }]
        );
        assert_eq!(
            plan.link_faults,
            vec![LinkFault {
                stage: 1,
                port: 3,
                from: 50,
                until: 60
            }]
        );
        assert!(!plan.is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "drop_result=1.5",
            "nonsense=1",
            "freeze=7",
            "freeze=7@9..3",
            "delay_ack=0.1:0",
            "drop_result",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
    }
}
