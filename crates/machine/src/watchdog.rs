//! Watchdog and deadlock diagnosis for simulation runs.
//!
//! The static architecture has a classic failure mode: because every
//! result must be acknowledged before its producer can fire again, one
//! lost acknowledge (or an unbalanced conditional missing its FIFO)
//! wedges an arc, the wedge propagates backwards through the
//! acknowledge chain, and the whole pipe quietly stops. A raw "hit the
//! step limit" tells the user nothing. The watchdog turns that into a
//! [`StallReport`] naming the blocked cells, the arcs still holding
//! unacknowledged tokens, and — when one exists — the shortest cycle in
//! the wait-for graph, which is the smallest set of cells that are all
//! waiting on each other.
//!
//! Three stall kinds are distinguished:
//!
//! * [`StallKind::Deadlock`] — no cell can ever fire again, but the
//!   sources still hold undelivered packets;
//! * [`StallKind::Livelock`] — cells keep firing (generators spinning,
//!   gates discarding) but no packet has reached a sink and no source
//!   has advanced for a full progress window;
//! * [`StallKind::BudgetExhausted`] — the configured step budget ran
//!   out before the run completed or visibly stalled.

use std::fmt;

/// Watchdog configuration (see `SimConfig::watchdog`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Hard step budget: the run is declared stalled (kind
    /// [`StallKind::BudgetExhausted`]) when this many instruction times
    /// elapse, even if cells are still firing.
    pub step_budget: u64,
    /// Livelock window: if cells fire for this many consecutive
    /// instruction times without any source emission or sink arrival,
    /// the run is declared stalled (kind [`StallKind::Livelock`]).
    pub progress_window: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            step_budget: 1_000_000,
            progress_window: 10_000,
        }
    }
}

/// Incremental progress bookkeeping for the run loop's livelock
/// detector: tracks the last instruction time at which a packet visibly
/// moved (a source emission or a sink arrival) and how many firings have
/// happened since. Both kernels feed it the same per-step observations,
/// so stall classification is kernel-independent.
#[derive(Debug, Clone, Copy)]
pub struct ProgressTracker {
    last_progress: u64,
    last_progress_step: u64,
    fires_since_progress: u64,
}

impl ProgressTracker {
    /// Start tracking from the machine's initial progress count.
    pub fn new(initial_progress: u64) -> Self {
        ProgressTracker {
            last_progress: initial_progress,
            last_progress_step: 0,
            fires_since_progress: 0,
        }
    }

    /// Record one completed step: `fired` cells fired, and the machine's
    /// progress count (source emissions + sink arrivals) is `progress`.
    pub fn observe(&mut self, now: u64, fired: u64, progress: u64) {
        if progress != self.last_progress {
            self.last_progress = progress;
            self.last_progress_step = now;
            self.fires_since_progress = 0;
        } else {
            self.fires_since_progress += fired;
        }
    }

    /// Whether the run is livelocked under the given progress window:
    /// cells fired, but nothing visibly moved for a whole window.
    pub fn livelocked(&self, now: u64, progress_window: u64) -> bool {
        self.fires_since_progress > 0 && now - self.last_progress_step >= progress_window
    }

    /// Firings observed since the last visible progress.
    pub fn fires_since_progress(&self) -> u64 {
        self.fires_since_progress
    }

    /// Export the tracker state for a checkpoint:
    /// `(last_progress, last_progress_step, fires_since_progress)`.
    /// Restoring it (see [`ProgressTracker::from_state`]) is what keeps a
    /// resumed run's livelock classification bit-identical to an
    /// uninterrupted one.
    pub fn state(&self) -> (u64, u64, u64) {
        (
            self.last_progress,
            self.last_progress_step,
            self.fires_since_progress,
        )
    }

    /// Rebuild a tracker from an exported [`ProgressTracker::state`].
    pub fn from_state(state: (u64, u64, u64)) -> Self {
        ProgressTracker {
            last_progress: state.0,
            last_progress_step: state.1,
            fires_since_progress: state.2,
        }
    }
}

/// How the run stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// No cell can ever fire again but sources are not exhausted.
    Deadlock,
    /// Cells fire but nothing reaches a sink and no source advances.
    Livelock,
    /// The step budget elapsed first.
    BudgetExhausted,
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallKind::Deadlock => write!(f, "deadlock"),
            StallKind::Livelock => write!(f, "livelock"),
            StallKind::BudgetExhausted => write!(f, "step budget exhausted"),
        }
    }
}

/// A cell that holds at least one ready operand but cannot fire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedCell {
    /// Cell index.
    pub node: usize,
    /// Cell label.
    pub label: String,
    /// Opcode (rendered), so the report reads without the graph at hand.
    pub opcode: String,
    /// Input ports with no deliverable token.
    pub missing_ports: Vec<usize>,
    /// Output arcs that are full (the consumer never acknowledged).
    pub full_output_arcs: Vec<usize>,
}

/// An arc still occupied when the run stalled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldArc {
    /// Arc index.
    pub arc: usize,
    /// Producer cell.
    pub src: usize,
    /// Consumer cell.
    pub dst: usize,
    /// Data tokens queued on the arc.
    pub tokens: usize,
    /// Slots consumed but never freed: in-flight acknowledges plus
    /// packets lost to injected faults.
    pub unacked: usize,
}

/// Structured diagnosis of a stalled run.
#[derive(Debug, Clone, PartialEq)]
pub struct StallReport {
    /// Instruction time at which the stall was declared.
    pub step: u64,
    /// Stall classification.
    pub kind: StallKind,
    /// Cells with pending work that cannot fire, in cell order.
    pub blocked_cells: Vec<BlockedCell>,
    /// Arcs still holding tokens or unfreed slots.
    pub held_arcs: Vec<HeldArc>,
    /// Shortest cycle in the wait-for graph (cell indices, each waiting
    /// on the next, last waits on first), if the stall is circular.
    pub cycle: Option<Vec<usize>>,
    /// Firings observed in the final progress window (0 for a true
    /// deadlock, positive for a livelock).
    pub fires_in_window: u64,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} at step {} ({} firings in final window)",
            self.kind, self.step, self.fires_in_window
        )?;
        for c in &self.blocked_cells {
            write!(f, "cell {} ({}, {}) blocked:", c.node, c.label, c.opcode)?;
            if !c.missing_ports.is_empty() {
                write!(f, " waiting on port(s) {:?}", c.missing_ports)?;
            }
            if !c.full_output_arcs.is_empty() {
                write!(
                    f,
                    " output arc(s) {:?} full (consumer never acknowledged)",
                    c.full_output_arcs
                )?;
            }
            writeln!(f)?;
        }
        if self.blocked_cells.is_empty() {
            writeln!(
                f,
                "no cell holds partial inputs; sources were never drained"
            )?;
        }
        for a in &self.held_arcs {
            writeln!(
                f,
                "arc {} (cell {} -> cell {}): {} token(s) queued, {} slot(s) unacknowledged",
                a.arc, a.src, a.dst, a.tokens, a.unacked
            )?;
        }
        if let Some(cycle) = &self.cycle {
            let path: Vec<String> = cycle.iter().map(|n| n.to_string()).collect();
            writeln!(f, "wait cycle: {} -> {}", path.join(" -> "), cycle[0])?;
        }
        Ok(())
    }
}

/// Shortest cycle in a directed graph given as adjacency lists. Returns
/// the cycle's vertices in order (each waits on the next). Used on the
/// wait-for graph of a stalled machine; BFS from every vertex is fine at
/// program-graph sizes.
pub fn shortest_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut best: Option<Vec<usize>> = None;
    for start in 0..n {
        // BFS for the shortest path back to `start`.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = std::collections::VecDeque::new();
        seen[start] = true;
        q.push_back(start);
        'bfs: while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                if v == start {
                    // Reconstruct start -> ... -> u, which closes at start.
                    let mut path = vec![u];
                    let mut cur = u;
                    while let Some(p) = parent[cur] {
                        path.push(p);
                        cur = p;
                    }
                    if cur != start {
                        path.push(start);
                    }
                    path.reverse();
                    if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                        best = Some(path);
                    }
                    break 'bfs;
                }
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(u);
                    q.push_back(v);
                }
            }
        }
        if best.as_ref().is_some_and(|b| b.len() == 1) {
            break; // cannot beat a self-loop
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_shortest_cycle() {
        // 0 -> 1 -> 2 -> 0 and 1 -> 3 -> 1 (shorter).
        let adj = vec![vec![1], vec![2, 3], vec![0], vec![1]];
        let cycle = shortest_cycle(&adj).unwrap();
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&1) && cycle.contains(&3), "{cycle:?}");
    }

    #[test]
    fn no_cycle_in_dag() {
        let adj = vec![vec![1], vec![2], vec![]];
        assert_eq!(shortest_cycle(&adj), None);
    }

    #[test]
    fn self_loop() {
        let adj = vec![vec![], vec![1]];
        assert_eq!(shortest_cycle(&adj), Some(vec![1]));
    }

    #[test]
    fn report_display_names_blocked_cells() {
        let report = StallReport {
            step: 120,
            kind: StallKind::Deadlock,
            blocked_cells: vec![BlockedCell {
                node: 3,
                label: "join".into(),
                opcode: "Bin(Add)".into(),
                missing_ports: vec![1],
                full_output_arcs: vec![],
            }],
            held_arcs: vec![HeldArc {
                arc: 2,
                src: 1,
                dst: 3,
                tokens: 1,
                unacked: 0,
            }],
            cycle: None,
            fires_in_window: 0,
        };
        let text = report.to_string();
        assert!(text.contains("deadlock at step 120"));
        assert!(text.contains("cell 3 (join, Bin(Add)) blocked: waiting on port(s) [1]"));
        assert!(text.contains("arc 2 (cell 1 -> cell 3)"));
    }
}
