//! Router-level model of the packet-switched routing network (paper §2,
//! citing Dennis/Boughton/Leung, "Building Blocks for Data Flow
//! Prototypes": the networks are built from 2×2 packet routers "so the
//! necessary throughput capacity may be obtained at low cost").
//!
//! This is an **omega network**: `N = 2^k` ports, `k` stages of `N/2`
//! two-by-two routers wired by the perfect shuffle, destination-tag
//! routing (stage `s` examines destination bit `k−1−s`). Each router
//! output has a small FIFO queue; one packet advances per output per
//! cycle, and conflicts make the loser wait — so latency grows with load
//! and the network saturates at sufficiently high injection rates.
//!
//! The model answers the architectural question behind the paper's
//! traffic claim: at the packet rates a fully pipelined program actually
//! generates (≤ 1/2 packet per cell per instruction time, spread across
//! PEs), does the network deliver near its unloaded `log2 N` latency?
//! `exp_network` measures the latency/load curve and replays real
//! program traffic traces through the network.

use std::collections::VecDeque;

use crate::fault::LinkFault;

/// A packet in flight through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Destination output port.
    pub dest: usize,
    /// Injection cycle (for latency accounting).
    pub injected_at: u64,
    /// Sequence number (for FIFO-order checks).
    pub seq: u64,
}

/// An `N × N` omega network of 2×2 routers.
#[derive(Debug)]
pub struct OmegaNetwork {
    k: u32,
    /// Queues: `queues[stage][router][port]`; stage `k` holds outputs.
    queues: Vec<Vec<[VecDeque<Packet>; 2]>>,
    queue_cap: usize,
    now: u64,
    delivered: Vec<(u64, Packet)>,
    dropped_injections: u64,
    /// Link-down windows (fault injection): while a window is active the
    /// named router output forwards nothing, so packets stall in place
    /// and backpressure propagates — the network loses no packets.
    link_faults: Vec<LinkFault>,
    /// Forwarding opportunities refused because the link was down.
    link_stall_cycles: u64,
}

impl OmegaNetwork {
    /// Network with `ports = 2^k` inputs/outputs and per-link queues of
    /// `queue_cap` packets.
    pub fn new(ports: usize, queue_cap: usize) -> Self {
        assert!(ports.is_power_of_two() && ports >= 2);
        let k = ports.trailing_zeros();
        // Stages 0..k are router input queues; stage k is the delivery
        // row (one queue per output port, stored as [port][0]).
        let mut queues = Vec::new();
        for _ in 0..=k {
            let routers = ports / 2;
            queues.push(
                (0..routers.max(ports / 2))
                    .map(|_| [VecDeque::new(), VecDeque::new()])
                    .collect(),
            );
        }
        OmegaNetwork {
            k,
            queues,
            queue_cap,
            now: 0,
            delivered: Vec::new(),
            dropped_injections: 0,
            link_faults: Vec::new(),
            link_stall_cycles: 0,
        }
    }

    /// Take the router output at `(stage, port)` down for cycles
    /// `from..until` (`port` is the global line number leaving the stage,
    /// `0..ports`). A downed link stalls its packets in place — nothing
    /// is lost, but backpressure spreads upstream. Returns `Err` if the
    /// address is outside the network.
    pub fn fail_link(
        &mut self,
        stage: usize,
        port: usize,
        from: u64,
        until: u64,
    ) -> Result<(), String> {
        if stage >= self.k as usize {
            return Err(format!("link fault stage {stage} >= {} stages", self.k));
        }
        if port >= self.ports() {
            return Err(format!("link fault port {port} >= {} ports", self.ports()));
        }
        self.link_faults.push(LinkFault {
            stage,
            port,
            from,
            until,
        });
        Ok(())
    }

    /// Cycles in which a packet was ready to advance but its link was
    /// down.
    pub fn link_stall_cycles(&self) -> u64 {
        self.link_stall_cycles
    }

    fn link_down(&self, stage: usize, port: usize) -> bool {
        self.link_faults.iter().any(|lf| {
            lf.stage == stage && lf.port == port && lf.from <= self.now && self.now < lf.until
        })
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        1 << self.k
    }

    /// Stages (unloaded latency in cycles).
    pub fn stages(&self) -> u32 {
        self.k
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Packets delivered so far, with delivery cycles.
    pub fn delivered(&self) -> &[(u64, Packet)] {
        &self.delivered
    }

    /// Injections refused because the first-stage queue was full.
    pub fn dropped_injections(&self) -> u64 {
        self.dropped_injections
    }

    /// Whether no packet is anywhere in the network.
    pub fn is_empty(&self) -> bool {
        self.queues
            .iter()
            .all(|stage| stage.iter().all(|r| r[0].is_empty() && r[1].is_empty()))
    }

    /// The perfect shuffle: which (router, port) of stage `s+1` receives
    /// output `out` of router `r` in stage `s`.
    fn shuffle(&self, r: usize, out: usize) -> (usize, usize) {
        let n = self.ports();
        let line = 2 * r + out; // global line number leaving this stage
        let next_line = (line << 1 | line >> (self.k - 1)) & (n - 1);
        (next_line / 2, next_line % 2)
    }

    /// Try to inject a packet at input port `port`. Returns false if the
    /// entry queue is full (the PE retries next cycle — backpressure).
    pub fn inject(&mut self, port: usize, mut p: Packet) -> bool {
        p.injected_at = self.now;
        let (r, side) = (port / 2, port % 2);
        if self.queues[0][r][side].len() >= self.queue_cap {
            self.dropped_injections += 1;
            return false;
        }
        self.queues[0][r][side].push_back(p);
        true
    }

    /// Advance one cycle: every router forwards at most one packet per
    /// output; on conflict the lower input port wins (deterministic).
    pub fn step(&mut self) {
        let k = self.k as usize;
        // Process stages from last to first so a packet moves one stage
        // per cycle (no same-cycle ripple).
        for s in (0..k).rev() {
            // For each router, decide the packet each OUTPUT forwards.
            for r in 0..self.ports() / 2 {
                for out in 0..2usize {
                    // Inputs wanting this output, lower port first.
                    let mut chosen: Option<usize> = None;
                    for side in 0..2usize {
                        if let Some(p) = self.queues[s][r][side].front() {
                            // Destination-tag routing: stage s uses
                            // destination bit (k-1-s).
                            let want = (p.dest >> (k - 1 - s)) & 1;
                            if want == out {
                                chosen = Some(side);
                                break;
                            }
                        }
                    }
                    let Some(side) = chosen else { continue };
                    if self.link_down(s, 2 * r + out) {
                        // Downed link: the packet waits in place.
                        self.link_stall_cycles += 1;
                        continue;
                    }
                    // Space downstream?
                    let (nr, nside) = if s + 1 == k {
                        // Delivery row: infinite sink.
                        (usize::MAX, usize::MAX)
                    } else {
                        self.shuffle(r, out)
                    };
                    if s + 1 < k && self.queues[s + 1][nr][nside].len() >= self.queue_cap {
                        continue; // blocked; retry next cycle
                    }
                    let p = self.queues[s][r][side].pop_front().expect("front checked");
                    if s + 1 == k {
                        self.delivered.push((self.now + 1, p));
                    } else {
                        self.queues[s + 1][nr][nside].push_back(p);
                    }
                }
            }
        }
        self.now += 1;
    }

    /// Drain: run until every queue is empty (packets already injected all
    /// deliver). Returns cycles taken.
    pub fn drain(&mut self, max_cycles: u64) -> u64 {
        let start = self.now;
        while self.now - start < max_cycles {
            if self
                .queues
                .iter()
                .all(|stage| stage.iter().all(|r| r[0].is_empty() && r[1].is_empty()))
            {
                break;
            }
            self.step();
        }
        self.now - start
    }
}

/// Summary of one load experiment.
#[derive(Debug, Clone, Copy)]
pub struct LoadPoint {
    /// Offered injection rate (packets per port per cycle).
    pub offered: f64,
    /// Mean delivered latency in cycles.
    pub mean_latency: f64,
    /// 99th-percentile latency.
    pub p99_latency: u64,
    /// Achieved throughput (delivered per port per cycle).
    pub throughput: f64,
}

/// Uniform-random traffic at the given injection probability per port per
/// cycle, for `cycles` cycles (deterministic LCG; no external RNG).
pub fn uniform_load(ports: usize, queue_cap: usize, rate: f64, cycles: u64) -> LoadPoint {
    let mut net = OmegaNetwork::new(ports, queue_cap);
    let mut lcg: u64 = 0x2545F4914F6CDD1D;
    let mut next = move || {
        lcg ^= lcg << 13;
        lcg ^= lcg >> 7;
        lcg ^= lcg << 17;
        lcg
    };
    let mut seq = 0u64;
    for _ in 0..cycles {
        for port in 0..ports {
            let r = (next() >> 11) as f64 / (1u64 << 53) as f64;
            if r < rate {
                let dest = (next() as usize) & (ports - 1);
                let _ = net.inject(
                    port,
                    Packet {
                        dest,
                        injected_at: 0,
                        seq,
                    },
                );
                seq += 1;
            }
        }
        net.step();
    }
    net.drain(100_000);
    let lat: Vec<u64> = net
        .delivered()
        .iter()
        .map(|&(t, p)| t - p.injected_at)
        .collect();
    let mean = lat.iter().sum::<u64>() as f64 / lat.len().max(1) as f64;
    let mut sorted = lat.clone();
    sorted.sort_unstable();
    let p99 = sorted
        .get(sorted.len().saturating_sub(1).min(sorted.len() * 99 / 100))
        .copied()
        .unwrap_or(0);
    LoadPoint {
        offered: rate,
        mean_latency: mean,
        p99_latency: p99,
        throughput: net.delivered().len() as f64 / (cycles as f64 * ports as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_takes_log2_n_cycles() {
        for ports in [4usize, 8, 16, 64] {
            for dest in [0usize, ports - 1, ports / 2] {
                let mut net = OmegaNetwork::new(ports, 4);
                assert!(net.inject(
                    1 % ports,
                    Packet {
                        dest,
                        injected_at: 0,
                        seq: 0
                    }
                ));
                net.drain(1000);
                let &(t, p) = &net.delivered()[0];
                assert_eq!(p.dest, dest);
                assert_eq!(
                    t,
                    net.stages() as u64,
                    "ports={ports} dest={dest}: unloaded latency = stages"
                );
            }
        }
    }

    #[test]
    fn identity_permutation_routes_without_loss() {
        let ports = 16;
        let mut net = OmegaNetwork::new(ports, 4);
        for p in 0..ports {
            assert!(net.inject(
                p,
                Packet {
                    dest: p,
                    injected_at: 0,
                    seq: p as u64
                }
            ));
        }
        net.drain(1000);
        assert_eq!(net.delivered().len(), ports);
        let mut dests: Vec<usize> = net.delivered().iter().map(|&(_, p)| p.dest).collect();
        dests.sort_unstable();
        assert_eq!(dests, (0..ports).collect::<Vec<_>>());
    }

    #[test]
    fn hotspot_conflicts_serialize() {
        // Every port sends to destination 0: the last packet needs ≥ N
        // cycles (one delivery per cycle at the hot output).
        let ports = 8;
        let mut net = OmegaNetwork::new(ports, 8);
        for p in 0..ports {
            assert!(net.inject(
                p,
                Packet {
                    dest: 0,
                    injected_at: 0,
                    seq: p as u64
                }
            ));
        }
        net.drain(1000);
        assert_eq!(net.delivered().len(), ports);
        let last = net.delivered().iter().map(|&(t, _)| t).max().unwrap();
        assert!(last >= ports as u64, "hotspot must serialize: last={last}");
    }

    #[test]
    fn per_flow_order_preserved() {
        // Packets from one input to one destination stay in order.
        let ports = 8;
        let mut net = OmegaNetwork::new(ports, 2);
        let mut injected = 0u64;
        for cycle in 0..50u64 {
            let _ = cycle;
            if net.inject(
                3,
                Packet {
                    dest: 5,
                    injected_at: 0,
                    seq: injected,
                },
            ) {
                injected += 1;
            }
            net.step();
        }
        net.drain(1000);
        let seqs: Vec<u64> = net
            .delivered()
            .iter()
            .filter(|&&(_, p)| p.dest == 5)
            .map(|&(_, p)| p.seq)
            .collect();
        assert!(!seqs.is_empty());
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
    }

    #[test]
    fn downed_link_delays_but_never_drops() {
        let mut net = OmegaNetwork::new(4, 4);
        net.fail_link(0, 1, 0, 20).unwrap();
        // Port 1 → dest 3 routes over line 1 out of stage 0.
        assert!(net.inject(
            1,
            Packet {
                dest: 3,
                injected_at: 0,
                seq: 0
            }
        ));
        net.drain(1000);
        assert_eq!(net.delivered().len(), 1);
        let (t, p) = net.delivered()[0];
        assert_eq!(p.dest, 3);
        assert!(t >= 21, "delivery at {t} must wait out the fault window");
        assert!(net.link_stall_cycles() >= 19, "{}", net.link_stall_cycles());
        // Addresses outside the network are rejected.
        assert!(net.fail_link(9, 0, 0, 1).is_err());
        assert!(net.fail_link(0, 99, 0, 1).is_err());
    }

    #[test]
    fn latency_grows_with_load_and_saturates() {
        let light = uniform_load(16, 4, 0.05, 4000);
        let heavy = uniform_load(16, 4, 0.9, 4000);
        assert!(light.mean_latency < net_stages_f(16) + 1.0);
        assert!(heavy.mean_latency > light.mean_latency + 1.0);
        // Saturation: achieved throughput well below offered at 0.9.
        assert!(heavy.throughput < 0.8);
        assert!(light.throughput > 0.045);
    }

    fn net_stages_f(ports: usize) -> f64 {
        (ports as f64).log2()
    }
}
