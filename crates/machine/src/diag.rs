//! Source-level rendering of machine diagnostics.
//!
//! The simulator's [`MachineError`] and [`StallReport`] carry bare cell
//! indices and labels — all the machine knows. When the graph came out of
//! the compiler, its nodes carry provenance ids into a
//! [`Provenance`](valpipe_ir::prov::Provenance) table, and the helpers
//! here render the same diagnostics with the Val statement each cell
//! implements:
//!
//! ```text
//! deadlock at step 812 (0 firings in final window)
//! cell 17 (B.dgate.14, TGATE) blocked: waiting on port(s) [1]
//!   at fig6.val:4:5: in forall body of block 'B' 'B[i] := (A[i-1]+A[i]+A[i+1])/3.'
//! ```
//!
//! The diagnostic structs themselves are unchanged (the provenance table
//! is a compiler-side artifact, not machine state), so snapshots and the
//! machine-code format are unaffected.

use crate::error::MachineError;
use crate::watchdog::StallReport;
use valpipe_ir::prov::Provenance;
use valpipe_ir::Graph;

/// `file:line:col: in <role> '<snippet>'` for a cell, or `None` when the
/// cell has no resolved provenance (hand-built graphs).
fn cell_source(g: &Graph, prov: &Provenance, node: usize) -> Option<String> {
    let n = g.nodes.get(node)?;
    if !prov.is_resolved(n.src) {
        return None;
    }
    Some(prov.describe(n.src))
}

/// Render a [`MachineError`] with the source statement of every cell it
/// names. Falls back to the error's plain `Display` when the faulting
/// cell has no provenance.
pub fn render_error(e: &MachineError, g: &Graph, prov: &Provenance) -> String {
    let mut out = e.to_string();
    let node = match e {
        MachineError::Eval { node, .. } => Some(*node),
        MachineError::NonBoolControl { node, .. } => Some(*node),
        MachineError::UnexpandedFifo(node) => Some(*node),
        _ => None,
    };
    if let Some(src) = node.and_then(|n| cell_source(g, prov, n)) {
        out.push_str("\n  at ");
        out.push_str(&src);
    }
    out
}

/// Render a [`StallReport`] with the source statement of every blocked
/// cell, every held arc's endpoints, and the wait cycle. Cells without
/// provenance keep their plain one-line form.
pub fn render_stall(r: &StallReport, g: &Graph, prov: &Provenance) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} at step {} ({} firings in final window)",
        r.kind, r.step, r.fires_in_window
    );
    for c in &r.blocked_cells {
        let _ = write!(out, "cell {} ({}, {}) blocked:", c.node, c.label, c.opcode);
        if !c.missing_ports.is_empty() {
            let _ = write!(out, " waiting on port(s) {:?}", c.missing_ports);
        }
        if !c.full_output_arcs.is_empty() {
            let _ = write!(
                out,
                " output arc(s) {:?} full (consumer never acknowledged)",
                c.full_output_arcs
            );
        }
        out.push('\n');
        if let Some(src) = cell_source(g, prov, c.node) {
            let _ = writeln!(out, "  at {src}");
        }
    }
    if r.blocked_cells.is_empty() {
        out.push_str("no cell holds partial inputs; sources were never drained\n");
    }
    for a in &r.held_arcs {
        let _ = writeln!(
            out,
            "arc {} (cell {} -> cell {}): {} token(s) queued, {} slot(s) unacknowledged",
            a.arc, a.src, a.dst, a.tokens, a.unacked
        );
        if let Some(src) = cell_source(g, prov, a.dst) {
            let _ = writeln!(out, "  at {src}");
        }
    }
    if let Some(cycle) = &r.cycle {
        let path: Vec<String> = cycle.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(out, "wait cycle: {} -> {}", path.join(" -> "), cycle[0]);
        for &n in cycle {
            if let Some(src) = cell_source(g, prov, n) {
                let _ = writeln!(out, "  cell {n} at {src}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::{BlockedCell, StallKind};
    use valpipe_ir::opcode::Opcode;
    use valpipe_ir::prov::Span;

    fn graph_with_prov() -> (Graph, Provenance) {
        let mut prov = Provenance::new("ex.val");
        let id = prov.add(
            "forall body of block 'B'",
            Span::new(0, 10, 4, 5),
            "B[i] := A[i] * 2.",
        );
        let mut g = Graph::new();
        g.set_provenance(id);
        g.add_node(Opcode::Id, "b.cell".to_string());
        (g, prov)
    }

    #[test]
    fn error_rendering_appends_source_line() {
        let (g, prov) = graph_with_prov();
        let e = MachineError::Eval {
            node: 0,
            label: "b.cell".into(),
            message: "division by zero".into(),
        };
        let r = render_error(&e, &g, &prov);
        assert!(r.starts_with("cell 0 (b.cell): division by zero"));
        assert!(
            r.contains("at ex.val:4:5: in forall body of block 'B' 'B[i] := A[i] * 2.'"),
            "missing source line: {r}"
        );
    }

    #[test]
    fn unresolved_cells_render_plain() {
        let g = {
            let mut g = Graph::new();
            g.add_node(Opcode::Id, "x".to_string());
            g
        };
        let prov = Provenance::new("ex.val");
        let e = MachineError::NonBoolControl {
            node: 0,
            label: "x".into(),
        };
        assert_eq!(render_error(&e, &g, &prov), e.to_string());
    }

    #[test]
    fn stall_rendering_names_blocked_cells() {
        let (g, prov) = graph_with_prov();
        let r = StallReport {
            step: 42,
            kind: StallKind::Deadlock,
            blocked_cells: vec![BlockedCell {
                node: 0,
                label: "b.cell".into(),
                opcode: "ID".into(),
                missing_ports: vec![0],
                full_output_arcs: vec![],
            }],
            held_arcs: vec![],
            cycle: None,
            fires_in_window: 0,
        };
        let s = render_stall(&r, &g, &prov);
        assert!(s.contains("deadlock at step 42"));
        assert!(s.contains("cell 0 (b.cell, ID) blocked: waiting on port(s) [0]"));
        assert!(s.contains("at ex.val:4:5: in forall body of block 'B'"));
    }
}
