//! The parallel event-driven step: [`Kernel::ParallelEvent`]'s phased
//! execution of one instruction time across a persistent worker pool.
//!
//! # Why this is deterministic (DESIGN.md §11 carries the full argument)
//!
//! The machine is tick-synchronous: whether a cell fires at instruction
//! time `t`, and what it does, depends only on machine state at the
//! *start* of `t` — all enabled cells fire simultaneously. That makes
//! one tick's work embarrassingly parallel provided the phases stay
//! separated and the mutations merge in a canonical order:
//!
//! 1. **Release** — due acknowledge slots expire. Arcs are partitioned
//!    into contiguous id ranges, one disjoint `&mut` slice per worker;
//!    releases on distinct arcs are independent.
//! 2. **Plan** — the drained ready set (ascending cell ids) is split
//!    into contiguous chunks; planning is read-only, so workers share
//!    `&Simulator`. Concatenating the per-worker plan buffers in worker
//!    order restores exactly the sequential ascending-cell-id plan
//!    list. The first planning error in worker order is the error the
//!    sequential loop would have hit first (all lower cells planned
//!    clean), and it propagates before any wakeup or firing side
//!    effect — planning has no side effects, so the error state is
//!    bit-identical to the sequential kernels'.
//! 3. **Fire** — arc mutations are partitioned by *arc ownership*:
//!    every worker walks the full plan list in order and applies only
//!    the consumes/emits landing on arcs in its contiguous range. An
//!    arc sees at most one consume (its unique destination cell) and
//!    one emit (its unique source cell) per tick, and a consume moves a
//!    slot from `queue` to `freeing` without changing `occupied()`, so
//!    the two commute — including the `Duplicate` fault's capacity
//!    check. Fault fates are position-keyed (`hash_mix(seed, arc,
//!    step)`), not draw-order-keyed, so every worker resolves the same
//!    fates the sequential kernels do with no RNG coordination.
//!    Per-cell bookkeeping ([`Simulator::note_fire`] — the exact
//!    function the sequential `fire` uses) then runs sequentially over
//!    the plans in cell order, and buffered wakeups merge afterwards;
//!    wheel insertion order is irrelevant because due lists are
//!    sorted and deduplicated on drain.
//!
//! The pool blocks workers on a condvar between ticks (never spins), so
//! oversubscribing a small machine degrades gracefully; ticks below
//! [`PAR_MIN_WORK`] ready items skip the fan-out entirely and run the
//! sequential step body, which produces identical results by the same
//! argument with one worker.

use std::cell::UnsafeCell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use valpipe_ir::graph::Graph;
use valpipe_ir::value::Value;
use valpipe_ir::NodeId;

use crate::error::SimError;
use crate::fault::{AckFate, ResultFate};
use crate::scheduler::{Kernel, Wheel};
use crate::shard::{EpochStats, ShardMap};
use crate::sim::{
    consume_token, emit_token, launch_value, note_fire_cell, plan_cell, release_acks, ArcState,
    Cells, FirePlan, NoteSink, PlanView, Simulator, StopSlots, NO_SLOT,
};

/// Below this many ready items (due cells + due arcs) a tick runs the
/// sequential step body instead of dispatching to the pool: the phase
/// barriers cost more than the work. Results are identical either way.
pub(crate) const PAR_MIN_WORK: usize = 96;

/// Hard cap on `ParallelEvent(w)`; a worker beyond this adds only
/// scheduling overhead on any machine this simulator targets.
pub(crate) const MAX_WORKERS: usize = 32;

/// Per-worker buffers for one tick, reused across the whole run.
#[derive(Debug, Default)]
pub(crate) struct WorkerBuf {
    /// Plans from this worker's chunk of the ready set (phase 2).
    plans: Vec<(u32, FirePlan)>,
    /// Frozen cells deferred to their thaw time (phase 2).
    thaw: Vec<(u32, u64)>,
    /// First planning error in this worker's chunk (phase 2).
    err: Option<SimError>,
    /// Wakeups for arcs this worker owns (phase 3).
    arc_wakes: Vec<(u32, u64)>,
    /// Wakeups for cells, from acks freeing producer slots and packets
    /// reaching consumers on arcs this worker owns (phase 3).
    node_wakes: Vec<(u32, u64)>,
}

impl WorkerBuf {
    fn clear(&mut self) {
        self.plans.clear();
        self.thaw.clear();
        self.err = None;
        self.arc_wakes.clear();
        self.node_wakes.clear();
    }
}

/// Contiguous even partition of `0..len` into `parts` ranges (the first
/// `len % parts` ranges get the extra element).
fn chunk_ranges(len: usize, parts: usize) -> impl Iterator<Item = Range<usize>> {
    let base = len / parts;
    let extra = len % parts;
    let mut start = 0;
    (0..parts).map(move |i| {
        let size = base + usize::from(i < extra);
        let r = start..start + size;
        start += size;
        r
    })
}

/// Split a slice into `parts` contiguous `(base index, sub-slice)`
/// shards — disjoint `&mut` views, one per worker.
fn split_shards<T>(items: &mut [T], parts: usize) -> Vec<(usize, &mut [T])> {
    let mut out = Vec::with_capacity(parts);
    let total = items.len();
    let mut rest = items;
    let mut base = 0;
    for r in chunk_ranges(total, parts) {
        let (head, tail) = rest.split_at_mut(r.len());
        out.push((base, head));
        base += r.len();
        rest = tail;
    }
    out
}

/// The job handed to workers: a borrowed closure with its lifetime
/// erased. Sound because [`Pool::run`] does not return until every
/// worker has finished the call, so the borrow outlives all uses.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared across workers by construction)
// and the pointer is only dereferenced while `Pool::run` keeps the
// referent alive.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Bumped once per dispatched job so sleeping workers can tell a
    /// new job from the one they already ran.
    epoch: u64,
    /// Workers still running the current job.
    remaining: usize,
    /// A worker's job panicked (re-raised on the main thread).
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    start: Condvar,
    done: Condvar,
}

/// A persistent pool of `workers − 1` blocked threads; the calling
/// thread acts as worker 0, so `ParallelEvent(w)` uses exactly `w`
/// threads during a tick and zero CPU between ticks.
pub(crate) struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    pub(crate) fn new(workers: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..workers.max(1))
            .map(|wi| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("valpipe-par-{wi}"))
                    .spawn(move || worker_loop(&shared, wi))
                    .expect("spawn parallel kernel worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Total worker count, including the calling thread.
    pub(crate) fn workers(&self) -> usize {
        self.handles.len() + 1
    }

    /// Run `f(worker_index)` once per worker, concurrently; returns
    /// after every call finished. Re-raises worker panics here.
    pub(crate) fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            f(0);
            return;
        }
        // SAFETY: erases `f`'s borrow lifetime from the stored pointer.
        // Sound because this function clears the job and does not return
        // until `remaining` hits zero, so no worker touches the pointer
        // after `f`'s borrow ends.
        let job = Job(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(job);
            st.epoch += 1;
            st.remaining = self.handles.len();
        }
        self.shared.start.notify_all();
        f(0);
        let mut st = self.shared.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        if std::mem::take(&mut st.panicked) {
            drop(st);
            panic!("parallel kernel worker panicked");
        }
    }

    /// Run `f(worker_index, &mut shard[worker_index])` once per worker.
    /// Each worker locks only its own shard's mutex (uncontended), so
    /// this is plain safe Rust handing each worker exclusive access to
    /// its slice of the machine.
    pub(crate) fn run_sharded<T: Send>(&self, shards: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        debug_assert_eq!(shards.len(), self.workers());
        let slots: Vec<Mutex<&mut T>> = shards.iter_mut().map(Mutex::new).collect();
        self.run(&|wi| {
            let mut slot = slots[wi].lock().unwrap();
            f(wi, &mut slot);
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, wi: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    break;
                }
                st = shared.start.wait(st).unwrap();
            }
            seen = st.epoch;
            st.job.expect("job present while epoch advanced")
        };
        // SAFETY: `Pool::run` keeps the closure alive until `remaining`
        // reaches zero, which happens strictly after this call returns.
        let outcome = catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.0 })(wi)));
        let mut st = shared.state.lock().unwrap();
        if outcome.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

impl Simulator<'_> {
    /// One instruction time under [`Kernel::ParallelEvent`].
    pub(crate) fn step_parallel(&mut self, workers: usize) -> Result<usize, SimError> {
        let now = self.now;
        let mut due = std::mem::take(&mut self.scratch.due_nodes);
        let mut due_arcs = std::mem::take(&mut self.scratch.due_arcs);
        self.sched.due_arcs(now, &mut due_arcs);
        self.sched.due_nodes(now, &mut due);
        let w = workers.clamp(1, MAX_WORKERS);
        let r = if w < 2 || due.len() + due_arcs.len() < PAR_MIN_WORK {
            self.step_ready(&due, &due_arcs)
        } else {
            self.step_ready_parallel(w, &due, &due_arcs)
        };
        self.scratch.due_nodes = due;
        self.scratch.due_arcs = due_arcs;
        r
    }

    fn step_ready_parallel(
        &mut self,
        w: usize,
        due: &[u32],
        due_arcs: &[u32],
    ) -> Result<usize, SimError> {
        debug_assert!(matches!(self.cfg.kernel, Kernel::ParallelEvent(_)));
        let now = self.now;
        if self.pool.as_ref().is_none_or(|p| p.workers() != w) {
            self.pool = Some(Pool::new(w));
        }
        let mut bufs = std::mem::take(&mut self.scratch.bufs);
        bufs.resize_with(w, WorkerBuf::default);
        for b in &mut bufs {
            b.clear();
        }

        // Phase 1: release due acknowledge slots, arcs partitioned into
        // contiguous id ranges (due_arcs is sorted, so each worker
        // binary-searches its window).
        {
            let pool = self.pool.as_ref().expect("pool created above");
            let mut shards = split_shards(&mut self.arcs, w);
            pool.run_sharded(&mut shards, |_wi, (base, slice)| {
                let lo = due_arcs.partition_point(|&a| (a as usize) < *base);
                let hi = due_arcs.partition_point(|&a| (a as usize) < *base + slice.len());
                for &aid in &due_arcs[lo..hi] {
                    release_acks(&mut slice[aid as usize - *base], now);
                }
            });
        }

        // Phase 2: plan, read-only over the whole machine; the ready
        // set is chunked contiguously so concatenation preserves the
        // ascending cell order.
        {
            let this: &Simulator = self;
            let pool = self.pool.as_ref().expect("pool created above");
            let mut shards: Vec<(Range<usize>, &mut WorkerBuf)> =
                chunk_ranges(due.len(), w).zip(bufs.iter_mut()).collect();
            pool.run_sharded(&mut shards, |_wi, (range, buf)| {
                if let Err(e) = this.plan_due(&due[range.clone()], &mut buf.plans, &mut buf.thaw) {
                    buf.err = Some(e);
                }
            });
        }
        let mut first_err = None;
        for b in &mut bufs {
            let e = b.err.take();
            if first_err.is_none() {
                first_err = e;
            }
        }
        if let Some(e) = first_err {
            self.scratch.bufs = bufs;
            return Err(e);
        }
        let mut plans = std::mem::take(&mut self.scratch.plans);
        plans.clear();
        for b in &bufs {
            plans.extend_from_slice(&b.plans);
        }
        for b in &bufs {
            for &(nid, at) in &b.thaw {
                self.sched.wake(nid, at);
            }
        }
        self.apply_throttle(&mut plans);

        // Phase 3: fire. Every worker walks the full plan list in order
        // and applies the consume/emit operations landing on its arc
        // range; wakeups are buffered per worker.
        {
            let g = self.g;
            let fault = &self.fault;
            let fwd = &self.fwd_delay;
            let ack = &self.ack_delay;
            let plans: &[(u32, FirePlan)] = &plans;
            let pool = self.pool.as_ref().expect("pool created above");
            let mut shards: Vec<((usize, &mut [_]), &mut WorkerBuf)> =
                split_shards(&mut self.arcs, w)
                    .into_iter()
                    .zip(bufs.iter_mut())
                    .collect();
            pool.run_sharded(&mut shards, |_wi, ((base, slice), buf)| {
                let (base, end) = (*base, *base + slice.len());
                for &(nid, plan) in plans {
                    for arc in plan.consumes() {
                        let i = arc.idx();
                        if i < base || i >= end {
                            continue;
                        }
                        let fate = match fault {
                            Some(f) => f.ack_fate(i, now),
                            None => AckFate::Deliver,
                        };
                        if let Some(t) = consume_token(&mut slice[i - base], now + ack[i], fate) {
                            // The freed slot re-enables the arc's producer.
                            buf.arc_wakes.push((i as u32, t));
                            buf.node_wakes.push((g.arcs[i].src.idx() as u32, t));
                        }
                    }
                    if let Some(v) = launch_value(g, nid, &plan) {
                        for &a in &g.nodes[nid as usize].outputs {
                            let i = a.idx();
                            if i < base || i >= end {
                                continue;
                            }
                            let fate = match fault {
                                Some(f) => f.result_fate(i, now),
                                None => ResultFate::Deliver,
                            };
                            if let Some(t) = emit_token(&mut slice[i - base], v, now + fwd[i], fate)
                            {
                                buf.node_wakes.push((g.arcs[i].dst.idx() as u32, t));
                            }
                        }
                    }
                }
            });
        }

        // Merge: per-cell bookkeeping in plan (= cell) order — the same
        // `note_fire` the sequential fire loop runs — then the buffered
        // wakeups (insertion order is irrelevant: due lists sort and
        // deduplicate on drain).
        let count = plans.len();
        for &(nid, plan) in &plans {
            self.note_fire(NodeId(nid), &plan);
            // A fired cell may be enabled again immediately; re-examine
            // it next step.
            self.sched.wake(nid, now + 1);
        }
        for b in &bufs {
            for &(a, t) in &b.arc_wakes {
                self.sched.wake_arc(a, t);
            }
            for &(n, t) in &b.node_wakes {
                self.sched.wake(n, t);
            }
        }
        plans.clear();
        self.scratch.plans = plans;
        self.scratch.bufs = bufs;
        self.now += 1;
        Ok(count)
    }
}

// ---------------------------------------------------------------------------
// Epoch-batched execution (DESIGN.md §16).
//
// The per-step parallel kernel above pays three barrier handoffs per
// instruction time. The epoch engine amortizes them: the global wheels
// know the earliest pending wakeup, and influence spreads at most one
// undirected hop per step (every result and acknowledge delay is ≥ 1),
// so a BFS distance from each cell to the nearest shard boundary turns
// the pending-wakeup set into a proven horizon `h` during which no
// inter-shard token can land. Each shard then runs `h` whole steps on
// its own private wheels with zero synchronization, and the merge
// replays per-sub-step bookkeeping canonically — bit-identical to the
// sequential kernels.

/// Interior-mutability wrapper for machine state shared across shard
/// workers. Soundness contract: the shard map partitions cells and arcs,
/// every worker only dereferences entries its shard owns (checked by
/// `debug_assert` in the accessors below), and the proven horizon
/// guarantees no cross-shard entry is touched at all.
#[repr(transparent)]
struct ShardCell<T>(UnsafeCell<T>);

// SAFETY: disjoint access per the shard map; see the type's contract.
unsafe impl<T: Send> Sync for ShardCell<T> {}

impl<T> ShardCell<T> {
    fn get(&self) -> *mut T {
        self.0.get()
    }
}

/// Reinterpret an exclusively borrowed slice as shard-shareable cells.
/// `ShardCell<T>` is `repr(transparent)` over `UnsafeCell<T>`, which is
/// `repr(transparent)` over `T`, so the layouts match exactly.
fn share<T>(xs: &mut [T]) -> &[ShardCell<T>] {
    unsafe { &*(xs as *mut [T] as *const [ShardCell<T>]) }
}

/// One sink's output record: port name plus `(arrival time, value)` log.
type OutputLog = (String, Vec<(u64, Value)>);

/// Every piece of machine state a shard worker reads or writes during an
/// epoch, pre-split into disjointly-owned (`ShardCell`) and genuinely
/// read-only slices.
struct MachineShared<'a> {
    g: &'a Graph,
    arcs: &'a [ShardCell<ArcState>],
    src_pos: &'a [ShardCell<usize>],
    ctl_pos: &'a [ShardCell<u64>],
    fires: &'a [ShardCell<u64>],
    gate_passes: &'a [ShardCell<u64>],
    gate_discards: &'a [ShardCell<u64>],
    fire_times: Option<&'a [ShardCell<Vec<u64>>]>,
    outputs: &'a [ShardCell<OutputLog>],
    emit_times: &'a [ShardCell<(String, Vec<u64>)>],
    src_data: &'a [Option<Vec<Value>>],
    sink_slot: &'a [u32],
    src_slot: &'a [u32],
    fwd: &'a [u64],
    ack: &'a [u64],
}

/// One shard's view of the machine during an epoch: implements the same
/// [`PlanView`]/[`NoteSink`] traits the `Simulator` does, over the
/// shared slices, so `plan_cell`/`note_fire_cell` are shared verbatim.
struct ShardExec<'a> {
    shared: &'a MachineShared<'a>,
    map: &'a ShardMap,
    shard: u32,
    /// Source emissions + sink arrivals this sub-step (delta, merged
    /// into `Simulator::progress` during replay).
    progress: u64,
    am: u64,
    fu: u64,
}

impl ShardExec<'_> {
    #[inline]
    fn check_cell(&self, i: usize) {
        debug_assert_eq!(
            self.map.cell_shard[i], self.shard,
            "shard touched a cell it does not own"
        );
    }
}

impl PlanView for ShardExec<'_> {
    fn arc(&self, a: usize) -> &ArcState {
        debug_assert_eq!(self.map.arc_shard[a], self.shard);
        debug_assert!(!self.map.arc_cross[a], "epoch touched a cross arc");
        unsafe { &*self.shared.arcs[a].get() }
    }
    fn ctl_pos(&self, i: usize) -> u64 {
        self.check_cell(i);
        unsafe { *self.shared.ctl_pos[i].get() }
    }
    fn src_pos(&self, i: usize) -> usize {
        self.check_cell(i);
        unsafe { *self.shared.src_pos[i].get() }
    }
    fn src_data(&self, i: usize) -> Option<&[Value]> {
        self.shared.src_data[i].as_deref()
    }
}

impl NoteSink for ShardExec<'_> {
    fn bump_gate(&mut self, i: usize, pass: bool) {
        self.check_cell(i);
        unsafe {
            if pass {
                *self.shared.gate_passes[i].get() += 1;
            } else {
                *self.shared.gate_discards[i].get() += 1;
            }
        }
    }
    fn record_output(&mut self, i: usize, t: u64, v: Value) {
        self.check_cell(i);
        let slot = self.shared.sink_slot[i] as usize;
        unsafe { (*self.shared.outputs[slot].get()).1.push((t, v)) };
        self.progress += 1;
    }
    fn advance_source(&mut self, i: usize, t: u64) {
        self.check_cell(i);
        let slot = self.shared.src_slot[i] as usize;
        unsafe {
            *self.shared.src_pos[i].get() += 1;
            (*self.shared.emit_times[slot].get()).1.push(t);
        }
        self.progress += 1;
    }
    fn advance_ctl(&mut self, i: usize) {
        self.check_cell(i);
        unsafe { *self.shared.ctl_pos[i].get() += 1 };
    }
    fn count_fire(&mut self, i: usize, t: u64, am: bool, fu: bool) {
        self.check_cell(i);
        unsafe {
            *self.shared.fires[i].get() += 1;
            if let Some(ft) = self.shared.fire_times {
                (*ft[i].get()).push(t);
            }
        }
        if am {
            self.am += 1;
        }
        if fu {
            self.fu += 1;
        }
    }
}

/// One shard's private execution state, reused across epochs.
struct ShardState {
    node_wheel: Wheel,
    arc_wheel: Wheel,
    due: Vec<u32>,
    due_arcs: Vec<u32>,
    plans: Vec<(u32, FirePlan)>,
    /// Per sub-step `(fired, progress delta)` — the canonical replay
    /// feed for tracker/idle bookkeeping on the merge side.
    log: Vec<(u32, u32)>,
    /// First error this shard hit: `(sub-step, cell id, error)`.
    err: Option<(u64, u32, SimError)>,
    am: u64,
    fu: u64,
}

impl ShardState {
    fn new() -> ShardState {
        ShardState {
            node_wheel: Wheel::new(0),
            arc_wheel: Wheel::new(0),
            due: Vec::new(),
            due_arcs: Vec::new(),
            plans: Vec::new(),
            log: Vec::new(),
            err: None,
            am: 0,
            fu: 0,
        }
    }
}

/// The epoch engine: topology shard map plus per-shard wheels and
/// scratch. Like `StepScratch`, an execution-strategy artifact — never
/// snapshotted, rebuilt lazily after a restore.
pub(crate) struct EpochEngine {
    map: ShardMap,
    /// Longest packet latency (fault-free, so no slack term) — the
    /// quiescence window, mirroring `run`'s `max_lat`.
    max_lat: u64,
    /// Per output slot: how many sink cells feed it (bounds how fast a
    /// `stop_outputs` target can fill).
    sink_feeders: Vec<u32>,
    shards: Vec<ShardState>,
    nodes_scratch: Vec<(u32, u64)>,
    arcs_scratch: Vec<(u32, u64)>,
    pub(crate) stats: EpochStats,
}

impl EpochEngine {
    fn new(
        g: &Graph,
        cells: &Cells,
        policy: crate::shard::ShardPolicy,
        workers: usize,
        fwd: &[u64],
        ack: &[u64],
    ) -> EpochEngine {
        let map = ShardMap::build(g, policy, workers);
        let max_lat = fwd.iter().chain(ack.iter()).copied().max().unwrap_or(1);
        let mut sink_feeders = vec![0u32; cells.outputs.len()];
        for &s in &cells.sink_slot {
            if s != NO_SLOT {
                sink_feeders[s as usize] += 1;
            }
        }
        let stats = EpochStats {
            shards: workers as u32,
            cross_arcs: map.cross_arcs,
            shard_cells: map.shard_cells.clone(),
            ..EpochStats::default()
        };
        EpochEngine {
            map,
            max_lat,
            sink_feeders,
            shards: (0..workers).map(|_| ShardState::new()).collect(),
            nodes_scratch: Vec::new(),
            arcs_scratch: Vec::new(),
            stats,
        }
    }
}

/// Upper bound on the epoch length such that a `stop_outputs` target
/// cannot become satisfied strictly *inside* the epoch (the run loop
/// only checks it at step boundaries). Every watched slot must reach its
/// count, and a slot with `f` feeder cells gains at most `f` packets per
/// step, so the slot needing the most steps governs: `ceil(r / f)` steps
/// keep the target unmet for the first `ceil(r / f) - 1 + 1` loop-top
/// checks. Returns 1 (forcing fallback) if the target is already met.
fn output_horizon_bound(
    stop: &StopSlots,
    outputs: &[(String, Vec<(u64, Value)>)],
    feeders: &[u32],
) -> u64 {
    let StopSlots::Watch(watch) = stop else {
        // No reachable target: `Inactive` never stops, `Never` never
        // fills. Either way the bound is vacuous.
        return u64::MAX;
    };
    let mut bound = u64::MAX;
    let mut unfilled = false;
    for &(slot, count) in watch {
        let have = outputs[slot as usize].1.len();
        if have >= count {
            continue;
        }
        unfilled = true;
        let remaining = (count - have) as u64;
        let f = feeders[slot as usize] as u64;
        if f == 0 {
            continue; // can never fill; no constraint from this slot
        }
        bound = bound.min(remaining.div_ceil(f));
    }
    if unfilled {
        bound
    } else {
        1 // target already met: the loop top must see it now
    }
}

/// Run shard `s` alone for `h` sub-steps starting at `t0`. Pure shard
/// work: private wheels, owned cells/arcs, no fault hooks (the epoch
/// gate proved the run fault-free). Errors stop the shard; the merge
/// side picks the canonical first error across shards.
fn run_shard(
    shared: &MachineShared<'_>,
    map: &ShardMap,
    s: u32,
    st: &mut ShardState,
    t0: u64,
    h: u64,
) {
    let mut exec = ShardExec {
        shared,
        map,
        shard: s,
        progress: 0,
        am: 0,
        fu: 0,
    };
    for k in 0..h {
        let t = t0 + k;
        // Phase 1: release due acknowledge slots.
        st.arc_wheel.drain(t, &mut st.due_arcs);
        for &a in &st.due_arcs {
            debug_assert_eq!(map.arc_shard[a as usize], s);
            debug_assert!(!map.arc_cross[a as usize]);
            release_acks(unsafe { &mut *shared.arcs[a as usize].get() }, t);
        }
        // Phase 2: plan due cells (drain sorts + dedups, so plans are
        // in ascending cell order — the canonical tie-break).
        st.node_wheel.drain(t, &mut st.due);
        st.plans.clear();
        for &nid in &st.due {
            debug_assert_eq!(map.cell_shard[nid as usize], s);
            debug_assert!(
                map.dist[nid as usize] > 0,
                "boundary cell examined inside a proven horizon"
            );
            match plan_cell(shared.g, &exec, t, NodeId(nid)) {
                Ok(Some(plan)) => st.plans.push((nid, plan)),
                Ok(None) => {}
                Err(e) => {
                    st.err = Some((k, nid, e));
                    return;
                }
            }
        }
        // Phase 3: fire in ascending cell order.
        let progress_before = exec.progress;
        for i in 0..st.plans.len() {
            let (nid, plan) = st.plans[i];
            for arc in plan.consumes() {
                let a = arc.idx();
                let src = shared.g.arcs[a].src.idx() as u32;
                let ack_at = t + shared.ack[a];
                let arc_st = unsafe { &mut *shared.arcs[a].get() };
                if let Some(ft) = consume_token(arc_st, ack_at, AckFate::Deliver) {
                    st.arc_wheel.push(a as u32, ft);
                    st.node_wheel.push(src, ft);
                }
            }
            if let Some(v) = note_fire_cell(shared.g, &mut exec, t, NodeId(nid), &plan) {
                for &a in &shared.g.nodes[nid as usize].outputs {
                    let ai = a.idx();
                    debug_assert!(!map.arc_cross[ai], "epoch emitted onto a cross arc");
                    let dst = shared.g.arcs[ai].dst.idx() as u32;
                    let ready = t + shared.fwd[ai];
                    let arc_st = unsafe { &mut *shared.arcs[ai].get() };
                    if let Some(rt) = emit_token(arc_st, v, ready, ResultFate::Deliver) {
                        st.node_wheel.push(dst, rt);
                    }
                }
            }
            st.node_wheel.push(nid, t + 1);
        }
        st.log.push((
            st.plans.len() as u32,
            (exec.progress - progress_before) as u32,
        ));
    }
    st.am = exec.am;
    st.fu = exec.fu;
}

impl Simulator<'_> {
    /// Attempt an epoch-batched multi-step advance (DESIGN.md §16).
    /// Returns `Ok(None)` when no horizon ≥ 2 is provable right now —
    /// the caller falls back to the ordinary per-step parallel kernel
    /// for exactly one step. `Ok(Some(fired))` reports the fire count
    /// of the *last* sub-step executed, matching what a sequence of
    /// `step()` calls would have returned last.
    pub(crate) fn try_step_epoch(&mut self, workers: usize) -> Result<Option<usize>, SimError> {
        let w = workers.clamp(2, MAX_WORKERS);
        if self.epoch.is_none() {
            self.epoch = Some(Box::new(EpochEngine::new(
                self.g,
                &self.cells,
                self.cfg.shard_policy,
                w,
                &self.fwd_delay,
                &self.ack_delay,
            )));
        }
        let mut eng = self.epoch.take().expect("engine just installed");
        let res = self.epoch_step(&mut eng, w);
        self.epoch = Some(eng);
        res
    }

    fn epoch_step(&mut self, eng: &mut EpochEngine, w: usize) -> Result<Option<usize>, SimError> {
        if !eng.map.viable {
            return Ok(None);
        }
        let t0 = self.now;
        // The epoch may not run past the pause/step-limit boundary, and
        // may not let a stop_outputs target fill strictly inside it.
        let cap = self
            .cfg
            .epoch_cap
            .min(self.epoch_stop_cap.saturating_sub(t0))
            .min(output_horizon_bound(
                &self.stop_slots,
                &self.cells.outputs,
                &eng.sink_feeders,
            ));
        if cap < 2 {
            eng.stats.horizon_fallbacks += 1;
            return Ok(None);
        }
        // Horizon probe: the earliest step at which any pending wakeup
        // could influence a boundary cell. A node wakeup at (i, t)
        // reaches the boundary no earlier than t + dist[i]; an arc
        // wakeup re-examines its *source* cell, so it scores
        // t + dist[src] — except cross arcs, which are boundary events
        // themselves. All delays are ≥ 1 and influence moves one
        // undirected hop per step (DESIGN.md §16 for the induction).
        let horizon_limit = t0.saturating_add(cap);
        let mut q = u64::MAX;
        let mut deferred: u64 = 0;
        let dist = &eng.map.dist;
        self.sched.for_each_pending_node(|id, t| {
            let score = t.saturating_add(dist[id as usize]);
            if score < horizon_limit {
                deferred += 1;
            }
            q = q.min(score);
        });
        let arc_cross = &eng.map.arc_cross;
        let g = self.g;
        self.sched.for_each_pending_arc(|id, t| {
            let score = if arc_cross[id as usize] {
                t
            } else {
                t.saturating_add(dist[g.arcs[id as usize].src.idx()])
            };
            if score < horizon_limit {
                deferred += 1;
            }
            q = q.min(score);
        });
        let h = cap.min(q.saturating_sub(t0));
        if h < 2 {
            eng.stats.horizon_fallbacks += 1;
            return Ok(None);
        }
        // `deferred` counted wakeups scoring inside the *cap* window;
        // only those inside the proven horizon were actually deferred.
        let deferred = if h < cap { deferred } else { 0 };

        // Route the global wheels' contents onto per-shard wheels.
        let mut nodes = std::mem::take(&mut eng.nodes_scratch);
        let mut arcs_pending = std::mem::take(&mut eng.arcs_scratch);
        nodes.clear();
        arcs_pending.clear();
        self.sched.take_all(&mut nodes, &mut arcs_pending);
        for st in &mut eng.shards {
            st.node_wheel.reset(t0);
            st.arc_wheel.reset(t0);
            st.log.clear();
            st.err = None;
            st.am = 0;
            st.fu = 0;
        }
        for &(id, t) in &nodes {
            let s = eng.map.cell_shard[id as usize] as usize;
            eng.shards[s].node_wheel.push(id, t);
        }
        for &(id, t) in &arcs_pending {
            let s = eng.map.arc_shard[id as usize] as usize;
            eng.shards[s].arc_wheel.push(id, t);
        }

        if self.pool.as_ref().is_none_or(|p| p.workers() != w) {
            self.pool = Some(Pool::new(w));
        }

        // Split the machine into disjointly-aliased shared slices and
        // run every shard for `h` steps with no synchronization.
        {
            let Cells {
                src_pos,
                src_data,
                ctl_pos,
                fires,
                gate_passes,
                gate_discards,
                fire_times,
                sink_slot,
                src_slot,
                outputs,
                emit_times,
            } = &mut self.cells;
            let shared = MachineShared {
                g: self.g,
                arcs: share(self.arcs.as_mut_slice()),
                src_pos: share(src_pos.as_mut_slice()),
                ctl_pos: share(ctl_pos.as_mut_slice()),
                fires: share(fires.as_mut_slice()),
                gate_passes: share(gate_passes.as_mut_slice()),
                gate_discards: share(gate_discards.as_mut_slice()),
                fire_times: fire_times.as_mut().map(|v| share(v.as_mut_slice())),
                outputs: share(outputs.as_mut_slice()),
                emit_times: share(emit_times.as_mut_slice()),
                src_data: src_data.as_slice(),
                sink_slot: sink_slot.as_slice(),
                src_slot: src_slot.as_slice(),
                fwd: self.fwd_delay.as_slice(),
                ack: self.ack_delay.as_slice(),
            };
            let map = &eng.map;
            let pool = self.pool.as_ref().expect("pool just ensured");
            pool.run_sharded(&mut eng.shards, |s, st| {
                run_shard(&shared, map, s as u32, st, t0, h);
            });
        }

        // Canonical first error: the sequential kernels would have hit
        // the (sub-step, cell id)-minimal error first and stopped there.
        // Overrun mutations from other shards are unobservable — the
        // erroring run is consumed by `run_inner` and dropped.
        if let Some(best) = eng
            .shards
            .iter_mut()
            .filter_map(|st| st.err.take())
            .min_by_key(|&(k, nid, _)| (k, nid))
        {
            eng.nodes_scratch = nodes;
            eng.arcs_scratch = arcs_pending;
            return Err(best.2);
        }

        // Replay the per-sub-step bookkeeping exactly as `h` ordinary
        // `step()` calls inside `run` would have: observe after each
        // step, and stop early where `run`'s loop top would have broken
        // for quiescence (fault-free, so its freeze window is zero).
        let mut executed = h;
        let mut truncated = false;
        let mut last_fired: usize = 0;
        for k in 0..h {
            if self.idle > eng.max_lat && (t0 + k) > eng.max_lat {
                executed = k;
                truncated = true;
                break;
            }
            let mut fired: u64 = 0;
            let mut prog: u64 = 0;
            for st in &eng.shards {
                let (f, p) = st.log[k as usize];
                fired += f as u64;
                prog += p as u64;
            }
            self.progress += prog;
            self.tracker.observe(t0 + k + 1, fired, self.progress);
            if fired == 0 {
                self.idle += 1;
            } else {
                self.idle = 0;
            }
            last_fired = fired as usize;
        }
        self.now = t0 + executed;
        for st in &eng.shards {
            self.am_fires += st.am;
            self.fu_fires += st.fu;
        }

        if truncated {
            // Quiescence truncation (DESIGN.md §16): past the break
            // point every sub-step fired nothing and mutated nothing,
            // and all wakeups from earlier fires had already drained —
            // the shard wheels hold nothing the truncated timeline can
            // still owe. Discard defensively and rebase.
            for st in &mut eng.shards {
                st.node_wheel.reset(0);
                st.arc_wheel.reset(0);
            }
            self.sched.rebase(self.now);
        } else {
            // Merge leftover shard wakeups (all ≥ t0 + h by the drain
            // loop) back onto the rebased global wheels.
            self.sched.rebase(self.now);
            for st in &mut eng.shards {
                nodes.clear();
                st.node_wheel.take_all(&mut nodes);
                for &(id, at) in &nodes {
                    self.sched.wake(id, at);
                }
                arcs_pending.clear();
                st.arc_wheel.take_all(&mut arcs_pending);
                for &(id, at) in &arcs_pending {
                    self.sched.wake_arc(id, at);
                }
            }
        }

        eng.stats.epochs += 1;
        eng.stats.batched_steps += executed;
        eng.stats.cross_wakes_deferred += deferred;
        eng.nodes_scratch = nodes;
        eng.arcs_scratch = arcs_pending;
        Ok(Some(last_fired))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_worker_and_is_reusable() {
        let pool = Pool::new(4);
        assert_eq!(pool.workers(), 4);
        for round in 1..=3usize {
            let hits = AtomicUsize::new(0);
            let mask = AtomicUsize::new(0);
            pool.run(&|wi| {
                hits.fetch_add(1, Ordering::SeqCst);
                mask.fetch_or(1 << wi, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 4, "round {round}");
            assert_eq!(
                mask.load(Ordering::SeqCst),
                0b1111,
                "each worker ran exactly once"
            );
        }
    }

    #[test]
    fn single_worker_pool_spawns_no_threads() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(&|wi| {
            assert_eq!(wi, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn run_sharded_hands_each_worker_its_own_shard() {
        let pool = Pool::new(3);
        let mut shards = vec![0usize; 3];
        pool.run_sharded(&mut shards, |wi, v| *v = wi + 10);
        assert_eq!(shards, vec![10, 11, 12]);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for (len, parts) in [(0, 3), (5, 2), (7, 3), (8, 4), (3, 8)] {
            let ranges: Vec<_> = chunk_ranges(len, parts).collect();
            assert_eq!(ranges.len(), parts);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "contiguous");
                covered = r.end;
            }
            assert_eq!(covered, len, "complete for len={len} parts={parts}");
        }
    }

    #[test]
    fn split_shards_bases_match_offsets() {
        let mut items: Vec<u32> = (0..10).collect();
        let shards = split_shards(&mut items, 3);
        for (base, slice) in &shards {
            for (k, v) in slice.iter().enumerate() {
                assert_eq!(*v as usize, base + k);
            }
        }
    }
}
