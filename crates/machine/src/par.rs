//! The parallel event-driven step: [`Kernel::ParallelEvent`]'s phased
//! execution of one instruction time across a persistent worker pool.
//!
//! # Why this is deterministic (DESIGN.md §11 carries the full argument)
//!
//! The machine is tick-synchronous: whether a cell fires at instruction
//! time `t`, and what it does, depends only on machine state at the
//! *start* of `t` — all enabled cells fire simultaneously. That makes
//! one tick's work embarrassingly parallel provided the phases stay
//! separated and the mutations merge in a canonical order:
//!
//! 1. **Release** — due acknowledge slots expire. Arcs are partitioned
//!    into contiguous id ranges, one disjoint `&mut` slice per worker;
//!    releases on distinct arcs are independent.
//! 2. **Plan** — the drained ready set (ascending cell ids) is split
//!    into contiguous chunks; planning is read-only, so workers share
//!    `&Simulator`. Concatenating the per-worker plan buffers in worker
//!    order restores exactly the sequential ascending-cell-id plan
//!    list. The first planning error in worker order is the error the
//!    sequential loop would have hit first (all lower cells planned
//!    clean), and it propagates before any wakeup or firing side
//!    effect — planning has no side effects, so the error state is
//!    bit-identical to the sequential kernels'.
//! 3. **Fire** — arc mutations are partitioned by *arc ownership*:
//!    every worker walks the full plan list in order and applies only
//!    the consumes/emits landing on arcs in its contiguous range. An
//!    arc sees at most one consume (its unique destination cell) and
//!    one emit (its unique source cell) per tick, and a consume moves a
//!    slot from `queue` to `freeing` without changing `occupied()`, so
//!    the two commute — including the `Duplicate` fault's capacity
//!    check. Fault fates are position-keyed (`hash_mix(seed, arc,
//!    step)`), not draw-order-keyed, so every worker resolves the same
//!    fates the sequential kernels do with no RNG coordination.
//!    Per-cell bookkeeping ([`Simulator::note_fire`] — the exact
//!    function the sequential `fire` uses) then runs sequentially over
//!    the plans in cell order, and buffered wakeups merge afterwards;
//!    wheel insertion order is irrelevant because due lists are
//!    sorted and deduplicated on drain.
//!
//! The pool blocks workers on a condvar between ticks (never spins), so
//! oversubscribing a small machine degrades gracefully; ticks below
//! [`PAR_MIN_WORK`] ready items skip the fan-out entirely and run the
//! sequential step body, which produces identical results by the same
//! argument with one worker.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use valpipe_ir::NodeId;

use crate::error::SimError;
use crate::fault::{AckFate, ResultFate};
use crate::scheduler::Kernel;
use crate::sim::{consume_token, emit_token, launch_value, release_acks, FirePlan, Simulator};

/// Below this many ready items (due cells + due arcs) a tick runs the
/// sequential step body instead of dispatching to the pool: the phase
/// barriers cost more than the work. Results are identical either way.
pub(crate) const PAR_MIN_WORK: usize = 96;

/// Hard cap on `ParallelEvent(w)`; a worker beyond this adds only
/// scheduling overhead on any machine this simulator targets.
pub(crate) const MAX_WORKERS: usize = 32;

/// Per-worker buffers for one tick, reused across the whole run.
#[derive(Debug, Default)]
pub(crate) struct WorkerBuf {
    /// Plans from this worker's chunk of the ready set (phase 2).
    plans: Vec<(u32, FirePlan)>,
    /// Frozen cells deferred to their thaw time (phase 2).
    thaw: Vec<(u32, u64)>,
    /// First planning error in this worker's chunk (phase 2).
    err: Option<SimError>,
    /// Wakeups for arcs this worker owns (phase 3).
    arc_wakes: Vec<(u32, u64)>,
    /// Wakeups for cells, from acks freeing producer slots and packets
    /// reaching consumers on arcs this worker owns (phase 3).
    node_wakes: Vec<(u32, u64)>,
}

impl WorkerBuf {
    fn clear(&mut self) {
        self.plans.clear();
        self.thaw.clear();
        self.err = None;
        self.arc_wakes.clear();
        self.node_wakes.clear();
    }
}

/// Contiguous even partition of `0..len` into `parts` ranges (the first
/// `len % parts` ranges get the extra element).
fn chunk_ranges(len: usize, parts: usize) -> impl Iterator<Item = Range<usize>> {
    let base = len / parts;
    let extra = len % parts;
    let mut start = 0;
    (0..parts).map(move |i| {
        let size = base + usize::from(i < extra);
        let r = start..start + size;
        start += size;
        r
    })
}

/// Split a slice into `parts` contiguous `(base index, sub-slice)`
/// shards — disjoint `&mut` views, one per worker.
fn split_shards<T>(items: &mut [T], parts: usize) -> Vec<(usize, &mut [T])> {
    let mut out = Vec::with_capacity(parts);
    let total = items.len();
    let mut rest = items;
    let mut base = 0;
    for r in chunk_ranges(total, parts) {
        let (head, tail) = rest.split_at_mut(r.len());
        out.push((base, head));
        base += r.len();
        rest = tail;
    }
    out
}

/// The job handed to workers: a borrowed closure with its lifetime
/// erased. Sound because [`Pool::run`] does not return until every
/// worker has finished the call, so the borrow outlives all uses.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared across workers by construction)
// and the pointer is only dereferenced while `Pool::run` keeps the
// referent alive.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Bumped once per dispatched job so sleeping workers can tell a
    /// new job from the one they already ran.
    epoch: u64,
    /// Workers still running the current job.
    remaining: usize,
    /// A worker's job panicked (re-raised on the main thread).
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    start: Condvar,
    done: Condvar,
}

/// A persistent pool of `workers − 1` blocked threads; the calling
/// thread acts as worker 0, so `ParallelEvent(w)` uses exactly `w`
/// threads during a tick and zero CPU between ticks.
pub(crate) struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    pub(crate) fn new(workers: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..workers.max(1))
            .map(|wi| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("valpipe-par-{wi}"))
                    .spawn(move || worker_loop(&shared, wi))
                    .expect("spawn parallel kernel worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Total worker count, including the calling thread.
    pub(crate) fn workers(&self) -> usize {
        self.handles.len() + 1
    }

    /// Run `f(worker_index)` once per worker, concurrently; returns
    /// after every call finished. Re-raises worker panics here.
    pub(crate) fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            f(0);
            return;
        }
        // SAFETY: erases `f`'s borrow lifetime from the stored pointer.
        // Sound because this function clears the job and does not return
        // until `remaining` hits zero, so no worker touches the pointer
        // after `f`'s borrow ends.
        let job = Job(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(job);
            st.epoch += 1;
            st.remaining = self.handles.len();
        }
        self.shared.start.notify_all();
        f(0);
        let mut st = self.shared.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        if std::mem::take(&mut st.panicked) {
            drop(st);
            panic!("parallel kernel worker panicked");
        }
    }

    /// Run `f(worker_index, &mut shard[worker_index])` once per worker.
    /// Each worker locks only its own shard's mutex (uncontended), so
    /// this is plain safe Rust handing each worker exclusive access to
    /// its slice of the machine.
    pub(crate) fn run_sharded<T: Send>(&self, shards: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        debug_assert_eq!(shards.len(), self.workers());
        let slots: Vec<Mutex<&mut T>> = shards.iter_mut().map(Mutex::new).collect();
        self.run(&|wi| {
            let mut slot = slots[wi].lock().unwrap();
            f(wi, &mut slot);
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, wi: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    break;
                }
                st = shared.start.wait(st).unwrap();
            }
            seen = st.epoch;
            st.job.expect("job present while epoch advanced")
        };
        // SAFETY: `Pool::run` keeps the closure alive until `remaining`
        // reaches zero, which happens strictly after this call returns.
        let outcome = catch_unwind(AssertUnwindSafe(|| (unsafe { &*job.0 })(wi)));
        let mut st = shared.state.lock().unwrap();
        if outcome.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

impl Simulator<'_> {
    /// One instruction time under [`Kernel::ParallelEvent`].
    pub(crate) fn step_parallel(&mut self, workers: usize) -> Result<usize, SimError> {
        let now = self.now;
        let mut due = std::mem::take(&mut self.scratch.due_nodes);
        let mut due_arcs = std::mem::take(&mut self.scratch.due_arcs);
        self.sched.due_arcs(now, &mut due_arcs);
        self.sched.due_nodes(now, &mut due);
        let w = workers.clamp(1, MAX_WORKERS);
        let r = if w < 2 || due.len() + due_arcs.len() < PAR_MIN_WORK {
            self.step_ready(&due, &due_arcs)
        } else {
            self.step_ready_parallel(w, &due, &due_arcs)
        };
        self.scratch.due_nodes = due;
        self.scratch.due_arcs = due_arcs;
        r
    }

    fn step_ready_parallel(
        &mut self,
        w: usize,
        due: &[u32],
        due_arcs: &[u32],
    ) -> Result<usize, SimError> {
        debug_assert!(matches!(self.cfg.kernel, Kernel::ParallelEvent(_)));
        let now = self.now;
        if self.pool.as_ref().is_none_or(|p| p.workers() != w) {
            self.pool = Some(Pool::new(w));
        }
        let mut bufs = std::mem::take(&mut self.scratch.bufs);
        bufs.resize_with(w, WorkerBuf::default);
        for b in &mut bufs {
            b.clear();
        }

        // Phase 1: release due acknowledge slots, arcs partitioned into
        // contiguous id ranges (due_arcs is sorted, so each worker
        // binary-searches its window).
        {
            let pool = self.pool.as_ref().expect("pool created above");
            let mut shards = split_shards(&mut self.arcs, w);
            pool.run_sharded(&mut shards, |_wi, (base, slice)| {
                let lo = due_arcs.partition_point(|&a| (a as usize) < *base);
                let hi = due_arcs.partition_point(|&a| (a as usize) < *base + slice.len());
                for &aid in &due_arcs[lo..hi] {
                    release_acks(&mut slice[aid as usize - *base], now);
                }
            });
        }

        // Phase 2: plan, read-only over the whole machine; the ready
        // set is chunked contiguously so concatenation preserves the
        // ascending cell order.
        {
            let this: &Simulator = self;
            let pool = self.pool.as_ref().expect("pool created above");
            let mut shards: Vec<(Range<usize>, &mut WorkerBuf)> =
                chunk_ranges(due.len(), w).zip(bufs.iter_mut()).collect();
            pool.run_sharded(&mut shards, |_wi, (range, buf)| {
                if let Err(e) = this.plan_due(&due[range.clone()], &mut buf.plans, &mut buf.thaw) {
                    buf.err = Some(e);
                }
            });
        }
        let mut first_err = None;
        for b in &mut bufs {
            let e = b.err.take();
            if first_err.is_none() {
                first_err = e;
            }
        }
        if let Some(e) = first_err {
            self.scratch.bufs = bufs;
            return Err(e);
        }
        let mut plans = std::mem::take(&mut self.scratch.plans);
        plans.clear();
        for b in &bufs {
            plans.extend_from_slice(&b.plans);
        }
        for b in &bufs {
            for &(nid, at) in &b.thaw {
                self.sched.wake(nid, at);
            }
        }
        self.apply_throttle(&mut plans);

        // Phase 3: fire. Every worker walks the full plan list in order
        // and applies the consume/emit operations landing on its arc
        // range; wakeups are buffered per worker.
        {
            let g = self.g;
            let fault = &self.fault;
            let fwd = &self.fwd_delay;
            let ack = &self.ack_delay;
            let plans: &[(u32, FirePlan)] = &plans;
            let pool = self.pool.as_ref().expect("pool created above");
            let mut shards: Vec<((usize, &mut [_]), &mut WorkerBuf)> =
                split_shards(&mut self.arcs, w)
                    .into_iter()
                    .zip(bufs.iter_mut())
                    .collect();
            pool.run_sharded(&mut shards, |_wi, ((base, slice), buf)| {
                let (base, end) = (*base, *base + slice.len());
                for &(nid, plan) in plans {
                    for arc in plan.consumes() {
                        let i = arc.idx();
                        if i < base || i >= end {
                            continue;
                        }
                        let fate = match fault {
                            Some(f) => f.ack_fate(i, now),
                            None => AckFate::Deliver,
                        };
                        if let Some(t) = consume_token(&mut slice[i - base], now + ack[i], fate) {
                            // The freed slot re-enables the arc's producer.
                            buf.arc_wakes.push((i as u32, t));
                            buf.node_wakes.push((g.arcs[i].src.idx() as u32, t));
                        }
                    }
                    if let Some(v) = launch_value(g, nid, &plan) {
                        for &a in &g.nodes[nid as usize].outputs {
                            let i = a.idx();
                            if i < base || i >= end {
                                continue;
                            }
                            let fate = match fault {
                                Some(f) => f.result_fate(i, now),
                                None => ResultFate::Deliver,
                            };
                            if let Some(t) = emit_token(&mut slice[i - base], v, now + fwd[i], fate)
                            {
                                buf.node_wakes.push((g.arcs[i].dst.idx() as u32, t));
                            }
                        }
                    }
                }
            });
        }

        // Merge: per-cell bookkeeping in plan (= cell) order — the same
        // `note_fire` the sequential fire loop runs — then the buffered
        // wakeups (insertion order is irrelevant: due lists sort and
        // deduplicate on drain).
        let count = plans.len();
        for &(nid, plan) in &plans {
            self.note_fire(NodeId(nid), &plan);
            // A fired cell may be enabled again immediately; re-examine
            // it next step.
            self.sched.wake(nid, now + 1);
        }
        for b in &bufs {
            for &(a, t) in &b.arc_wakes {
                self.sched.wake_arc(a, t);
            }
            for &(n, t) in &b.node_wakes {
                self.sched.wake(n, t);
            }
        }
        plans.clear();
        self.scratch.plans = plans;
        self.scratch.bufs = bufs;
        self.now += 1;
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_worker_and_is_reusable() {
        let pool = Pool::new(4);
        assert_eq!(pool.workers(), 4);
        for round in 1..=3usize {
            let hits = AtomicUsize::new(0);
            let mask = AtomicUsize::new(0);
            pool.run(&|wi| {
                hits.fetch_add(1, Ordering::SeqCst);
                mask.fetch_or(1 << wi, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 4, "round {round}");
            assert_eq!(
                mask.load(Ordering::SeqCst),
                0b1111,
                "each worker ran exactly once"
            );
        }
    }

    #[test]
    fn single_worker_pool_spawns_no_threads() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(&|wi| {
            assert_eq!(wi, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn run_sharded_hands_each_worker_its_own_shard() {
        let pool = Pool::new(3);
        let mut shards = vec![0usize; 3];
        pool.run_sharded(&mut shards, |wi, v| *v = wi + 10);
        assert_eq!(shards, vec![10, 11, 12]);
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for (len, parts) in [(0, 3), (5, 2), (7, 3), (8, 4), (3, 8)] {
            let ranges: Vec<_> = chunk_ranges(len, parts).collect();
            assert_eq!(ranges.len(), parts);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "contiguous");
                covered = r.end;
            }
            assert_eq!(covered, len, "complete for len={len} parts={parts}");
        }
    }

    #[test]
    fn split_shards_bases_match_offsets() {
        let mut items: Vec<u32> = (0..10).collect();
        let shards = split_shards(&mut items, 3);
        for (base, slice) in &shards {
            for (k, v) in slice.iter().enumerate() {
                assert_eq!(*v as usize, base + k);
            }
        }
    }
}
