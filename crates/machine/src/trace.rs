//! Execution trace export and occupancy visualization.
//!
//! With [`crate::SimConfig::record_fire_times`] enabled, a run knows when
//! every cell fired. This module renders that record two ways:
//!
//! * [`chrome_trace`] — Chrome/Perfetto trace-event JSON (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>): one row per
//!   instruction cell, one 1-instruction-time slice per firing. The fully
//!   pipelined steady state is immediately visible as a solid brick wall
//!   of alternating slices.
//! * [`occupancy_chart`] — a terminal ASCII chart of firings per
//!   instruction time, for quick looks in examples and experiment logs.

use crate::sim::RunResult;
use valpipe_ir::Graph;

/// Render a run as Chrome trace-event JSON. Requires the run to have been
/// taken with `record_fire_times: true`; returns `None` otherwise.
pub fn chrome_trace(g: &Graph, run: &RunResult) -> Option<String> {
    let fire_times = run.fire_times.as_ref()?;
    let mut out = String::from("[\n");
    let mut first = true;
    for (i, times) in fire_times.iter().enumerate() {
        let name = format!(
            "{} {}",
            g.nodes[i].op.mnemonic(),
            g.nodes[i].label.replace('"', "'")
        );
        // Thread metadata: row label.
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}"
        ));
        for &t in times {
            out.push_str(&format!(
                ",\n{{\"ph\":\"X\",\"pid\":1,\"tid\":{i},\"ts\":{t},\"dur\":1,\"name\":\"fire\"}}"
            ));
        }
    }
    out.push_str("\n]\n");
    Some(out)
}

/// ASCII occupancy chart: one column per instruction-time bucket, height
/// proportional to the number of firings in that bucket. `width` buckets.
pub fn occupancy_chart(run: &RunResult, width: usize) -> String {
    let Some(fire_times) = run.fire_times.as_ref() else {
        return "(enable record_fire_times for an occupancy chart)".into();
    };
    let steps = run.steps.max(1);
    let width = width.max(1);
    let bucket = (steps as usize).div_ceil(width);
    let mut counts = vec![0u64; width];
    for times in fire_times {
        for &t in times {
            let b = (t as usize / bucket).min(width - 1);
            counts[b] += 1;
        }
    }
    let peak = counts.iter().copied().max().unwrap_or(0).max(1);
    const ROWS: usize = 8;
    let mut out = String::new();
    for row in (1..=ROWS).rev() {
        let threshold = peak * row as u64 / ROWS as u64;
        for &c in &counts {
            out.push(if c >= threshold.max(1) { '█' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "firings per {bucket}-instruction-time bucket, peak {peak}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ProgramInputs, Simulator};
    use valpipe_ir::value::Value;
    use valpipe_ir::Opcode;

    fn traced_run() -> (Graph, RunResult) {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let id = g.cell(Opcode::Id, "stage", &[a.into()]);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[id.into()]);
        let data: Vec<Value> = (0..20).map(|i| Value::Real(i as f64)).collect();
        let r = Simulator::builder(&g)
            .inputs(ProgramInputs::new().bind("a", data))
            .record_fire_times(true)
            .run()
            .unwrap();
        (g, r)
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_events() {
        let (g, r) = traced_run();
        let json = chrome_trace(&g, &r).unwrap();
        let parsed = valpipe_util::Json::parse(&json).expect("valid JSON");
        let events = parsed.as_arr().unwrap();
        // 3 metadata rows + one slice per firing.
        let fires: u64 = r.fires.iter().sum();
        assert_eq!(events.len() as u64, 3 + fires);
        assert!(json.contains("IN[a]"));
    }

    #[test]
    fn trace_absent_without_recording() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[a.into()]);
        let r = Simulator::builder(&g)
            .inputs(ProgramInputs::new().bind("a", vec![Value::Real(1.0)]))
            .run()
            .unwrap();
        assert!(chrome_trace(&g, &r).is_none());
        assert!(occupancy_chart(&r, 10).contains("record_fire_times"));
    }

    #[test]
    fn occupancy_chart_shape() {
        let (_, r) = traced_run();
        let chart = occupancy_chart(&r, 20);
        assert!(chart.contains('█'));
        assert!(chart.lines().count() >= 9);
    }
}
