//! The closed-loop networked machine: Fig. 1 executed end to end.
//!
//! Unlike [`crate::sim`] (per-arc latencies) and the open-loop trace
//! replay (`exp_network`), this model routes **every result packet and
//! every acknowledge packet** of a running program through router-level
//! omega networks (one plane each way), with one injection port per
//! processing element. Cells stall when their destinations' acknowledges
//! are late — the machine's actual flow control — so network contention
//! feeds back into instruction timing instead of being imposed as a
//! static delay.
//!
//! Firing semantics are the same as the idealized simulator's (same
//! enabling rule, gates discard, MERGE selects); the oracle tests check
//! that values are bit-identical, so only timing differs between models.

use crate::network::{OmegaNetwork, Packet};
use std::collections::{HashMap, VecDeque};
use valpipe_ir::graph::{Graph, PortBinding};
use valpipe_ir::opcode::{Opcode, GATE_CTL, GATE_DATA, MERGE_CTL, MERGE_FALSE, MERGE_TRUE};
use valpipe_ir::value::{apply_bin, apply_un, Value};
use valpipe_ir::{ArcId, NodeId};

use crate::sim::{ProgramInputs, SimError};

/// Options for the closed-loop machine.
#[derive(Debug, Clone)]
pub struct ClosedLoopOptions {
    /// Processing elements (must be a power of two ≥ 2; one network port
    /// per PE).
    pub pes: usize,
    /// Router queue depth.
    pub net_queue: usize,
    /// Per-arc token capacity (operand slots).
    pub arc_capacity: u32,
    /// Cell firings a PE may initiate per cycle.
    pub pe_issue_width: u32,
    /// Hard cycle limit.
    pub max_cycles: u64,
    /// Router links to take down for windows of cycles (applied to both
    /// the result and the acknowledge plane). Packets stall but are
    /// never lost, so throughput degrades and recovers with the window.
    pub link_faults: Vec<crate::fault::LinkFault>,
}

impl Default for ClosedLoopOptions {
    fn default() -> Self {
        ClosedLoopOptions {
            pes: 16,
            net_queue: 4,
            arc_capacity: 1,
            pe_issue_width: 4,
            max_cycles: 10_000_000,
            link_faults: Vec::new(),
        }
    }
}

/// Result of a closed-loop run.
#[derive(Debug, Clone)]
pub struct ClosedLoopResult {
    /// Cycles elapsed.
    pub steps: u64,
    /// Sink packets `(cycle, value)` per port.
    pub outputs: HashMap<String, Vec<(u64, Value)>>,
    /// Whether every source drained.
    pub sources_exhausted: bool,
    /// Result packets that crossed the network.
    pub remote_results: u64,
    /// Acknowledge packets that crossed the network.
    pub remote_acks: u64,
    /// Mean network latency of delivered result packets.
    pub mean_result_latency: f64,
}

impl ClosedLoopResult {
    /// Values on a sink port.
    pub fn values(&self, port: &str) -> Vec<Value> {
        self.outputs
            .get(port)
            .map(|v| v.iter().map(|&(_, x)| x).collect())
            .unwrap_or_default()
    }

    /// Arrival-time report for a sink port. An unknown port yields an
    /// empty (all-`None`) report.
    pub fn timing(&self, port: &str) -> crate::sim::Timing {
        crate::sim::Timing::of(
            self.outputs
                .get(port)
                .map(|v| v.iter().map(|&(t, _)| t).collect::<Vec<_>>())
                .unwrap_or_default(),
        )
    }
}

#[derive(Debug, Clone, Copy)]
enum Payload {
    Result(ArcId, Value),
    Ack(ArcId),
}

/// Run a program closed-loop. `pe_of[cell]` assigns cells to PEs.
pub fn run_closed_loop(
    g: &Graph,
    inputs: &ProgramInputs,
    pe_of: &[usize],
    opts: &ClosedLoopOptions,
) -> Result<ClosedLoopResult, SimError> {
    if !opts.pes.is_power_of_two() || opts.pes < 2 {
        return Err(SimError::InvalidConfig(format!(
            "closed-loop machine needs a power-of-two PE count >= 2, got {}",
            opts.pes
        )));
    }
    if pe_of.len() != g.node_count() {
        return Err(SimError::InvalidConfig(format!(
            "placement table covers {} cells but the graph has {}",
            pe_of.len(),
            g.node_count()
        )));
    }
    if let Some(&pe) = pe_of.iter().find(|&&pe| pe >= opts.pes) {
        return Err(SimError::InvalidConfig(format!(
            "placement assigns a cell to PE {pe} but the machine has {} PEs",
            opts.pes
        )));
    }
    let n = g.node_count();

    // Per-node bookkeeping (sources, generators, sinks).
    let mut src_data: Vec<Option<Vec<Value>>> = vec![None; n];
    let mut src_pos = vec![0usize; n];
    let mut ctl_pos = vec![0u64; n];
    let mut outputs: HashMap<String, Vec<(u64, Value)>> = HashMap::new();
    for (i, node) in g.nodes.iter().enumerate() {
        match &node.op {
            Opcode::Fifo(_) => return Err(SimError::UnexpandedFifo(i)),
            Opcode::Source(name) => {
                let d = inputs
                    .get(name)
                    .ok_or_else(|| SimError::MissingInput(name.clone()))?;
                src_data[i] = Some(d.to_vec());
            }
            Opcode::Sink(name) => {
                outputs.insert(name.clone(), Vec::new());
            }
            _ => {}
        }
    }

    // Arc state: tokens ready at the consumer + slots outstanding at the
    // producer (freed when the acknowledge arrives back).
    let mut ready: Vec<VecDeque<Value>> = vec![VecDeque::new(); g.arc_count()];
    let mut outstanding: Vec<u32> = vec![0; g.arc_count()];
    for a in g.arc_ids() {
        if let Some(v) = g.arcs[a.idx()].initial {
            ready[a.idx()].push_back(v);
            // An initial token occupies a slot until consumed + acked.
            outstanding[a.idx()] = 1;
        }
    }

    // Two network planes + per-PE egress queues; local traffic bypasses
    // the network with a one-cycle delay.
    let mut result_net = OmegaNetwork::new(opts.pes, opts.net_queue);
    let mut ack_net = OmegaNetwork::new(opts.pes, opts.net_queue);
    for lf in &opts.link_faults {
        result_net
            .fail_link(lf.stage, lf.port, lf.from, lf.until)
            .map_err(SimError::InvalidConfig)?;
        ack_net
            .fail_link(lf.stage, lf.port, lf.from, lf.until)
            .map_err(SimError::InvalidConfig)?;
    }
    let mut egress_res: Vec<VecDeque<(usize, Payload)>> = vec![VecDeque::new(); opts.pes];
    let mut egress_ack: Vec<VecDeque<(usize, Payload)>> = vec![VecDeque::new(); opts.pes];
    let mut local: VecDeque<(u64, Payload)> = VecDeque::new();
    let mut in_flight_res: HashMap<u64, Payload> = HashMap::new();
    let mut in_flight_ack: HashMap<u64, Payload> = HashMap::new();
    let mut seq = 0u64;

    let mut now = 0u64;
    let mut idle = 0u64;
    let (mut remote_results, mut remote_acks) = (0u64, 0u64);
    let mut res_latency_sum = 0u64;

    let lit_or = |b: &PortBinding, ready: &[VecDeque<Value>]| -> Option<Value> {
        match b {
            PortBinding::Lit(v) => Some(*v),
            PortBinding::Wired(a) => ready[a.idx()].front().copied(),
            PortBinding::Unbound => None,
        }
    };

    while now < opts.max_cycles {
        let mut activity = false;

        // 1. Deliver local traffic and network arrivals.
        while local.front().is_some_and(|&(t, _)| t <= now) {
            let (_, p) = local.pop_front().unwrap();
            apply_payload(p, &mut ready, &mut outstanding);
            activity = true;
        }
        // 2. Fire enabled cells under PE issue budgets. (Network
        // deliveries are applied in step 4, right after the planes step.)
        let mut budget = vec![opts.pe_issue_width; opts.pes];
        let mut plans: Vec<(NodeId, Vec<ArcId>, Option<Value>)> = Vec::new();
        for i in 0..n {
            if budget[pe_of[i]] == 0 {
                continue;
            }
            let node = &g.nodes[i];
            let outputs_free = |need: bool| {
                !need
                    || node
                        .outputs
                        .iter()
                        .all(|a| outstanding[a.idx()] < opts.arc_capacity)
            };
            let plan: Option<(Vec<ArcId>, Option<Value>)> = match &node.op {
                Opcode::Bin(op) => {
                    match (
                        lit_or(&node.inputs[0], &ready),
                        lit_or(&node.inputs[1], &ready),
                    ) {
                        (Some(a), Some(b)) if outputs_free(true) => {
                            let v = apply_bin(*op, a, b).map_err(|e| SimError::Eval {
                                node: i,
                                label: node.label.clone(),
                                message: e.0,
                            })?;
                            Some((wired(node, &[0, 1]), Some(v)))
                        }
                        _ => None,
                    }
                }
                Opcode::Un(op) => match lit_or(&node.inputs[0], &ready) {
                    Some(a) if outputs_free(true) => {
                        let v = apply_un(*op, a).map_err(|e| SimError::Eval {
                            node: i,
                            label: node.label.clone(),
                            message: e.0,
                        })?;
                        Some((wired(node, &[0]), Some(v)))
                    }
                    _ => None,
                },
                Opcode::Id | Opcode::AmRead | Opcode::AmWrite => {
                    match lit_or(&node.inputs[0], &ready) {
                        Some(v) if outputs_free(true) => Some((wired(node, &[0]), Some(v))),
                        _ => None,
                    }
                }
                Opcode::TGate | Opcode::FGate => {
                    match (
                        lit_or(&node.inputs[GATE_CTL], &ready),
                        lit_or(&node.inputs[GATE_DATA], &ready),
                    ) {
                        (Some(c), Some(d)) => {
                            let ctl = c.as_bool().ok_or(SimError::NonBoolControl {
                                node: i,
                                label: node.label.clone(),
                            })?;
                            let pass = matches!(node.op, Opcode::TGate) == ctl;
                            if pass && !outputs_free(true) {
                                None
                            } else {
                                Some((wired(node, &[GATE_CTL, GATE_DATA]), pass.then_some(d)))
                            }
                        }
                        _ => None,
                    }
                }
                Opcode::Merge => match lit_or(&node.inputs[MERGE_CTL], &ready) {
                    Some(c) => {
                        let ctl = c.as_bool().ok_or(SimError::NonBoolControl {
                            node: i,
                            label: node.label.clone(),
                        })?;
                        let port = if ctl { MERGE_TRUE } else { MERGE_FALSE };
                        match lit_or(&node.inputs[port], &ready) {
                            Some(v) if outputs_free(true) => {
                                Some((wired(node, &[MERGE_CTL, port]), Some(v)))
                            }
                            _ => None,
                        }
                    }
                    None => None,
                },
                Opcode::CtlGen(s) => {
                    if outputs_free(true) {
                        Some((vec![], Some(Value::Bool(s.at(ctl_pos[i])))))
                    } else {
                        None
                    }
                }
                Opcode::IdxGen { lo, hi } => {
                    if outputs_free(true) {
                        let len = (hi - lo + 1) as u64;
                        Some((vec![], Some(Value::Int(lo + (ctl_pos[i] % len) as i64))))
                    } else {
                        None
                    }
                }
                Opcode::Source(_) => {
                    let d = src_data[i].as_ref().unwrap_or_else(|| {
                        panic!(
                            "cell {i} ({}): source data unbound at cycle {now} despite construction check",
                            node.label
                        )
                    });
                    if src_pos[i] < d.len() && outputs_free(true) {
                        Some((vec![], Some(d[src_pos[i]])))
                    } else {
                        None
                    }
                }
                Opcode::Sink(_) => {
                    lit_or(&node.inputs[0], &ready).map(|v| (wired(node, &[0]), Some(v)))
                }
                Opcode::Fifo(_) => unreachable!(),
            };
            if let Some((consume, emit)) = plan {
                budget[pe_of[i]] -= 1;
                plans.push((NodeId(i as u32), consume, emit));
            }
        }

        for (nid, consume, emit) in plans {
            activity = true;
            let i = nid.idx();
            // Consume: pop tokens, send acknowledges toward the producers.
            for a in consume {
                ready[a.idx()].pop_front();
                let producer = g.arcs[a.idx()].src.idx();
                let (sp, dp) = (pe_of[i], pe_of[producer]);
                if sp == dp {
                    local.push_back((now + 1, Payload::Ack(a)));
                } else {
                    egress_ack[sp].push_back((dp, Payload::Ack(a)));
                }
            }
            match &g.nodes[i].op {
                Opcode::Source(_) => src_pos[i] += 1,
                Opcode::CtlGen(_) | Opcode::IdxGen { .. } => ctl_pos[i] += 1,
                Opcode::Sink(name) => {
                    let v = emit.unwrap_or_else(|| {
                        panic!("cell {i} ({name}): sink fired without a value at cycle {now}")
                    });
                    outputs
                        .get_mut(name)
                        .unwrap_or_else(|| {
                            panic!("cell {i} ({name}): sink port vanished at cycle {now}")
                        })
                        .push((now, v));
                    continue;
                }
                _ => {}
            }
            if let Some(v) = emit {
                for &a in &g.nodes[i].outputs {
                    outstanding[a.idx()] += 1;
                    let consumer = g.arcs[a.idx()].dst.idx();
                    let (sp, dp) = (pe_of[i], pe_of[consumer]);
                    if sp == dp {
                        local.push_back((now + 1, Payload::Result(a, v)));
                    } else {
                        egress_res[sp].push_back((dp, Payload::Result(a, v)));
                    }
                }
            }
        }

        // 3. Inject one packet per PE per plane per cycle.
        for pe in 0..opts.pes {
            if let Some(&(dest, payload)) = egress_res[pe].front() {
                let pkt = Packet {
                    dest,
                    injected_at: 0,
                    seq,
                };
                if result_net.inject(pe, pkt) {
                    in_flight_res.insert(seq, payload);
                    seq += 1;
                    egress_res[pe].pop_front();
                    remote_results += 1;
                    activity = true;
                }
            }
            if let Some(&(dest, payload)) = egress_ack[pe].front() {
                let pkt = Packet {
                    dest,
                    injected_at: 0,
                    seq,
                };
                if ack_net.inject(pe, pkt) {
                    in_flight_ack.insert(seq, payload);
                    seq += 1;
                    egress_ack[pe].pop_front();
                    remote_acks += 1;
                    activity = true;
                }
            }
        }

        // 4. Advance the networks and apply this cycle's deliveries.
        let res_before = result_net.delivered().len();
        let ack_before = ack_net.delivered().len();
        result_net.step();
        ack_net.step();
        for &(t, pkt) in &result_net.delivered()[res_before..] {
            let payload = in_flight_res.remove(&pkt.seq).unwrap_or_else(|| {
                panic!(
                    "result packet seq {} delivered at cycle {now} was never injected",
                    pkt.seq
                )
            });
            res_latency_sum += t - pkt.injected_at;
            apply_payload(payload, &mut ready, &mut outstanding);
            activity = true;
        }
        for &(_, pkt) in &ack_net.delivered()[ack_before..] {
            let payload = in_flight_ack.remove(&pkt.seq).unwrap_or_else(|| {
                panic!(
                    "acknowledge packet seq {} delivered at cycle {now} was never injected",
                    pkt.seq
                )
            });
            apply_payload(payload, &mut ready, &mut outstanding);
            activity = true;
        }

        now += 1;
        if activity {
            idle = 0;
        } else {
            idle += 1;
            // A downed link can hold packets motionless for its whole
            // window (stage-to-stage movement does not count as
            // activity), so quiescence also requires both planes empty.
            let fault_end = opts
                .link_faults
                .iter()
                .map(|lf| lf.until)
                .max()
                .unwrap_or(0);
            if idle > 4 + 2 * result_net.stages() as u64
                && now >= fault_end
                && result_net.is_empty()
                && ack_net.is_empty()
            {
                break;
            }
        }
    }

    let sources_exhausted = (0..n).all(|i| match &src_data[i] {
        Some(d) => src_pos[i] >= d.len(),
        None => true,
    });
    let mean_result_latency = if remote_results > 0 {
        res_latency_sum as f64 / remote_results as f64
    } else {
        0.0
    };
    Ok(ClosedLoopResult {
        steps: now,
        outputs,
        sources_exhausted,
        remote_results,
        remote_acks,
        mean_result_latency,
    })
}

fn wired(node: &valpipe_ir::Node, ports: &[usize]) -> Vec<ArcId> {
    ports
        .iter()
        .filter_map(|&p| match node.inputs[p] {
            PortBinding::Wired(a) => Some(a),
            _ => None,
        })
        .collect()
}

fn apply_payload(p: Payload, ready: &mut [VecDeque<Value>], outstanding: &mut [u32]) {
    match p {
        Payload::Result(a, v) => ready[a.idx()].push_back(v),
        Payload::Ack(a) => {
            debug_assert!(outstanding[a.idx()] > 0);
            outstanding[a.idx()] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valpipe_ir::value::BinOp;

    fn chain_graph() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let x = g.cell(Opcode::Bin(BinOp::Mul), "x", &[a.into(), 3.0.into()]);
        let y = g.cell(Opcode::Bin(BinOp::Add), "y", &[x.into(), 1.0.into()]);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[y.into()]);
        g
    }

    #[test]
    fn closed_loop_values_match_idealized() {
        let g = chain_graph();
        let data: Vec<Value> = (0..40).map(|i| Value::Real(i as f64)).collect();
        let inputs = ProgramInputs::new().bind("a", data.clone());
        let ideal = crate::sim::Simulator::builder(&g)
            .inputs(inputs.clone())
            .run()
            .unwrap();
        for pes in [2usize, 4, 8] {
            let pe_of: Vec<usize> = (0..g.node_count()).map(|i| i % pes).collect();
            let r = run_closed_loop(
                &g,
                &inputs,
                &pe_of,
                &ClosedLoopOptions {
                    pes,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(r.sources_exhausted, "pes={pes}");
            assert_eq!(r.values("out"), ideal.values("out"), "pes={pes}");
        }
    }

    #[test]
    fn network_latency_throttles_but_never_deadlocks() {
        let g = chain_graph();
        let data: Vec<Value> = (0..120).map(|i| Value::Real(i as f64)).collect();
        let inputs = ProgramInputs::new().bind("a", data);
        let pe_of: Vec<usize> = (0..g.node_count()).map(|i| i % 4).collect();
        let r = run_closed_loop(
            &g,
            &inputs,
            &pe_of,
            &ClosedLoopOptions {
                pes: 4,
                arc_capacity: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.sources_exhausted);
        // Remote hop = 2 network cycles each way + fire → interval well
        // above the idealized 2.
        let iv = r.timing("out").interval().unwrap();
        assert!(iv > 3.0, "capacity-1 remote links must be slow: {iv}");
        // Deeper operand slots win rate back (the §2 buffering story).
        let data: Vec<Value> = (0..120).map(|i| Value::Real(i as f64)).collect();
        let inputs = ProgramInputs::new().bind("a", data);
        let r4 = run_closed_loop(
            &g,
            &inputs,
            &pe_of,
            &ClosedLoopOptions {
                pes: 4,
                arc_capacity: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let iv4 = r4.timing("out").interval().unwrap();
        assert!(
            iv4 < iv - 0.5,
            "buffered links must be faster: {iv4} vs {iv}"
        );
    }

    #[test]
    fn bad_configurations_are_reported_not_panicked() {
        let g = chain_graph();
        let inputs = ProgramInputs::new().bind("a", vec![Value::Real(1.0)]);
        let pe_of: Vec<usize> = vec![0; g.node_count()];
        let err = run_closed_loop(
            &g,
            &inputs,
            &pe_of,
            &ClosedLoopOptions {
                pes: 3,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
        let err =
            run_closed_loop(&g, &inputs, &pe_of[1..], &ClosedLoopOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
        let err = run_closed_loop(
            &g,
            &inputs,
            &vec![99; g.node_count()],
            &ClosedLoopOptions {
                pes: 4,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn link_fault_slows_but_preserves_values() {
        let g = chain_graph();
        let data: Vec<Value> = (0..60).map(|i| Value::Real(i as f64)).collect();
        let inputs = ProgramInputs::new().bind("a", data);
        let pe_of: Vec<usize> = (0..g.node_count()).map(|i| i % 4).collect();
        let clean = run_closed_loop(
            &g,
            &inputs,
            &pe_of,
            &ClosedLoopOptions {
                pes: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let mut faulty_opts = ClosedLoopOptions {
            pes: 4,
            ..Default::default()
        };
        for port in 0..4 {
            faulty_opts.link_faults.push(crate::fault::LinkFault {
                stage: 0,
                port,
                from: 10,
                until: 60,
            });
        }
        let faulty = run_closed_loop(&g, &inputs, &pe_of, &faulty_opts).unwrap();
        assert!(faulty.sources_exhausted, "stalled links must recover");
        assert_eq!(faulty.values("out"), clean.values("out"));
        assert!(
            faulty.steps > clean.steps,
            "downed links must cost cycles: {} vs {}",
            faulty.steps,
            clean.steps
        );
    }

    #[test]
    fn acks_are_conserved() {
        let g = chain_graph();
        let data: Vec<Value> = (0..30).map(|i| Value::Real(i as f64)).collect();
        let inputs = ProgramInputs::new().bind("a", data);
        let pe_of: Vec<usize> = (0..g.node_count()).map(|i| i % 2).collect();
        let r = run_closed_loop(
            &g,
            &inputs,
            &pe_of,
            &ClosedLoopOptions {
                pes: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // Every remote result eventually produces a remote ack (same PE
        // split for every arc in this placement).
        assert_eq!(r.remote_results, r.remote_acks);
    }
}
