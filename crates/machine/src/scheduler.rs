//! Event-driven ready-set scheduling for the simulator.
//!
//! The scan kernel re-examines every instruction cell once per
//! instruction time, which costs O(cells) per step even when only a
//! handful of cells hold deliverable operands — the transient fill and
//! drain phases of a pipe, gated conditional arms, and every throttled
//! or fault-injected run. The event-driven kernel instead maintains the
//! **wakeup invariant**:
//!
//! > a cell is (re-)examined at step `t` iff some event at `t` could
//! > have changed its enablement — a result packet on one of its input
//! > arcs became deliverable, an acknowledge freed a slot on one of its
//! > output arcs, a freeze window ended, or the cell itself fired or was
//! > resource-throttled at `t − 1`.
//!
//! Every state transition that can enable a cell is one of those events,
//! so examining only woken cells selects exactly the same firing set as
//! the full scan; spurious wakeups (the cell is examined and still not
//! enabled) are harmless. Both wheels are time-indexed: the node wheel
//! holds cells to examine, the arc wheel holds arcs whose acknowledge
//! slots expire. Delayed arrivals injected by a
//! [`crate::fault::FaultPlan`] and non-uniform [`crate::sim::ArcDelays`]
//! simply schedule their wakeups further out.
//!
//! The per-step cost becomes O(fired + woken); idle instruction times
//! (a pipe waiting out a long network latency, a frozen region) cost two
//! hash-map lookups.

use std::collections::HashMap;

/// Which step-loop implementation a simulation uses.
///
/// Both kernels implement the identical machine semantics and produce
/// bit-identical [`crate::sim::RunResult`]s — asserted by the
/// `kernel_equivalence` test suite across the paper workloads, fault
/// plans, resource throttling, and watchdog stalls. They differ only in
/// how the set of enabled cells is discovered each instruction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Re-scan every cell each instruction time. O(cells) per step; the
    /// reference implementation.
    Scan,
    /// Examine only cells woken by token, acknowledge, thaw, or firing
    /// events. O(fired + woken) per step.
    #[default]
    EventDriven,
}

/// Time-indexed wakeup wheels for the event-driven kernel.
///
/// A disabled scheduler (scan kernel) accepts and discards every wakeup,
/// so the firing paths can post events unconditionally.
#[derive(Debug, Clone)]
pub(crate) struct Scheduler {
    enabled: bool,
    /// step → cells to examine at that step.
    node_wheel: HashMap<u64, Vec<u32>>,
    /// step → arcs with acknowledge slots expiring at that step.
    arc_wheel: HashMap<u64, Vec<u32>>,
}

impl Scheduler {
    /// A scheduler for the given kernel. The event-driven wheel is
    /// seeded with every cell at step 0 (matching the scan kernel's
    /// first examination); after that, only events schedule work.
    pub(crate) fn new(kernel: Kernel, cells: usize) -> Self {
        let mut node_wheel = HashMap::new();
        let enabled = kernel == Kernel::EventDriven;
        if enabled {
            node_wheel.insert(0, (0..cells as u32).collect::<Vec<_>>());
        }
        Scheduler {
            enabled,
            node_wheel,
            arc_wheel: HashMap::new(),
        }
    }

    /// A scheduler resuming mid-run at step `now` (snapshot restore).
    ///
    /// Wheels are not serialized — they are an optimization artifact, not
    /// canonical machine state. Instead the event-driven wheel is seeded
    /// with every cell at the resume step, exactly like the step-0
    /// seeding of a fresh run: any cell enabled at `now` is examined, and
    /// spurious examinations of disabled cells are harmless under the
    /// wakeup invariant. The restore path then re-posts the *future*
    /// wakeups implied by canonical state (in-flight tokens and pending
    /// acknowledges), which is everything the wheels could have held.
    /// This is what makes a snapshot kernel-neutral: a Scan checkpoint
    /// resumes on EventDriven (and vice versa) bit-identically.
    pub(crate) fn resume(kernel: Kernel, cells: usize, now: u64) -> Self {
        let mut sched = Self::new(kernel, 0);
        if sched.enabled {
            sched.node_wheel.insert(now, (0..cells as u32).collect::<Vec<_>>());
        }
        sched
    }

    /// Whether the event-driven kernel drives the step loop.
    pub(crate) fn is_event_driven(&self) -> bool {
        self.enabled
    }

    /// Examine `node` at step `at`. No-op for the scan kernel.
    pub(crate) fn wake(&mut self, node: u32, at: u64) {
        if self.enabled {
            self.node_wheel.entry(at).or_default().push(node);
        }
    }

    /// Release expired acknowledge slots of `arc` at step `at`.
    pub(crate) fn wake_arc(&mut self, arc: u32, at: u64) {
        if self.enabled {
            self.arc_wheel.entry(at).or_default().push(arc);
        }
    }

    /// Cells due at `now`, ascending and deduplicated — the scan kernel
    /// examines cells in index order, and the resource throttle and
    /// first-error selection depend on that order.
    pub(crate) fn due_nodes(&mut self, now: u64) -> Vec<u32> {
        let mut due = self.node_wheel.remove(&now).unwrap_or_default();
        due.sort_unstable();
        due.dedup();
        due
    }

    /// Arcs with acknowledge slots expiring at `now`, deduplicated.
    pub(crate) fn due_arcs(&mut self, now: u64) -> Vec<u32> {
        let mut due = self.arc_wheel.remove(&now).unwrap_or_default();
        due.sort_unstable();
        due.dedup();
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scheduler_discards_wakeups() {
        let mut s = Scheduler::new(Kernel::Scan, 4);
        assert!(!s.is_event_driven());
        s.wake(1, 5);
        s.wake_arc(2, 5);
        assert!(s.due_nodes(5).is_empty());
        assert!(s.due_arcs(5).is_empty());
    }

    #[test]
    fn event_scheduler_seeds_all_cells_at_step_zero() {
        let mut s = Scheduler::new(Kernel::EventDriven, 3);
        assert_eq!(s.due_nodes(0), vec![0, 1, 2]);
        assert!(s.due_nodes(0).is_empty(), "taking is destructive");
    }

    #[test]
    fn wakeups_are_sorted_and_deduplicated() {
        let mut s = Scheduler::new(Kernel::EventDriven, 0);
        s.wake(7, 3);
        s.wake(2, 3);
        s.wake(7, 3);
        s.wake(1, 4);
        assert_eq!(s.due_nodes(3), vec![2, 7]);
        assert_eq!(s.due_nodes(4), vec![1]);
        assert!(s.due_nodes(5).is_empty());
    }
}
