//! Event-driven ready-set scheduling for the simulator.
//!
//! The scan kernel re-examines every instruction cell once per
//! instruction time, which costs O(cells) per step even when only a
//! handful of cells hold deliverable operands — the transient fill and
//! drain phases of a pipe, gated conditional arms, and every throttled
//! or fault-injected run. The event-driven kernels instead maintain the
//! **wakeup invariant**:
//!
//! > a cell is (re-)examined at step `t` iff some event at `t` could
//! > have changed its enablement — a result packet on one of its input
//! > arcs became deliverable, an acknowledge freed a slot on one of its
//! > output arcs, a freeze window ended, or the cell itself fired or was
//! > resource-throttled at `t − 1`.
//!
//! Every state transition that can enable a cell is one of those events,
//! so examining only woken cells selects exactly the same firing set as
//! the full scan; spurious wakeups (the cell is examined and still not
//! enabled) are harmless. Both wheels are time-indexed: the node wheel
//! holds cells to examine, the arc wheel holds arcs whose acknowledge
//! slots expire. Delayed arrivals injected by a
//! [`crate::fault::FaultPlan`] and non-uniform [`crate::sim::ArcDelays`]
//! simply schedule their wakeups further out.
//!
//! Each wheel is a power-of-two **ring buffer** of bucket `Vec`s: slot
//! `at & (len − 1)` holds the ids due at `at`. The step loop drains the
//! wheel at every consecutive instruction time, so every undrained entry
//! satisfies `cursor ≤ at < cursor + len` and a slot can only ever hold
//! entries for one time — draining is an `extend` + `clear`, and the
//! bucket allocations are reused for the whole run instead of passing
//! through the allocator (and SipHash) once per step the way the old
//! `HashMap<u64, Vec<u32>>` wheels did. The rare wakeup beyond the ring
//! horizon (a multi-thousand-step freeze window, a `thaw_time` pushed
//! out to ~2⁴⁰ by a permanent-freeze fault) overflows into a binary
//! heap and migrates back as the cursor catches up.
//!
//! The per-step cost becomes O(fired + woken); idle instruction times
//! (a pipe waiting out a long network latency, a frozen region) cost two
//! ring-slot reads.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which step-loop implementation a simulation uses.
///
/// All kernels implement the identical machine semantics and produce
/// bit-identical [`crate::sim::RunResult`]s — asserted by the
/// `kernel_equivalence` test suite across the paper workloads, fault
/// plans, resource throttling, and watchdog stalls. They differ only in
/// how the set of enabled cells is discovered each instruction time and
/// in how the firing work of one instruction time is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Re-scan every cell each instruction time. O(cells) per step; the
    /// reference implementation.
    Scan,
    /// Examine only cells woken by token, acknowledge, thaw, or firing
    /// events. O(fired + woken) per step.
    #[default]
    EventDriven,
    /// The event-driven kernel with each instruction time's ready set
    /// planned and fired across the given number of worker threads.
    /// Bit-identical to the sequential kernels for any worker count (see
    /// DESIGN.md §11); `ParallelEvent(0)` and `ParallelEvent(1)` run the
    /// event-driven step body inline without spawning threads.
    ParallelEvent(usize),
}

/// One time-indexed wakeup wheel: a power-of-two ring of reusable
/// buckets plus a far-overflow heap for wakeups beyond the horizon.
/// `pub(crate)` so the epoch engine (`par.rs`) can run one private wheel
/// pair per shard with identical drain semantics.
#[derive(Debug, Clone)]
pub(crate) struct Wheel {
    /// Next instruction time to be drained; every live ring entry `at`
    /// satisfies `cursor <= at < cursor + buckets.len()`.
    cursor: u64,
    /// Slot `at & mask` holds the ids due at `at`.
    buckets: Vec<Vec<u32>>,
    /// Wakeups at or beyond `cursor + buckets.len()`, by (time, id).
    far: BinaryHeap<Reverse<(u64, u32)>>,
}

/// Ring length: covers every delay the machine generates on the hot
/// path (forward/acknowledge delays, fault delay extensions, the +1
/// re-examination after firing) with room to spare; longer horizons
/// (freeze windows) take the far heap.
const WHEEL_SLOTS: usize = 64;

impl Wheel {
    pub(crate) fn new(cursor: u64) -> Self {
        Wheel {
            cursor,
            buckets: vec![Vec::new(); WHEEL_SLOTS],
            far: BinaryHeap::new(),
        }
    }

    #[inline]
    fn mask(&self) -> u64 {
        self.buckets.len() as u64 - 1
    }

    #[inline]
    pub(crate) fn push(&mut self, id: u32, at: u64) {
        debug_assert!(at >= self.cursor, "wakeup posted into the past");
        if at - self.cursor < self.buckets.len() as u64 {
            let slot = (at & self.mask()) as usize;
            self.buckets[slot].push(id);
        } else {
            self.far.push(Reverse((at, id)));
        }
    }

    /// Drain every id due at or before `now` into `out` (cleared
    /// first), ascending and deduplicated. Buckets keep their
    /// allocations. Draining a time earlier than the cursor finds
    /// nothing: taking is destructive.
    pub(crate) fn drain(&mut self, now: u64, out: &mut Vec<u32>) {
        out.clear();
        if now < self.cursor {
            return;
        }
        // Every live entry is within one ring length of the cursor, so
        // at most `buckets.len()` slots can hold due ids — and a slot
        // visited for time `t` holds exactly the ids due at `t`.
        let last = now.min(self.cursor + self.mask());
        for t in self.cursor..=last {
            let slot = (t & self.mask()) as usize;
            out.append(&mut self.buckets[slot]);
        }
        while let Some(&Reverse((t, id))) = self.far.peek() {
            if t > now {
                break;
            }
            self.far.pop();
            out.push(id);
        }
        self.cursor = now + 1;
        // Migrate far wakeups that the advanced cursor brought inside
        // the ring horizon, so `push` stays O(1) for the common case.
        while let Some(&Reverse((t, id))) = self.far.peek() {
            if t - self.cursor >= self.buckets.len() as u64 {
                break;
            }
            self.far.pop();
            let slot = (t & self.mask()) as usize;
            self.buckets[slot].push(id);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Visit every pending `(id, at)` entry without draining it — the
    /// epoch-horizon probe. Entries are visited in no particular order
    /// and duplicates are visited as many times as they were posted.
    pub(crate) fn for_each_pending(&self, mut f: impl FnMut(u32, u64)) {
        for off in 0..self.buckets.len() as u64 {
            let t = self.cursor + off;
            for &id in &self.buckets[(t & self.mask()) as usize] {
                f(id, t);
            }
        }
        for &Reverse((t, id)) in &self.far {
            f(id, t);
        }
    }

    /// Destructively extract every pending `(id, at)` entry into `out`
    /// (appended, arbitrary order) — the epoch setup step that routes
    /// the global wheel's contents onto per-shard wheels.
    pub(crate) fn take_all(&mut self, out: &mut Vec<(u32, u64)>) {
        for off in 0..self.buckets.len() as u64 {
            let t = self.cursor + off;
            let slot = (t & self.mask()) as usize;
            for id in self.buckets[slot].drain(..) {
                out.push((id, t));
            }
        }
        while let Some(Reverse((t, id))) = self.far.pop() {
            out.push((id, t));
        }
    }

    /// Jump an *empty* wheel's cursor forward to `now` so re-posted
    /// entries land within the ring horizon again after an epoch.
    pub(crate) fn rebase(&mut self, now: u64) {
        debug_assert!(
            self.far.is_empty() && self.buckets.iter().all(Vec::is_empty),
            "rebase requires a fully drained wheel"
        );
        debug_assert!(now >= self.cursor, "rebase never rewinds");
        self.cursor = now;
    }

    /// Reset an empty wheel for reuse at a new start time (per-shard
    /// wheels between epochs). Clears any leftovers defensively.
    pub(crate) fn reset(&mut self, cursor: u64) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.far.clear();
        self.cursor = cursor;
    }
}

/// Time-indexed wakeup wheels for the event-driven kernels.
///
/// A disabled scheduler (scan kernel) accepts and discards every wakeup,
/// so the firing paths can post events unconditionally.
#[derive(Debug, Clone)]
pub(crate) struct Scheduler {
    enabled: bool,
    /// step → cells to examine at that step.
    node_wheel: Wheel,
    /// step → arcs with acknowledge slots expiring at that step.
    arc_wheel: Wheel,
}

impl Scheduler {
    /// A scheduler for the given kernel. The event-driven wheel is
    /// seeded with every cell at step 0 (matching the scan kernel's
    /// first examination); after that, only events schedule work.
    pub(crate) fn new(kernel: Kernel, cells: usize) -> Self {
        let enabled = matches!(kernel, Kernel::EventDriven | Kernel::ParallelEvent(_));
        let mut sched = Scheduler {
            enabled,
            node_wheel: Wheel::new(0),
            arc_wheel: Wheel::new(0),
        };
        if enabled {
            for n in 0..cells as u32 {
                sched.node_wheel.push(n, 0);
            }
        }
        sched
    }

    /// A scheduler resuming mid-run at step `now` (snapshot restore).
    ///
    /// Wheels are not serialized — they are an optimization artifact, not
    /// canonical machine state. Instead the event-driven wheel is seeded
    /// with every cell at the resume step, exactly like the step-0
    /// seeding of a fresh run: any cell enabled at `now` is examined, and
    /// spurious examinations of disabled cells are harmless under the
    /// wakeup invariant. The restore path then re-posts the *future*
    /// wakeups implied by canonical state (in-flight tokens and pending
    /// acknowledges), which is everything the wheels could have held.
    /// This is what makes a snapshot kernel-neutral: a checkpoint taken
    /// under any kernel resumes under any other bit-identically.
    pub(crate) fn resume(kernel: Kernel, cells: usize, now: u64) -> Self {
        let enabled = matches!(kernel, Kernel::EventDriven | Kernel::ParallelEvent(_));
        let mut sched = Scheduler {
            enabled,
            node_wheel: Wheel::new(now),
            arc_wheel: Wheel::new(now),
        };
        if enabled {
            for n in 0..cells as u32 {
                sched.node_wheel.push(n, now);
            }
        }
        sched
    }

    /// Whether an event-driven kernel drives the step loop.
    #[cfg(test)]
    pub(crate) fn is_event_driven(&self) -> bool {
        self.enabled
    }

    /// Examine `node` at step `at`. No-op for the scan kernel.
    #[inline]
    pub(crate) fn wake(&mut self, node: u32, at: u64) {
        if self.enabled {
            self.node_wheel.push(node, at);
        }
    }

    /// Release expired acknowledge slots of `arc` at step `at`.
    #[inline]
    pub(crate) fn wake_arc(&mut self, arc: u32, at: u64) {
        if self.enabled {
            self.arc_wheel.push(arc, at);
        }
    }

    /// Drain the cells due at `now` into `out` (cleared first),
    /// ascending and deduplicated — the scan kernel examines cells in
    /// index order, and the resource throttle and first-error selection
    /// depend on that order.
    pub(crate) fn due_nodes(&mut self, now: u64, out: &mut Vec<u32>) {
        self.node_wheel.drain(now, out);
    }

    /// Drain the arcs with acknowledge slots expiring at `now` into
    /// `out` (cleared first), ascending and deduplicated.
    pub(crate) fn due_arcs(&mut self, now: u64, out: &mut Vec<u32>) {
        self.arc_wheel.drain(now, out);
    }

    /// Visit every pending cell wakeup `(cell, at)` without draining it.
    pub(crate) fn for_each_pending_node(&self, f: impl FnMut(u32, u64)) {
        self.node_wheel.for_each_pending(f);
    }

    /// Visit every pending arc wakeup `(arc, at)` without draining it.
    pub(crate) fn for_each_pending_arc(&self, f: impl FnMut(u32, u64)) {
        self.arc_wheel.for_each_pending(f);
    }

    /// Destructively extract every pending wakeup — cells into `nodes`,
    /// arcs into `arcs` (both appended, arbitrary order). The epoch
    /// engine routes them onto per-shard wheels and pushes the
    /// untriggered remainder back after the epoch.
    pub(crate) fn take_all(&mut self, nodes: &mut Vec<(u32, u64)>, arcs: &mut Vec<(u32, u64)>) {
        self.node_wheel.take_all(nodes);
        self.arc_wheel.take_all(arcs);
    }

    /// Jump the (fully drained) wheels' cursors to `now` after an epoch
    /// advanced the machine several steps at once.
    pub(crate) fn rebase(&mut self, now: u64) {
        self.node_wheel.rebase(now);
        self.arc_wheel.rebase(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes_at(s: &mut Scheduler, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        s.due_nodes(now, &mut out);
        out
    }

    fn arcs_at(s: &mut Scheduler, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        s.due_arcs(now, &mut out);
        out
    }

    #[test]
    fn disabled_scheduler_discards_wakeups() {
        let mut s = Scheduler::new(Kernel::Scan, 4);
        assert!(!s.is_event_driven());
        s.wake(1, 5);
        s.wake_arc(2, 5);
        assert!(nodes_at(&mut s, 5).is_empty());
        assert!(arcs_at(&mut s, 5).is_empty());
    }

    #[test]
    fn event_scheduler_seeds_all_cells_at_step_zero() {
        let mut s = Scheduler::new(Kernel::EventDriven, 3);
        assert_eq!(nodes_at(&mut s, 0), vec![0, 1, 2]);
        assert!(nodes_at(&mut s, 0).is_empty(), "taking is destructive");
    }

    #[test]
    fn parallel_kernel_enables_the_wheels() {
        let mut s = Scheduler::new(Kernel::ParallelEvent(4), 2);
        assert!(s.is_event_driven());
        assert_eq!(nodes_at(&mut s, 0), vec![0, 1]);
    }

    #[test]
    fn wakeups_are_sorted_and_deduplicated() {
        let mut s = Scheduler::new(Kernel::EventDriven, 0);
        s.wake(7, 3);
        s.wake(2, 3);
        s.wake(7, 3);
        s.wake(1, 4);
        assert_eq!(nodes_at(&mut s, 3), vec![2, 7]);
        assert_eq!(nodes_at(&mut s, 4), vec![1]);
        assert!(nodes_at(&mut s, 5).is_empty());
    }

    #[test]
    fn far_wakeups_survive_the_ring_horizon() {
        let mut s = Scheduler::new(Kernel::EventDriven, 0);
        // Beyond the ring: a freeze-window thaw and a permanent freeze.
        s.wake(9, WHEEL_SLOTS as u64 + 5);
        s.wake(4, 1 << 40);
        for t in 0..WHEEL_SLOTS as u64 + 5 {
            assert!(nodes_at(&mut s, t).is_empty(), "nothing due at {t}");
        }
        assert_eq!(nodes_at(&mut s, WHEEL_SLOTS as u64 + 5), vec![9]);
        assert_eq!(
            nodes_at(&mut s, 1 << 40),
            vec![4],
            "cursor jump drains the far heap"
        );
    }

    #[test]
    fn resume_seeds_at_the_restore_step() {
        let mut s = Scheduler::resume(Kernel::ParallelEvent(2), 3, 100);
        s.wake(2, 101);
        assert_eq!(nodes_at(&mut s, 100), vec![0, 1, 2]);
        assert_eq!(nodes_at(&mut s, 101), vec![2]);
    }
}
