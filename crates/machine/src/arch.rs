//! The machine organization of the paper's Fig. 1: processing elements
//! (PE), function units (FU), array memories (AM) and routing networks (RN).
//!
//! This module *places* a compiled program onto machine units and derives
//! the per-arc packet latencies and per-unit initiation budgets that the
//! [`crate::sim`] engine consumes. The placement determines how many hops a
//! result packet takes through the routing network — a packet between two
//! cells in the same PE bypasses the network; anything else pays the
//! network transit plus, for arithmetic shipped to function units or array
//! accesses shipped to array memories, the unit's service latency.

use crate::sim::{ArcDelays, ResourceModel};
use std::sync::Mutex;
use valpipe_ir::graph::Graph;

/// Which unit class executes a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitClass {
    /// Executed inside the processing element holding the cell.
    ProcessingElement,
    /// Shipped to a function unit (floating arithmetic).
    FunctionUnit,
    /// Shipped to an array memory.
    ArrayMemory,
}

/// Machine sizing and latency parameters.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of processing elements.
    pub pes: usize,
    /// Number of function units.
    pub fus: usize,
    /// Number of array memories.
    pub ams: usize,
    /// One-way routing-network transit in instruction times (a
    /// `log2(ports)`-stage packet network; 0 = ideal crossbar-in-PE).
    pub network_latency: u64,
    /// Function-unit service latency in instruction times.
    pub fu_latency: u64,
    /// Array-memory service latency in instruction times.
    pub am_latency: u64,
    /// Instructions a PE may initiate per instruction time.
    pub pe_issue_width: u32,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            pes: 16,
            fus: 16,
            ams: 4,
            network_latency: 1,
            fu_latency: 1,
            am_latency: 2,
            pe_issue_width: 8,
        }
    }
}

impl MachineConfig {
    /// An idealized machine: zero network latency, unit service latency 1,
    /// unlimited issue — equivalent to the plain simulator.
    pub fn ideal() -> Self {
        MachineConfig {
            pes: 1,
            fus: 1,
            ams: 1,
            network_latency: 0,
            fu_latency: 1,
            am_latency: 1,
            pe_issue_width: u32::MAX,
        }
    }
}

/// A placement of every cell onto a PE (with its FU/AM routing class).
#[derive(Debug, Clone)]
pub struct Placement {
    /// PE index per cell.
    pub pe_of: Vec<usize>,
    /// Unit class per cell.
    pub class_of: Vec<UnitClass>,
    /// The configuration used.
    pub config: MachineConfig,
}

impl Placement {
    /// Round-robin placement over PEs in topological order — neighbouring
    /// pipeline stages land in different PEs, spreading packet traffic
    /// across the network as the paper intends.
    pub fn round_robin(g: &Graph, config: MachineConfig) -> Self {
        let order = g
            .forward_topo_order()
            .unwrap_or_else(|| g.node_ids().collect());
        let mut pe_of = vec![0usize; g.node_count()];
        for (k, n) in order.iter().enumerate() {
            pe_of[n.idx()] = k % config.pes;
        }
        let class_of = g
            .nodes
            .iter()
            .map(|node| {
                if node.op.is_array_memory() {
                    UnitClass::ArrayMemory
                } else if node.op.is_function_unit() {
                    UnitClass::FunctionUnit
                } else {
                    UnitClass::ProcessingElement
                }
            })
            .collect();
        Placement {
            pe_of,
            class_of,
            config,
        }
    }

    /// Blocked placement: consecutive cells share a PE (locality-first).
    pub fn blocked(g: &Graph, config: MachineConfig) -> Self {
        let n = g.node_count();
        let per = n.div_ceil(config.pes);
        let mut p = Self::round_robin(g, config);
        for i in 0..n {
            p.pe_of[i] = (i / per).min(p.config.pes - 1);
        }
        p
    }

    /// Derive per-arc forward/ack latencies from the placement: a result
    /// packet pays the producing unit's service latency plus a network
    /// transit whenever producer and consumer sit in different PEs (or the
    /// producer executes in an FU/AM, which always routes through the
    /// network). Acks are destination-routed the same way.
    pub fn arc_delays(&self, g: &Graph) -> ArcDelays {
        let cfg = &self.config;
        let mut forward = Vec::with_capacity(g.arc_count());
        let mut ack = Vec::with_capacity(g.arc_count());
        for e in &g.arcs {
            let (s, d) = (e.src.idx(), e.dst.idx());
            let service = match self.class_of[s] {
                UnitClass::ProcessingElement => 1,
                UnitClass::FunctionUnit => cfg.fu_latency,
                UnitClass::ArrayMemory => cfg.am_latency,
            };
            let remote =
                self.pe_of[s] != self.pe_of[d] || self.class_of[s] != UnitClass::ProcessingElement;
            let transit = if remote { cfg.network_latency } else { 0 };
            forward.push(service + transit);
            ack.push(1 + transit);
        }
        ArcDelays { forward, ack }
    }

    /// Per-unit initiation budgets: each PE issues at most
    /// `pe_issue_width` instructions per instruction time.
    pub fn resources(&self) -> ResourceModel {
        let unit_of = self.pe_of.iter().map(|&p| p as u32).collect();
        let capacity = vec![self.config.pe_issue_width; self.config.pes];
        ResourceModel { unit_of, capacity }
    }

    /// Simulation config bundling this placement's delays and budgets.
    pub fn sim_config(&self, g: &Graph, arc_capacity: usize) -> crate::session::SimConfig {
        crate::session::SimConfig::new()
            .delays(self.arc_delays(g))
            .resources(self.resources())
            .arc_capacity(arc_capacity)
    }
}

/// Thread-safe accumulator for aggregating packet statistics across
/// parallel experiment sweeps.
#[derive(Debug, Default)]
pub struct TrafficTally {
    inner: Mutex<TrafficCounts>,
}

/// Aggregated operation-packet counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrafficCounts {
    /// Total operation packets (instruction firings).
    pub total: u64,
    /// Operation packets sent to array memories.
    pub am: u64,
    /// Operation packets sent to function units.
    pub fu: u64,
}

impl TrafficTally {
    /// Fresh tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one run's counts.
    pub fn add(&self, total: u64, am: u64, fu: u64) {
        // A poisoned lock only means another sweep thread panicked; the
        // counters themselves are always in a consistent state.
        let mut c = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        c.total += total;
        c.am += am;
        c.fu += fu;
    }

    /// Snapshot the aggregate.
    pub fn snapshot(&self) -> TrafficCounts {
        *self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Aggregate AM fraction of operation packets.
    pub fn am_fraction(&self) -> f64 {
        let c = self.snapshot();
        if c.total == 0 {
            0.0
        } else {
            c.am as f64 / c.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ProgramInputs, Simulator};
    use valpipe_ir::opcode::Opcode;
    use valpipe_ir::value::{BinOp, Value};

    fn chain(stages: usize) -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let mut prev = a;
        for k in 0..stages {
            prev = g.cell(
                Opcode::Bin(BinOp::Add),
                format!("s{k}"),
                &[prev.into(), 1.0.into()],
            );
        }
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[prev.into()]);
        g
    }

    #[test]
    fn round_robin_spreads_cells() {
        let g = chain(10);
        let p = Placement::round_robin(
            &g,
            MachineConfig {
                pes: 4,
                ..Default::default()
            },
        );
        let used: std::collections::HashSet<_> = p.pe_of.iter().copied().collect();
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn remote_arcs_cost_network_latency() {
        let g = chain(2);
        let cfg = MachineConfig {
            pes: 4,
            network_latency: 3,
            fu_latency: 1,
            ..Default::default()
        };
        let p = Placement::round_robin(&g, cfg);
        let d = p.arc_delays(&g);
        // ADD cells are FU-class → every arc from them routes remotely.
        assert!(d.forward.iter().any(|&f| f >= 4));
    }

    #[test]
    fn detailed_model_still_computes_correct_values() {
        let g = chain(4);
        let p = Placement::round_robin(&g, MachineConfig::default());
        let mut gg = g.clone();
        gg.expand_fifos();
        let data: Vec<Value> = (0..20).map(|i| Value::Real(i as f64)).collect();
        let r = Simulator::builder(&gg)
            .inputs(ProgramInputs::new().bind("a", data))
            .config(p.sim_config(&gg, 4))
            .run()
            .unwrap();
        let got = r.reals("out");
        let want: Vec<f64> = (0..20).map(|i| i as f64 + 4.0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn issue_width_throttles() {
        // 4 independent chains on a single PE: with issue width 1 the PE
        // serializes every firing, so the whole run takes far longer than
        // with unlimited issue — and values stay correct.
        let build = || {
            let mut g = Graph::new();
            for c in 0..4 {
                let a = g.add_node(Opcode::Source(format!("a{c}")), format!("a{c}"));
                let id = g.cell(Opcode::Id, format!("id{c}"), &[a.into()]);
                let _ = g.cell(Opcode::Sink(format!("o{c}")), format!("o{c}"), &[id.into()]);
            }
            g
        };
        let mut inputs = ProgramInputs::new();
        let wave: Vec<f64> = (0..50).map(|i| i as f64).collect();
        for c in 0..4 {
            inputs = inputs.bind_reals(format!("a{c}"), &wave);
        }
        let run_with = |width: u32| {
            let g = build();
            let cfg = MachineConfig {
                pes: 1,
                network_latency: 0,
                pe_issue_width: width,
                ..Default::default()
            };
            let p = Placement::blocked(&g, cfg);
            Simulator::builder(&g)
                .inputs(inputs.clone())
                .config(p.sim_config(&g, 1))
                .run()
                .unwrap()
        };
        let serial = run_with(1);
        let wide = run_with(u32::MAX);
        assert!(
            serial.steps > 3 * wide.steps,
            "width-1 run ({}) should be far slower than unlimited ({})",
            serial.steps,
            wide.steps
        );
        assert_eq!(serial.reals("o3"), wave);
        assert_eq!(wide.reals("o3"), wave);
    }

    #[test]
    fn traffic_tally_aggregates() {
        let t = TrafficTally::new();
        t.add(100, 10, 40);
        t.add(100, 15, 40);
        assert!((t.am_fraction() - 0.125).abs() < 1e-9);
        assert_eq!(t.snapshot().fu, 80);
    }
}
