//! Synchronous simulator for machine-level data flow programs.
//!
//! The model follows the paper's §2–3 exactly:
//!
//! * an instruction cell is **enabled** when every operand is present *and*
//!   every destination has acknowledged the previous result;
//! * a result packet takes one *instruction time* to reach its destination,
//!   and the acknowledge packet takes one instruction time back, so an
//!   isolated cell in a pipeline fires at most once per **two instruction
//!   times** — the paper's maximum (fully pipelined) rate of 1/2;
//! * each arc holds at most one data token (capacity can be raised to model
//!   buffered links in the detailed-machine experiments);
//! * gated identities (`TGate`/`FGate`) consume their operands every firing
//!   but only produce a result when selected — discarded packets need no
//!   destination acknowledgment, which is what keeps unused array elements
//!   from jamming the pipe;
//! * `MERGE` consumes its control operand and the selected data operand,
//!   leaving the other data operand untouched.
//!
//! The simulator is deterministic: all enabled cells fire simultaneously in
//! each step (optionally throttled by a [`ResourceModel`]), and ties are
//! broken by cell index.
//!
//! Three step-loop kernels implement these semantics (see
//! [`crate::scheduler`]): the legacy [`Kernel::Scan`] loop re-examines
//! every cell each instruction time; the default [`Kernel::EventDriven`]
//! loop examines only cells woken by token, acknowledge, thaw, or firing
//! events — O(fired + woken) per step instead of O(cells); and
//! [`Kernel::ParallelEvent`] fires each step's ready set across worker
//! threads (`par.rs`). All three produce bit-identical [`RunResult`]s.
//!
//! Construct runs with [`Simulator::builder`] (see [`crate::session`]).

use std::collections::{HashMap, VecDeque};
use std::mem;

use valpipe_ir::graph::{Graph, PortBinding};
use valpipe_ir::opcode::{Opcode, GATE_CTL, GATE_DATA, MERGE_CTL, MERGE_FALSE, MERGE_TRUE};
use valpipe_ir::value::{apply_bin, apply_un, Value};
use valpipe_ir::{ArcId, NodeId};

use crate::error::MachineError;
pub use crate::error::SimError;
use crate::fault::{AckFate, FaultPlan, ResultFate};
use crate::scheduler::{Kernel, Scheduler};
use crate::session::{SessionBuilder, SimConfig};
use crate::watchdog::{
    shortest_cycle, BlockedCell, HeldArc, ProgressTracker, StallKind, StallReport,
};

/// Input data: for each `Source` port name, the full sequence of packets to
/// feed (one array per wave, concatenated across waves).
#[derive(Debug, Clone, Default)]
pub struct ProgramInputs {
    map: HashMap<String, Vec<Value>>,
}

impl ProgramInputs {
    /// Empty input set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a packet sequence to a source port, replacing any previous one.
    pub fn bind(mut self, name: impl Into<String>, values: Vec<Value>) -> Self {
        self.map.insert(name.into(), values);
        self
    }

    /// Bind a sequence of reals.
    pub fn bind_reals(self, name: impl Into<String>, values: &[f64]) -> Self {
        self.bind(name, values.iter().map(|&v| Value::Real(v)).collect())
    }

    /// Bind a sequence of integers.
    pub fn bind_ints(self, name: impl Into<String>, values: &[i64]) -> Self {
        self.bind(name, values.iter().map(|&v| Value::Int(v)).collect())
    }

    /// Bind `waves` repetitions of one wave of reals.
    pub fn bind_waves(self, name: impl Into<String>, wave: &[f64], waves: usize) -> Self {
        let mut all = Vec::with_capacity(wave.len() * waves);
        for _ in 0..waves {
            all.extend(wave.iter().map(|&v| Value::Real(v)));
        }
        self.bind(name, all)
    }

    /// Look up a bound sequence.
    pub fn get(&self, name: &str) -> Option<&[Value]> {
        self.map.get(name).map(|v| v.as_slice())
    }
}

/// Per-unit instruction-initiation budget for contention modeling (used by
/// the detailed machine model; `None` in the idealized model).
#[derive(Debug, Clone)]
pub struct ResourceModel {
    /// Unit index for each cell.
    pub unit_of: Vec<u32>,
    /// How many cells each unit may fire per instruction time.
    pub capacity: Vec<u32>,
}

/// Per-arc packet latencies (instruction times). Defaults to 1/1 — the
/// idealized machine where every hop costs one instruction time.
#[derive(Debug, Clone)]
pub struct ArcDelays {
    /// Result-packet delivery latency per arc.
    pub forward: Vec<u64>,
    /// Acknowledge-packet latency per arc.
    pub ack: Vec<u64>,
}

impl ArcDelays {
    /// Uniform 1/1 delays for a graph with `arcs` arcs.
    pub fn uniform(arcs: usize) -> Self {
        ArcDelays {
            forward: vec![1; arcs],
            ack: vec![1; arcs],
        }
    }
}

/// Why the run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No cell can ever fire again (normal completion or deadlock; check
    /// [`RunResult::sources_exhausted`] to tell which).
    Quiescent,
    /// Step limit hit.
    MaxSteps,
    /// The requested number of output packets arrived (see
    /// [`SimConfig::stop_outputs`]).
    OutputsReached,
    /// The watchdog declared the run stalled (livelock or budget
    /// exhaustion); [`RunResult::stall_report`] says why.
    Stalled,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Quiescent => write!(f, "quiescent"),
            StopReason::MaxSteps => write!(f, "step limit reached"),
            StopReason::OutputsReached => write!(f, "requested outputs reached"),
            StopReason::Stalled => write!(f, "stalled (see stall report)"),
        }
    }
}

/// Result of a simulation run.
///
/// Implements `PartialEq` so whole runs can be compared — the
/// kernel-equivalence suite asserts the scan and event-driven kernels
/// produce bit-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Instruction times elapsed.
    pub steps: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// For each sink port: `(arrival time, value)` per packet, in order.
    pub outputs: HashMap<String, Vec<(u64, Value)>>,
    /// Firing count per cell.
    pub fires: Vec<u64>,
    /// For each source port: the time of each packet emission.
    pub source_emit_times: HashMap<String, Vec<u64>>,
    /// Whether every source emitted its whole bound sequence.
    pub sources_exhausted: bool,
    /// Total firings (≙ operation packets processed).
    pub total_fires: u64,
    /// Firings of array-memory cells (operation packets sent to AMs).
    pub am_fires: u64,
    /// Firings shipped to function units.
    pub fu_fires: u64,
    /// Firing times per cell, if requested.
    pub fire_times: Option<Vec<Vec<u64>>>,
    /// For runs that stalled (quiescence before the sources drained, a
    /// watchdog livelock, or an exhausted step budget): a structured
    /// diagnosis naming the blocked cells, the arcs holding
    /// unacknowledged tokens, and the wait cycle if one exists. Render
    /// with `Display` for a human-readable report.
    pub stall_report: Option<StallReport>,
}

impl RunResult {
    /// Values (without timestamps) received on a sink port.
    pub fn values(&self, port: &str) -> Vec<Value> {
        self.outputs
            .get(port)
            .map(|v| v.iter().map(|&(_, x)| x).collect())
            .unwrap_or_default()
    }

    /// Real-typed values on a sink port (panics on non-numeric packets).
    pub fn reals(&self, port: &str) -> Vec<f64> {
        self.values(port)
            .into_iter()
            .map(|v| v.as_real().expect("non-numeric output packet"))
            .collect()
    }

    /// Arrival-time report for a sink port: steady-state interval, rate,
    /// and fill latency in one place. An unknown port yields an empty
    /// (all-`None`) report.
    pub fn timing(&self, port: &str) -> Timing {
        Timing::of(
            self.outputs
                .get(port)
                .map(|v| v.iter().map(|&(t, _)| t).collect::<Vec<_>>())
                .unwrap_or_default(),
        )
    }

    /// Emission-time report for a source port.
    pub fn source_timing(&self, name: &str) -> Timing {
        Timing::of(
            self.source_emit_times
                .get(name)
                .cloned()
                .unwrap_or_default(),
        )
    }

    /// Pipeline fill latency of an output: instruction times from the
    /// machine start to the first packet on the port.
    pub fn fill_latency(&self, port: &str) -> Option<u64> {
        self.timing(port).fill_latency()
    }

    /// Fraction of operation packets destined to array memories.
    pub fn am_traffic_fraction(&self) -> f64 {
        if self.total_fires == 0 {
            0.0
        } else {
            self.am_fires as f64 / self.total_fires as f64
        }
    }
}

/// Arrival-time analysis of one packet stream (a sink's arrivals or a
/// source's emissions), unifying the steady-state interval, rate, and
/// fill-latency accessors that used to be free functions.
///
/// Full pipelining ⇔ `interval()` ≈ 2 instruction times.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Timing {
    times: Vec<u64>,
}

impl Timing {
    /// Analysis of a monotone event-time sequence.
    pub fn of(times: impl Into<Vec<u64>>) -> Self {
        Timing {
            times: times.into(),
        }
    }

    /// The raw event times.
    pub fn arrivals(&self) -> &[u64] {
        &self.times
    }

    /// Number of events observed.
    pub fn count(&self) -> usize {
        self.times.len()
    }

    /// Whether no events were observed.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Steady-state mean inter-event spacing over the middle of the run
    /// (the first and last 20% are dropped to exclude fill/drain
    /// transients). `None` if fewer than 8 events.
    pub fn interval(&self) -> Option<f64> {
        if self.times.len() < 8 {
            return None;
        }
        let lo = self.times.len() / 5;
        let hi = self.times.len() - self.times.len() / 5;
        let span = self.times[hi - 1] - self.times[lo];
        Some(span as f64 / (hi - 1 - lo) as f64)
    }

    /// Computation rate = events per instruction time (inverse of
    /// [`Timing::interval`]).
    pub fn rate(&self) -> Option<f64> {
        self.interval().map(|iv| 1.0 / iv)
    }

    /// Instruction times from machine start to the first event.
    pub fn fill_latency(&self) -> Option<u64> {
        self.times.first().copied()
    }
}

#[derive(Debug)]
pub(crate) struct ArcState {
    /// In-flight and deliverable tokens: `(value, ready_at)`.
    pub(crate) queue: VecDeque<(Value, u64)>,
    /// Times at which consumed-token slots become free again (acks).
    /// Kept as an unordered list: injected acknowledge delays break the
    /// monotonicity a front-pop queue would rely on.
    pub(crate) freeing: Vec<u64>,
    pub(crate) cap: usize,
    /// Tokens that entered the arc (queued or lost in transit).
    pub(crate) sent: u64,
    /// Tokens consumed off the queue by the destination cell.
    pub(crate) consumed: u64,
    /// Consumed-token slots whose acknowledge completed.
    pub(crate) acked: u64,
    /// Result packets lost to injected faults. The producer's slot is
    /// never acknowledged, so each loss permanently occupies capacity —
    /// the realistic wedge a lost packet causes on this architecture.
    pub(crate) lost_result: u64,
    /// Acknowledge packets lost to injected faults; each permanently
    /// occupies the slot it should have freed.
    pub(crate) lost_ack: u64,
}

impl ArcState {
    fn occupied(&self) -> usize {
        self.queue.len() + self.freeing.len() + (self.lost_result + self.lost_ack) as usize
    }
    fn peek(&self, now: u64) -> Option<Value> {
        self.queue
            .front()
            .and_then(|&(v, t)| (t <= now).then_some(v))
    }
}

/// Release the acknowledge slots of `st` that expire at or before
/// `now`. The list is unordered (injected acknowledge delays can
/// overtake each other), so filter rather than front-pop.
#[inline]
pub(crate) fn release_acks(st: &mut ArcState, now: u64) {
    let before = st.freeing.len();
    st.freeing.retain(|&t| t > now);
    st.acked += (before - st.freeing.len()) as u64;
}

/// Consume the head token of `st` and start its acknowledge with the
/// given fault fate. Returns the slot-free time to post wakeups at, if
/// the acknowledge survives.
#[inline]
pub(crate) fn consume_token(st: &mut ArcState, ack_at: u64, fate: AckFate) -> Option<u64> {
    st.queue.pop_front();
    st.consumed += 1;
    match fate {
        AckFate::Deliver => {
            st.freeing.push(ack_at);
            Some(ack_at)
        }
        AckFate::Delay(extra) => {
            st.freeing.push(ack_at + extra);
            Some(ack_at + extra)
        }
        // A lost acknowledge never frees the producer's slot.
        AckFate::Drop => {
            st.lost_ack += 1;
            None
        }
    }
}

/// Launch a result packet onto `st` with the given fault fate. Returns
/// the delivery time to post the destination's wakeup at, if the packet
/// survives.
#[inline]
pub(crate) fn emit_token(st: &mut ArcState, v: Value, ready: u64, fate: ResultFate) -> Option<u64> {
    st.sent += 1;
    match fate {
        ResultFate::Deliver => {
            st.queue.push_back((v, ready));
            Some(ready)
        }
        // A dropped result leaves its slot permanently occupied: the
        // destination never consumes it, so it is never acknowledged.
        ResultFate::Drop => {
            st.lost_result += 1;
            None
        }
        // A delayed packet still holds its place in FIFO order, so a
        // slow packet blocks the ones behind it (head-of-line).
        ResultFate::Delay(extra) => {
            st.queue.push_back((v, ready + extra));
            Some(ready + extra)
        }
        ResultFate::Duplicate => {
            st.queue.push_back((v, ready));
            // The duplicate is delivered only if the link has a free
            // slot; capacity is a physical property of the arc and
            // must hold even under faults.
            if st.occupied() < st.cap {
                st.queue.push_back((v, ready));
                st.sent += 1;
            }
            Some(ready)
        }
    }
}

/// Sentinel in [`Cells::sink_slot`]/[`Cells::src_slot`] for cells that
/// are not sinks/sources.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Per-cell machine state in struct-of-arrays layout, indexed by `u32`
/// cell id. Sink arrivals and source emission times live in dense slot
/// vectors (`outputs`/`emit_times`, in cell order) instead of
/// name-keyed hash maps, so the firing path never hashes a port name;
/// cells sharing a port name share a slot, which preserves the merged
/// per-name streams the maps used to hold.
#[derive(Debug)]
pub(crate) struct Cells {
    pub(crate) src_pos: Vec<usize>,
    pub(crate) src_data: Vec<Option<Vec<Value>>>,
    pub(crate) ctl_pos: Vec<u64>,
    pub(crate) fires: Vec<u64>,
    /// Per-cell gate pass/discard counts (zero for non-gates); feeds the
    /// gate-accounting invariant and the stall report.
    pub(crate) gate_passes: Vec<u64>,
    pub(crate) gate_discards: Vec<u64>,
    pub(crate) fire_times: Option<Vec<Vec<u64>>>,
    /// Slot of each sink cell in `outputs` (`NO_SLOT` otherwise).
    pub(crate) sink_slot: Vec<u32>,
    /// Slot of each source cell in `emit_times` (`NO_SLOT` otherwise).
    pub(crate) src_slot: Vec<u32>,
    /// Per sink port: `(arrival time, value)` packets, in order.
    pub(crate) outputs: Vec<(String, Vec<(u64, Value)>)>,
    /// Per source port: the time of each packet emission.
    pub(crate) emit_times: Vec<(String, Vec<u64>)>,
}

impl Cells {
    pub(crate) fn empty(n: usize, record_fire_times: bool) -> Cells {
        Cells {
            src_pos: vec![0; n],
            src_data: vec![None; n],
            ctl_pos: vec![0; n],
            fires: vec![0; n],
            gate_passes: vec![0; n],
            gate_discards: vec![0; n],
            fire_times: record_fire_times.then(|| vec![Vec::new(); n]),
            sink_slot: vec![NO_SLOT; n],
            src_slot: vec![NO_SLOT; n],
            outputs: Vec::new(),
            emit_times: Vec::new(),
        }
    }

    /// Slot index for a port name in a slot vector, creating it on
    /// first sight (cells sharing a name share the slot).
    pub(crate) fn name_slot<T: Default>(slots: &mut Vec<(String, T)>, name: &str) -> u32 {
        match slots.iter().position(|(p, _)| p == name) {
            Some(s) => s as u32,
            None => {
                slots.push((name.to_string(), T::default()));
                (slots.len() - 1) as u32
            }
        }
    }

    /// Packets delivered + packets emitted so far — the run's progress
    /// measure, derived rather than stored so a restore can never
    /// disagree with the canonical state.
    pub(crate) fn derived_progress(&self) -> u64 {
        let sunk: u64 = self.outputs.iter().map(|(_, v)| v.len() as u64).sum();
        let emitted: u64 = self.emit_times.iter().map(|(_, v)| v.len() as u64).sum();
        sunk + emitted
    }
}

/// [`SimConfig::stop_outputs`] precompiled against the sink slots, so
/// the per-step stopping test never hashes a name.
#[derive(Debug, Clone)]
pub(crate) enum StopSlots {
    /// No output target configured.
    Inactive,
    /// A listed port has no sink cell, so the target can never be met
    /// (the run falls through to quiescence or the step limit, exactly
    /// like the old name-keyed lookup miss).
    Never,
    /// `(slot, count)` targets into [`Cells::outputs`]; the run stops
    /// once every slot holds at least its count.
    Watch(Vec<(u32, usize)>),
}

impl StopSlots {
    pub(crate) fn compile(stop: &Option<Vec<(String, usize)>>, cells: &Cells) -> StopSlots {
        let Some(list) = stop else {
            return StopSlots::Inactive;
        };
        let mut watch = Vec::with_capacity(list.len());
        for (name, count) in list {
            match cells.outputs.iter().position(|(p, _)| p == name) {
                Some(s) => watch.push((s as u32, *count)),
                None => return StopSlots::Never,
            }
        }
        StopSlots::Watch(watch)
    }
}

/// Per-step buffers reused across the whole run so the hot loop never
/// reallocates: due lists, fire plans, thaw/throttle lists, the
/// resource budget, and the parallel kernel's per-worker buffers. Not
/// part of canonical machine state (never snapshotted).
#[derive(Debug, Default)]
pub(crate) struct StepScratch {
    pub(crate) due_nodes: Vec<u32>,
    pub(crate) due_arcs: Vec<u32>,
    pub(crate) plans: Vec<(u32, FirePlan)>,
    pub(crate) thawing: Vec<(u32, u64)>,
    pub(crate) throttled: Vec<u32>,
    pub(crate) budget: Vec<u32>,
    pub(crate) bufs: Vec<crate::par::WorkerBuf>,
}

enum Operand {
    FromArc(ArcId, Value),
    Literal(Value),
}

impl Operand {
    fn value(&self) -> Value {
        match self {
            Operand::FromArc(_, v) | Operand::Literal(v) => *v,
        }
    }
}

/// Read-only view of exactly the machine state cell planning touches:
/// arc states and the source/control cursors. The `Simulator`
/// implements it over its own storage; the epoch engine's per-shard
/// views (`par.rs`) implement it over disjointly-aliased slices — so
/// [`plan_cell`] is the *single* planning implementation shared by
/// every kernel and the epoch engine, and cannot drift.
pub(crate) trait PlanView {
    /// State of arc `a`.
    fn arc(&self, a: usize) -> &ArcState;
    /// Control-generator cursor of cell `i`.
    fn ctl_pos(&self, i: usize) -> u64;
    /// Source cursor of cell `i`.
    fn src_pos(&self, i: usize) -> usize;
    /// Bound source data of cell `i`.
    fn src_data(&self, i: usize) -> Option<&[Value]>;
}

fn view_operand<V: PlanView + ?Sized>(
    g: &Graph,
    view: &V,
    now: u64,
    n: NodeId,
    port: usize,
) -> Option<Operand> {
    match g.nodes[n.idx()].inputs[port] {
        PortBinding::Lit(v) => Some(Operand::Literal(v)),
        PortBinding::Wired(a) => view.arc(a.idx()).peek(now).map(|v| Operand::FromArc(a, v)),
        PortBinding::Unbound => None,
    }
}

fn view_outputs_free<V: PlanView + ?Sized>(g: &Graph, view: &V, n: NodeId) -> bool {
    g.nodes[n.idx()].outputs.iter().all(|a| {
        let st = view.arc(a.idx());
        st.occupied() < st.cap
    })
}

/// Determine whether `n` can fire at `now` and, if so, what it does.
/// Pure over the view — shared verbatim by every kernel's planning
/// phase and the epoch engine's shard workers.
pub(crate) fn plan_cell<V: PlanView + ?Sized>(
    g: &Graph,
    view: &V,
    now: u64,
    n: NodeId,
) -> Result<Option<FirePlan>, SimError> {
    let node = &g.nodes[n.idx()];
    let fault_ctl = || SimError::NonBoolControl {
        node: n.idx(),
        label: node.label.clone(),
    };
    let plan = match &node.op {
        Opcode::Bin(op) => {
            let (Some(a), Some(b)) = (
                view_operand(g, view, now, n, 0),
                view_operand(g, view, now, n, 1),
            ) else {
                return Ok(None);
            };
            if !view_outputs_free(g, view, n) {
                return Ok(None);
            }
            let v = apply_bin(*op, a.value(), b.value()).map_err(|e| SimError::Eval {
                node: n.idx(),
                label: node.label.clone(),
                message: e.0,
            })?;
            Some(FirePlan::consume2(a, b).emit(v))
        }
        Opcode::Un(op) => {
            let Some(a) = view_operand(g, view, now, n, 0) else {
                return Ok(None);
            };
            if !view_outputs_free(g, view, n) {
                return Ok(None);
            }
            let v = apply_un(*op, a.value()).map_err(|e| SimError::Eval {
                node: n.idx(),
                label: node.label.clone(),
                message: e.0,
            })?;
            Some(FirePlan::consume1(a).emit(v))
        }
        Opcode::Id | Opcode::AmWrite | Opcode::AmRead => {
            let Some(a) = view_operand(g, view, now, n, 0) else {
                return Ok(None);
            };
            if !view_outputs_free(g, view, n) {
                return Ok(None);
            }
            let v = a.value();
            Some(FirePlan::consume1(a).emit(v))
        }
        Opcode::TGate | Opcode::FGate => {
            let (Some(c), Some(d)) = (
                view_operand(g, view, now, n, GATE_CTL),
                view_operand(g, view, now, n, GATE_DATA),
            ) else {
                return Ok(None);
            };
            let ctl = c.value().as_bool().ok_or_else(fault_ctl)?;
            let pass = if matches!(node.op, Opcode::TGate) {
                ctl
            } else {
                !ctl
            };
            if pass {
                if !view_outputs_free(g, view, n) {
                    return Ok(None);
                }
                let v = d.value();
                Some(FirePlan::consume2(c, d).emit(v))
            } else {
                // Discard: no destination needed — the essential
                // "no jams" behaviour of the paper's §5.
                Some(FirePlan::consume2(c, d))
            }
        }
        Opcode::Merge => {
            let Some(c) = view_operand(g, view, now, n, MERGE_CTL) else {
                return Ok(None);
            };
            let ctl = c.value().as_bool().ok_or_else(fault_ctl)?;
            let port = if ctl { MERGE_TRUE } else { MERGE_FALSE };
            let Some(d) = view_operand(g, view, now, n, port) else {
                return Ok(None);
            };
            if !view_outputs_free(g, view, n) {
                return Ok(None);
            }
            let v = d.value();
            Some(FirePlan::consume2(c, d).emit(v))
        }
        Opcode::CtlGen(stream) => {
            if !view_outputs_free(g, view, n) {
                return Ok(None);
            }
            Some(FirePlan::new().emit(Value::Bool(stream.at(view.ctl_pos(n.idx())))))
        }
        Opcode::IdxGen { lo, hi } => {
            if !view_outputs_free(g, view, n) {
                return Ok(None);
            }
            let len = (hi - lo + 1) as u64;
            let v = lo + (view.ctl_pos(n.idx()) % len) as i64;
            Some(FirePlan::new().emit(Value::Int(v)))
        }
        Opcode::Source(_) => {
            let data = view.src_data(n.idx()).unwrap_or_else(|| {
                panic!(
                    "cell {} ({}): source data unbound at step {} despite construction check",
                    n.idx(),
                    node.label,
                    now
                )
            });
            if view.src_pos(n.idx()) >= data.len() || !view_outputs_free(g, view, n) {
                return Ok(None);
            }
            Some(FirePlan::new().emit(data[view.src_pos(n.idx())]))
        }
        Opcode::Sink(_) => {
            let Some(a) = view_operand(g, view, now, n, 0) else {
                return Ok(None);
            };
            let v = a.value();
            Some(FirePlan::consume1(a).emit(v)) // "emit" records to the sink
        }
        Opcode::Fifo(_) => unreachable!("rejected at construction"),
    };
    Ok(plan)
}

/// Mutation sink for the per-cell effects of one firing. The
/// `Simulator` implements it over its own storage; the epoch engine's
/// shard views implement it over disjointly-aliased slices plus local
/// counters — so [`note_fire_cell`] is the single bookkeeping
/// implementation shared by the sequential fire path, the parallel
/// merge, and the epoch workers.
pub(crate) trait NoteSink {
    /// Count a gate pass (`pass`) or discard (`!pass`) on gate cell `i`.
    fn bump_gate(&mut self, i: usize, pass: bool);
    /// Record `v` arriving at sink cell `i` at time `t`.
    fn record_output(&mut self, i: usize, t: u64, v: Value);
    /// Advance source cell `i`'s cursor and record its emission at `t`.
    fn advance_source(&mut self, i: usize, t: u64);
    /// Advance generator cell `i`'s control cursor.
    fn advance_ctl(&mut self, i: usize);
    /// Count the firing of cell `i` at time `t` (`am`/`fu`: whether the
    /// cell is an array-memory / function-unit instruction).
    fn count_fire(&mut self, i: usize, t: u64, am: bool, fu: bool);
}

/// Per-cell effects of one firing: gate accounting, sink/source/
/// control-generator cursors, fire counters, and fire-time recording.
/// Returns the value to launch on the cell's output arcs, if any. Arc
/// mutations stay with the caller, which is what lets the parallel
/// kernel partition them by arc ownership (see DESIGN.md §11).
pub(crate) fn note_fire_cell<S: NoteSink + ?Sized>(
    g: &Graph,
    sink: &mut S,
    now: u64,
    n: NodeId,
    plan: &FirePlan,
) -> Option<Value> {
    let i = n.idx();
    let node = &g.nodes[i];
    if matches!(node.op, Opcode::TGate | Opcode::FGate) {
        sink.bump_gate(i, plan.emit.is_some());
    }
    let mut launch = None;
    if let Some(v) = plan.emit {
        match &node.op {
            Opcode::Sink(_) => {
                // "emit" records to the sink; nothing is launched.
                sink.record_output(i, now, v);
            }
            Opcode::Source(_) => {
                sink.advance_source(i, now);
                launch = Some(v);
            }
            Opcode::CtlGen(_) | Opcode::IdxGen { .. } => {
                sink.advance_ctl(i);
                launch = Some(v);
            }
            _ => launch = Some(v),
        }
    }
    sink.count_fire(
        i,
        now,
        node.op.is_array_memory(),
        node.op.is_function_unit(),
    );
    launch
}

/// Outcome of one pass through the run loop: either the run reached a
/// stopping decision and produced its [`RunResult`], or it hit a caller
/// pause boundary and hands the live machine back.
pub(crate) enum RunPhase<'g> {
    /// The run stopped; the machine has been consumed into its result.
    /// Boxed, like [`RunPhase::Paused`], to keep the enum small.
    Done(Box<RunResult>),
    /// The pause boundary was reached first; the machine is untouched
    /// beyond it and can be resumed, snapshotted, or dropped. Boxed: a
    /// live machine is large next to a [`RunResult`].
    Paused(Box<Simulator<'g>>),
}

/// The simulation engine. Construct through [`Simulator::builder`], which
/// yields a [`crate::session::Session`]; the engine's `step`/`run` remain
/// public for the session to delegate to.
pub struct Simulator<'g> {
    pub(crate) g: &'g Graph,
    pub(crate) cfg: SimConfig,
    pub(crate) arcs: Vec<ArcState>,
    /// Per-cell state, struct-of-arrays by `u32` cell id.
    pub(crate) cells: Cells,
    pub(crate) now: u64,
    pub(crate) fwd_delay: Vec<u64>,
    pub(crate) ack_delay: Vec<u64>,
    pub(crate) am_fires: u64,
    pub(crate) fu_fires: u64,
    /// Normalized fault plan: `None` when no plan was given *or* the
    /// given plan is empty, so the empty plan shares the exact fault-free
    /// code path (bit-identical runs).
    pub(crate) fault: Option<FaultPlan>,
    /// Wakeup wheels (inert for the scan kernel).
    pub(crate) sched: Scheduler,
    /// `stop_outputs` precompiled to sink slots.
    pub(crate) stop_slots: StopSlots,
    /// Source emissions + sink arrivals so far — maintained incrementally
    /// so the watchdog's progress probe is O(1) per step.
    pub(crate) progress: u64,
    /// Consecutive steps with zero firings. Lives on the machine (not as
    /// a `run` local) so a checkpoint captures it and a restored run
    /// reaches the quiescence decision at the identical instruction time.
    pub(crate) idle: u64,
    /// Watchdog progress bookkeeping; on the machine for the same reason
    /// as `idle`, and so manual stepping and `run` observe identically.
    pub(crate) tracker: ProgressTracker,
    /// Reusable per-step buffers (not machine state, never snapshotted).
    pub(crate) scratch: StepScratch,
    /// Lazily created worker pool for [`Kernel::ParallelEvent`]; `None`
    /// until the first parallel-phased step.
    pub(crate) pool: Option<crate::par::Pool>,
    /// Whether `run_inner` proved the whole run free of the features
    /// (faults, throttles, watchdogs, fast-forward, invariant checking,
    /// periodic checkpoints) that make the epoch horizon unprovable —
    /// set at run entry, cleared on pause, always false for manual
    /// stepping. See DESIGN.md §16.
    pub(crate) allow_epochs: bool,
    /// The step the current `run_inner` call must not run past (pause
    /// boundary / step limit); epochs clamp their horizon to it.
    pub(crate) epoch_stop_cap: u64,
    /// Lazily built epoch engine (shard map + per-shard wheels); like
    /// `scratch`, an optimization artifact, never snapshotted.
    pub(crate) epoch: Option<Box<crate::par::EpochEngine>>,
}

impl PlanView for Simulator<'_> {
    fn arc(&self, a: usize) -> &ArcState {
        &self.arcs[a]
    }
    fn ctl_pos(&self, i: usize) -> u64 {
        self.cells.ctl_pos[i]
    }
    fn src_pos(&self, i: usize) -> usize {
        self.cells.src_pos[i]
    }
    fn src_data(&self, i: usize) -> Option<&[Value]> {
        self.cells.src_data[i].as_deref()
    }
}

impl NoteSink for Simulator<'_> {
    fn bump_gate(&mut self, i: usize, pass: bool) {
        if pass {
            self.cells.gate_passes[i] += 1;
        } else {
            self.cells.gate_discards[i] += 1;
        }
    }
    fn record_output(&mut self, i: usize, t: u64, v: Value) {
        self.cells.outputs[self.cells.sink_slot[i] as usize]
            .1
            .push((t, v));
        self.progress += 1;
    }
    fn advance_source(&mut self, i: usize, t: u64) {
        self.cells.src_pos[i] += 1;
        self.cells.emit_times[self.cells.src_slot[i] as usize]
            .1
            .push(t);
        self.progress += 1;
    }
    fn advance_ctl(&mut self, i: usize) {
        self.cells.ctl_pos[i] += 1;
    }
    fn count_fire(&mut self, i: usize, t: u64, am: bool, fu: bool) {
        self.cells.fires[i] += 1;
        if am {
            self.am_fires += 1;
        }
        if fu {
            self.fu_fires += 1;
        }
        if let Some(ft) = &mut self.cells.fire_times {
            ft[i].push(t);
        }
    }
}

impl<'g> Simulator<'g> {
    /// Fluent entry point for every simulation: bind inputs, set options,
    /// then [`crate::session::SessionBuilder::build`] a steppable session
    /// or [`crate::session::SessionBuilder::run`] to completion.
    pub fn builder(g: &'g Graph) -> SessionBuilder<'g> {
        SessionBuilder::new(g)
    }

    pub(crate) fn with_config(
        g: &'g Graph,
        inputs: &ProgramInputs,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        let n = g.nodes.len();
        let mut cells = Cells::empty(n, cfg.record_fire_times);
        for (i, node) in g.nodes.iter().enumerate() {
            match &node.op {
                Opcode::Fifo(_) => return Err(SimError::UnexpandedFifo(i)),
                Opcode::Source(name) => {
                    let data = inputs
                        .get(name)
                        .ok_or_else(|| SimError::MissingInput(name.clone()))?;
                    cells.src_data[i] = Some(data.to_vec());
                    cells.src_slot[i] = Cells::name_slot(&mut cells.emit_times, name);
                }
                Opcode::Sink(name) => {
                    cells.sink_slot[i] = Cells::name_slot(&mut cells.outputs, name);
                }
                _ => {}
            }
        }
        let (fwd_delay, ack_delay) = match &cfg.delays {
            Some(d) => {
                if d.forward.len() != g.arcs.len() {
                    return Err(MachineError::DelayTableMismatch {
                        expected: g.arcs.len(),
                        got: d.forward.len(),
                    });
                }
                if d.ack.len() != g.arcs.len() {
                    return Err(MachineError::DelayTableMismatch {
                        expected: g.arcs.len(),
                        got: d.ack.len(),
                    });
                }
                (d.forward.clone(), d.ack.clone())
            }
            None => (vec![1; g.arcs.len()], vec![1; g.arcs.len()]),
        };
        let arcs = g
            .arcs
            .iter()
            .map(|e| {
                let mut st = ArcState {
                    queue: VecDeque::new(),
                    freeing: Vec::new(),
                    cap: cfg.arc_capacity,
                    sent: 0,
                    consumed: 0,
                    acked: 0,
                    lost_result: 0,
                    lost_ack: 0,
                };
                if let Some(v) = e.initial {
                    st.queue.push_back((v, 0));
                    st.sent += 1;
                }
                st
            })
            .collect();
        if let Some(fz) = cfg
            .fault_plan
            .iter()
            .flat_map(|p| p.freezes.iter())
            .find(|fz| fz.node >= n)
        {
            return Err(MachineError::InvalidConfig(format!(
                "fault plan freezes cell {} but the graph has {} cells",
                fz.node, n
            )));
        }
        let fault = cfg.fault_plan.clone().filter(|p| !p.is_empty());
        let sched = Scheduler::new(cfg.kernel, n);
        let stop_slots = StopSlots::compile(&cfg.stop_outputs, &cells);
        Ok(Simulator {
            g,
            cfg,
            arcs,
            cells,
            now: 0,
            fwd_delay,
            ack_delay,
            am_fires: 0,
            fu_fires: 0,
            fault,
            sched,
            stop_slots,
            progress: 0,
            idle: 0,
            tracker: ProgressTracker::new(0),
            scratch: StepScratch::default(),
            pool: None,
            allow_epochs: false,
            epoch_stop_cap: 0,
            epoch: None,
        })
    }

    /// Current instruction time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Which kernel drives this simulation.
    pub fn kernel(&self) -> Kernel {
        self.cfg.kernel
    }

    /// Determine whether `n` can fire now and, if so, what it does.
    /// Delegates to [`plan_cell`] — the single planning implementation
    /// shared with the epoch engine's shard workers.
    fn plan(&self, n: NodeId) -> Result<Option<FirePlan>, SimError> {
        plan_cell(self.g, self, self.now, n)
    }

    /// Launch a result packet onto `a`, consulting the fault plan for
    /// its fate. Posts the destination's wakeup at the delivery time.
    fn emit_on(&mut self, a: ArcId, v: Value) {
        let ready = self.now + self.fwd_delay[a.idx()];
        let fate = match &self.fault {
            Some(f) => f.result_fate(a.idx(), self.now),
            None => ResultFate::Deliver,
        };
        let dst = self.g.arcs[a.idx()].dst.idx() as u32;
        if let Some(t) = emit_token(&mut self.arcs[a.idx()], v, ready, fate) {
            self.sched.wake(dst, t);
        }
    }

    /// Per-cell effects of one firing: gate accounting, sink/source/
    /// control-generator cursors, fire counters, and fire-time
    /// recording. Returns the value to launch on the cell's output
    /// arcs, if any. Shared verbatim by the sequential kernels (inside
    /// [`Self::fire`]) and the parallel kernel's sequential merge — arc
    /// mutations stay with the caller, which is what lets the parallel
    /// kernel partition them by arc ownership (see DESIGN.md §11).
    pub(crate) fn note_fire(&mut self, n: NodeId, plan: &FirePlan) -> Option<Value> {
        let g = self.g;
        let now = self.now;
        note_fire_cell(g, self, now, n, plan)
    }

    fn fire(&mut self, n: NodeId, plan: FirePlan) {
        let now = self.now;
        for arc in plan.consumes() {
            let fate = match &self.fault {
                Some(f) => f.ack_fate(arc.idx(), now),
                None => AckFate::Deliver,
            };
            let src = self.g.arcs[arc.idx()].src.idx() as u32;
            let ack_at = now + self.ack_delay[arc.idx()];
            if let Some(t) = consume_token(&mut self.arcs[arc.idx()], ack_at, fate) {
                // The freed slot re-enables the arc's producer.
                self.sched.wake_arc(arc.idx() as u32, t);
                self.sched.wake(src, t);
            }
        }
        if let Some(v) = self.note_fire(n, &plan) {
            let g = self.g;
            for &a in &g.nodes[n.idx()].outputs {
                self.emit_on(a, v);
            }
        }
        // A fired cell may be enabled again immediately (buffered output
        // arcs, queued operands); re-examine it next step.
        self.sched.wake(n.idx() as u32, now + 1);
    }

    /// Advance one instruction time. Returns how many cells fired.
    ///
    /// Inside an eligible `run` (see [`Self::run_inner`]'s gate) the
    /// parallel kernel may instead execute a whole multi-step *epoch*
    /// and advance `now` by the proven horizon; the epoch path does its
    /// own per-sub-step tracker/idle bookkeeping, so it returns before
    /// the shared observation below.
    pub fn step(&mut self) -> Result<usize, SimError> {
        if self.allow_epochs {
            if let Kernel::ParallelEvent(w) = self.cfg.kernel {
                if let Some(fired) = self.try_step_epoch(w)? {
                    return Ok(fired);
                }
            }
        }
        let fired = match self.cfg.kernel {
            Kernel::Scan => self.step_scan()?,
            Kernel::EventDriven => self.step_event()?,
            Kernel::ParallelEvent(w) => self.step_parallel(w)?,
        };
        // Progress/idle bookkeeping happens here — not in `run` — so
        // manual stepping, `run`, and a checkpoint-restored machine all
        // observe the identical per-step history.
        self.tracker.observe(self.now, fired as u64, self.progress);
        if fired == 0 {
            self.idle += 1;
        } else {
            self.idle = 0;
        }
        Ok(fired)
    }

    /// Plan every cell of `due` (ascending cell ids): frozen cells are
    /// deferred into `thaw` with their wake time, enabled cells append
    /// to `plans`. Read-only on the machine — shared by the sequential
    /// event step and each parallel planning worker.
    pub(crate) fn plan_due(
        &self,
        due: &[u32],
        plans: &mut Vec<(u32, FirePlan)>,
        thaw: &mut Vec<(u32, u64)>,
    ) -> Result<(), SimError> {
        let now = self.now;
        for &nid in due {
            if let Some(f) = &self.fault {
                if f.frozen(nid as usize, now) {
                    thaw.push((nid, f.thaw_time(nid as usize, now)));
                    continue;
                }
            }
            if let Some(p) = self.plan(NodeId(nid))? {
                plans.push((nid, p));
            }
        }
        Ok(())
    }

    /// Contention throttling over the planned firings (in cell order).
    /// A throttled cell is still enabled and must be re-examined next
    /// step; the wakeup is a no-op for the scan kernel, which re-scans
    /// everything anyway.
    pub(crate) fn apply_throttle(&mut self, plans: &mut Vec<(u32, FirePlan)>) {
        let Some(res) = &self.cfg.resources else {
            return;
        };
        let mut budget = mem::take(&mut self.scratch.budget);
        budget.clear();
        budget.extend_from_slice(&res.capacity);
        let mut throttled = mem::take(&mut self.scratch.throttled);
        throttled.clear();
        plans.retain(|&(nid, _)| {
            let u = res.unit_of[nid as usize] as usize;
            if budget[u] > 0 {
                budget[u] -= 1;
                true
            } else {
                throttled.push(nid);
                false
            }
        });
        let now = self.now;
        for &nid in &throttled {
            self.sched.wake(nid, now + 1);
        }
        self.scratch.budget = budget;
        self.scratch.throttled = throttled;
    }

    /// The body of one event-driven instruction time over an already
    /// drained ready set: release due acknowledges, plan, post thaw
    /// wakeups, throttle, fire. Used by [`Kernel::EventDriven`] and by
    /// [`Kernel::ParallelEvent`] when the tick is too small to be worth
    /// fanning out (the results do not depend on which path ran).
    pub(crate) fn step_ready(&mut self, due: &[u32], due_arcs: &[u32]) -> Result<usize, SimError> {
        let now = self.now;
        // Release exactly the acknowledge slots scheduled to expire now;
        // arcs without due slots hold only future times, so skipping them
        // leaves the same state the full scan would.
        for &arc in due_arcs {
            release_acks(&mut self.arcs[arc as usize], now);
        }
        // Examine woken cells in index order (the scan order, which the
        // resource throttle and first-error selection depend on). A plan
        // error propagates before the thaw wakeups are posted and before
        // anything fires — planning has no side effects, so the machine
        // state is exactly the sequential error state.
        let mut plans = mem::take(&mut self.scratch.plans);
        let mut thaw = mem::take(&mut self.scratch.thawing);
        plans.clear();
        thaw.clear();
        self.plan_due(due, &mut plans, &mut thaw)?;
        for &(nid, at) in &thaw {
            self.sched.wake(nid, at);
        }
        self.apply_throttle(&mut plans);
        let count = plans.len();
        for &(nid, plan) in &plans {
            self.fire(NodeId(nid), plan);
        }
        self.scratch.plans = plans;
        self.scratch.thawing = thaw;
        self.now += 1;
        Ok(count)
    }

    /// The legacy O(cells) step: re-scan every cell.
    fn step_scan(&mut self) -> Result<usize, SimError> {
        let now = self.now;
        for st in &mut self.arcs {
            release_acks(st, now);
        }
        // Snapshot-enabled cells. Frozen cells need no thaw wakeup: the
        // scan re-examines everything every step.
        let mut plans = mem::take(&mut self.scratch.plans);
        plans.clear();
        for n in self.g.node_ids() {
            if let Some(f) = &self.fault {
                if f.frozen(n.idx(), now) {
                    continue;
                }
            }
            if let Some(p) = self.plan(n)? {
                plans.push((n.idx() as u32, p));
            }
        }
        self.apply_throttle(&mut plans);
        let count = plans.len();
        for &(nid, plan) in &plans {
            self.fire(NodeId(nid), plan);
        }
        self.scratch.plans = plans;
        self.now += 1;
        Ok(count)
    }

    /// The event-driven O(fired + woken) step: examine only cells with a
    /// pending wakeup (see [`crate::scheduler`] for the invariant).
    fn step_event(&mut self) -> Result<usize, SimError> {
        let now = self.now;
        let mut due = mem::take(&mut self.scratch.due_nodes);
        let mut due_arcs = mem::take(&mut self.scratch.due_arcs);
        self.sched.due_arcs(now, &mut due_arcs);
        self.sched.due_nodes(now, &mut due);
        let r = self.step_ready(&due, &due_arcs);
        self.scratch.due_nodes = due;
        self.scratch.due_arcs = due_arcs;
        r
    }

    pub(crate) fn outputs_reached(&self) -> bool {
        match &self.stop_slots {
            StopSlots::Inactive | StopSlots::Never => false,
            StopSlots::Watch(list) => list
                .iter()
                .all(|&(slot, count)| self.cells.outputs[slot as usize].1.len() >= count),
        }
    }

    /// Run to quiescence, the step limit, the output-count target, or a
    /// watchdog stall; consumes the simulator.
    pub fn run(self) -> Result<RunResult, SimError> {
        self.run_with(None)
    }

    /// `run`, additionally handing every periodic checkpoint (see
    /// [`SimConfig::checkpoint_every`]) to `sink` after writing it to the
    /// configured path (if any).
    pub(crate) fn run_with(
        self,
        sink: Option<&mut dyn FnMut(crate::snapshot::Snapshot)>,
    ) -> Result<RunResult, SimError> {
        match self.run_inner(None, sink, None, None)? {
            RunPhase::Done(r) => Ok(*r),
            // Unreachable: without a pause boundary the loop only exits
            // through a stopping decision.
            RunPhase::Paused(_) => unreachable!("run without pause_at cannot pause"),
        }
    }

    /// The shared run loop. With `pause_at = Some(t)`, the loop suspends
    /// and hands the machine back once `now >= t` — *after* re-checking
    /// every stopping condition, so a pause boundary that coincides with
    /// the final step still completes. Because every stopping decision is
    /// state-based (top of the loop), a paused machine resumed later
    /// continues bit-identically to an uninterrupted run; this is what
    /// the serve crate's budgeted jobs and hibernation lean on.
    /// `ff`, when present, is the steady-state fast-forward engine
    /// (see [`crate::fastforward`]): it observes every step's fired
    /// count and may advance the machine by whole hyperperiods in
    /// place. Every stopping decision still happens at the top of the
    /// loop from machine state alone, so a jump is indistinguishable
    /// from having stepped the same window exactly.
    /// `epochs_out`, when present, receives the epoch engine's
    /// cumulative [`crate::shard::EpochStats`] before the call returns
    /// (both on completion and on pause).
    pub(crate) fn run_inner(
        mut self,
        pause_at: Option<u64>,
        mut sink: Option<&mut dyn FnMut(crate::snapshot::Snapshot)>,
        mut ff: Option<&mut crate::fastforward::FastForward>,
        epochs_out: Option<&mut crate::shard::EpochStats>,
    ) -> Result<RunPhase<'g>, SimError> {
        let wd = self.cfg.watchdog;
        let step_limit = match wd {
            Some(w) => self.cfg.max_steps.min(w.step_budget),
            None => self.cfg.max_steps,
        };
        // Epoch batching is legal only when every per-step decision the
        // run loop makes between epoch boundaries is provably inert:
        // no faults (freezes/fates), no resource throttle, no watchdog
        // straddle, no fast-forward observer, no per-step invariant
        // audit, no periodic checkpoint. Anything else falls back to
        // the per-step kernels (H=1 behavior). See DESIGN.md §16.
        self.epoch_stop_cap = pause_at.map_or(step_limit, |p| step_limit.min(p));
        self.allow_epochs = matches!(self.cfg.kernel, Kernel::ParallelEvent(w) if w >= 2)
            && self.cfg.epoch_cap >= 2
            && ff.is_none()
            && self.fault.is_none()
            && self.cfg.resources.is_none()
            && wd.is_none()
            && !self.cfg.check_invariants
            && !(self.cfg.checkpoint_every != 0
                && (self.cfg.checkpoint_path.is_some() || sink.is_some()));
        // Injected delays and freeze windows extend how long a token can
        // legitimately stay in flight; widen the quiescence test to match.
        let (delay_slack, freeze_end) = match &self.fault {
            Some(f) => {
                let mut slack = 0u64;
                if f.delay_result > 0.0 {
                    slack = slack.max(f.delay_result_max);
                }
                if f.delay_ack > 0.0 {
                    slack = slack.max(f.delay_ack_max);
                }
                (slack, f.freezes.iter().map(|z| z.until).max().unwrap_or(0))
            }
            None => (0, 0),
        };
        let max_lat = self
            .fwd_delay
            .iter()
            .chain(self.ack_delay.iter())
            .copied()
            .max()
            .unwrap_or(1)
            + delay_slack;
        let mut stop = StopReason::Quiescent;
        let mut stall_kind: Option<StallKind> = None;
        // Every stopping decision is made at the *top* of the loop from
        // machine state alone (the idle counter and progress tracker live
        // on the machine). A run restored from a checkpoint therefore
        // re-evaluates exactly the test the uninterrupted run would have
        // made next, even when the checkpoint landed on the final step.
        loop {
            if self.outputs_reached() {
                stop = StopReason::OutputsReached;
                break;
            }
            if let Some(w) = wd {
                if self.tracker.livelocked(self.now, w.progress_window) {
                    stop = StopReason::Stalled;
                    stall_kind = Some(StallKind::Livelock);
                    break;
                }
            }
            // Tokens may still be in flight (delay > 1); quiesce only
            // after the longest latency passes without any firing —
            // counted strictly after the last freeze window ends, or a
            // thawing cell would be declared dead at the instant it
            // wakes.
            if self.idle > max_lat && self.now > freeze_end.saturating_add(max_lat) {
                break;
            }
            if self.now >= step_limit {
                break;
            }
            if pause_at.is_some_and(|p| self.now >= p) {
                // Manual stepping of a paused machine must not epoch
                // (no run-scope legality proof covers it); the next
                // `run_inner` re-derives the gate.
                self.allow_epochs = false;
                if let Some(out) = epochs_out {
                    if let Some(eng) = &self.epoch {
                        *out = eng.stats.clone();
                    }
                }
                return Ok(RunPhase::Paused(Box::new(self)));
            }
            let fired = self.step()?;
            if self.cfg.check_invariants {
                self.check_invariants()?;
            }
            if let Some(f) = ff.as_deref_mut() {
                f.after_step(&mut self, fired as u64, pause_at, step_limit)?;
            }
            if self.cfg.checkpoint_every != 0
                && self.now.is_multiple_of(self.cfg.checkpoint_every)
                && (self.cfg.checkpoint_path.is_some() || sink.is_some())
            {
                let snap = crate::snapshot::Snapshot::capture(&self);
                if let Some(path) = &self.cfg.checkpoint_path {
                    snap.write_to(path)
                        .map_err(|e| MachineError::CheckpointIo {
                            path: path.clone(),
                            detail: e.to_string(),
                        })?;
                }
                if let Some(sink) = sink.as_mut() {
                    sink(snap);
                }
            }
        }
        if let Some(out) = epochs_out {
            if let Some(eng) = &self.epoch {
                *out = eng.stats.clone();
            }
        }
        if stop == StopReason::Quiescent && self.now >= step_limit {
            if wd.is_some() {
                stop = StopReason::Stalled;
                stall_kind = Some(StallKind::BudgetExhausted);
            } else {
                stop = StopReason::MaxSteps;
            }
        }
        let sources_exhausted = self
            .g
            .node_ids()
            .all(|n| match &self.cells.src_data[n.idx()] {
                Some(d) => self.cells.src_pos[n.idx()] >= d.len(),
                None => true,
            });
        if stop == StopReason::Quiescent && !sources_exhausted {
            stall_kind = Some(StallKind::Deadlock);
        }
        if self.cfg.check_invariants {
            // Complete any in-flight acknowledges before the final audit.
            let now = self.now;
            for st in &mut self.arcs {
                release_acks(st, now);
            }
            self.check_invariants()?;
            if stop == StopReason::Quiescent && sources_exhausted && self.fault.is_none() {
                // A cleanly completed fault-free run must have settled
                // every acknowledge.
                for (i, st) in self.arcs.iter().enumerate() {
                    if !st.freeing.is_empty() || st.lost_result != 0 || st.lost_ack != 0 {
                        return Err(MachineError::InvariantViolation {
                            step: self.now,
                            detail: format!(
                                "completed run left arc {i} with {} unsettled acknowledge slot(s)",
                                st.freeing.len() + (st.lost_result + st.lost_ack) as usize
                            ),
                        });
                    }
                }
            }
        }
        let total_fires = self.cells.fires.iter().sum();
        let stall_report = stall_kind
            .map(|kind| self.build_stall_report(kind, self.tracker.fires_since_progress()));
        // Slot names are unique (cells sharing a port share a slot), so
        // collecting into the result maps loses nothing.
        let Cells {
            fires,
            fire_times,
            outputs,
            emit_times,
            ..
        } = self.cells;
        Ok(RunPhase::Done(Box::new(RunResult {
            steps: self.now,
            stop,
            outputs: outputs.into_iter().collect(),
            fires,
            source_emit_times: emit_times.into_iter().collect(),
            sources_exhausted,
            total_fires,
            am_fires: self.am_fires,
            fu_fires: self.fu_fires,
            fire_times,
            stall_report,
        })))
    }

    /// Diagnose a stalled machine: which cells hold pending work they
    /// cannot complete, which arcs still hold tokens or unfreed slots,
    /// and the shortest circular wait, if any.
    pub(crate) fn build_stall_report(&self, kind: StallKind, fires_in_window: u64) -> StallReport {
        let n_cells = self.g.nodes.len();
        let mut blocked_cells = Vec::new();
        // Wait-for graph: cell -> cells it is waiting on (the producer of
        // a missing operand, or the consumer that has not acknowledged a
        // full output arc).
        let mut waits: Vec<Vec<usize>> = vec![Vec::new(); n_cells];
        for n in self.g.node_ids() {
            let node = &self.g.nodes[n.idx()];
            let mut missing = Vec::new();
            let mut has_ready = false;
            for (port, b) in node.inputs.iter().enumerate() {
                match b {
                    PortBinding::Wired(a) => {
                        if self.arcs[a.idx()].peek(self.now).is_some() {
                            has_ready = true;
                        } else {
                            missing.push(port);
                            waits[n.idx()].push(self.g.arcs[a.idx()].src.idx());
                        }
                    }
                    PortBinding::Lit(_) => {}
                    PortBinding::Unbound => missing.push(port),
                }
            }
            let full_output_arcs: Vec<usize> = node
                .outputs
                .iter()
                .filter(|a| self.arcs[a.idx()].occupied() >= self.arcs[a.idx()].cap)
                .map(|a| a.idx())
                .collect();
            for &a in &full_output_arcs {
                waits[n.idx()].push(self.g.arcs[a].dst.idx());
            }
            if has_ready && (!missing.is_empty() || !full_output_arcs.is_empty()) {
                blocked_cells.push(BlockedCell {
                    node: n.idx(),
                    label: node.label.clone(),
                    opcode: format!("{:?}", node.op),
                    missing_ports: missing,
                    full_output_arcs,
                });
            }
        }
        for w in &mut waits {
            w.sort_unstable();
            w.dedup();
        }
        let held_arcs = self
            .g
            .arcs
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                let st = &self.arcs[i];
                (st.occupied() > 0).then(|| HeldArc {
                    arc: i,
                    src: e.src.idx(),
                    dst: e.dst.idx(),
                    tokens: st.queue.len(),
                    unacked: st.freeing.len() + (st.lost_result + st.lost_ack) as usize,
                })
            })
            .collect();
        StallReport {
            step: self.now,
            kind,
            blocked_cells,
            held_arcs,
            cycle: shortest_cycle(&waits),
            fires_in_window,
        }
    }

    /// Verify the machine's conservation invariants. Called after every
    /// step when [`SimConfig::check_invariants`] is set (and after every
    /// fast-forward jump); these hold by construction today and exist to
    /// catch future regressions in the firing rules.
    pub(crate) fn check_invariants(&self) -> Result<(), SimError> {
        let step = self.now;
        for (i, st) in self.arcs.iter().enumerate() {
            let e = &self.g.arcs[i];
            let loc = format!("arc {i} (cell {} -> cell {})", e.src.idx(), e.dst.idx());
            if st.occupied() > st.cap {
                return Err(MachineError::InvariantViolation {
                    step,
                    detail: format!(
                        "{loc} holds {} token slot(s), capacity {}",
                        st.occupied(),
                        st.cap
                    ),
                });
            }
            if st.sent != st.queue.len() as u64 + st.consumed + st.lost_result {
                return Err(MachineError::InvariantViolation {
                    step,
                    detail: format!(
                        "token conservation broken on {loc}: sent {} != queued {} + consumed {} + lost {}",
                        st.sent,
                        st.queue.len(),
                        st.consumed,
                        st.lost_result
                    ),
                });
            }
            if st.consumed != st.acked + st.freeing.len() as u64 + st.lost_ack {
                return Err(MachineError::InvariantViolation {
                    step,
                    detail: format!(
                        "acknowledge conservation broken on {loc}: consumed {} != acked {} + pending {} + lost {}",
                        st.consumed,
                        st.acked,
                        st.freeing.len(),
                        st.lost_ack
                    ),
                });
            }
        }
        for n in self.g.node_ids() {
            let node = &self.g.nodes[n.idx()];
            if matches!(node.op, Opcode::TGate | Opcode::FGate) {
                let (p, d) = (
                    self.cells.gate_passes[n.idx()],
                    self.cells.gate_discards[n.idx()],
                );
                if p + d != self.cells.fires[n.idx()] {
                    return Err(MachineError::InvariantViolation {
                        step,
                        detail: format!(
                            "gate accounting broken on cell {} ({}): {} firings != {} passes + {} discards",
                            n.idx(),
                            node.label,
                            self.cells.fires[n.idx()],
                            p,
                            d
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// What a planned firing does: which input arcs it consumes (at most
/// two — the widest opcode arity that consumes, `Merge`, takes control
/// plus one selected data operand) and the value it emits, if any.
/// `Copy` with inline consume slots, so the per-step plan buffers never
/// allocate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FirePlan {
    pub(crate) consume: [Option<ArcId>; 2],
    pub(crate) emit: Option<Value>,
}

impl FirePlan {
    fn new() -> Self {
        FirePlan {
            consume: [None; 2],
            emit: None,
        }
    }
    fn consume1(a: Operand) -> Self {
        let mut p = Self::new();
        p.push(a);
        p
    }
    fn consume2(a: Operand, b: Operand) -> Self {
        let mut p = Self::new();
        p.push(a);
        p.push(b);
        p
    }
    fn push(&mut self, op: Operand) {
        if let Operand::FromArc(a, _) = op {
            if self.consume[0].is_none() {
                self.consume[0] = Some(a);
            } else {
                debug_assert!(
                    self.consume[1].is_none(),
                    "an opcode consumes at most two arcs"
                );
                self.consume[1] = Some(a);
            }
        }
    }
    fn emit(mut self, v: Value) -> Self {
        self.emit = Some(v);
        self
    }
    /// The consumed arcs, in operand-port order.
    pub(crate) fn consumes(&self) -> impl Iterator<Item = ArcId> + '_ {
        self.consume.iter().flatten().copied()
    }
}

/// The value a planned firing launches on its output arcs, if any —
/// [`Simulator::note_fire`]'s return value, derivable without touching
/// any per-cell state: only sinks swallow their emitted value. This is
/// what lets the parallel fire phase apply arc effects for plans whose
/// cells belong to other workers.
pub(crate) fn launch_value(g: &Graph, nid: u32, plan: &FirePlan) -> Option<Value> {
    if matches!(g.nodes[nid as usize].op, Opcode::Sink(_)) {
        None
    } else {
        plan.emit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valpipe_ir::value::BinOp;
    use valpipe_ir::CtlStream;

    fn reals(vals: &[f64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Real(v)).collect()
    }

    fn run_defaults(g: &Graph, inputs: ProgramInputs) -> Result<RunResult, SimError> {
        Simulator::builder(g).inputs(inputs).run()
    }

    /// The paper's Fig. 2 program: y = a*b; (y+2)*(y-3).
    fn fig2() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let b = g.add_node(Opcode::Source("b".into()), "b");
        let y = g.cell(Opcode::Bin(BinOp::Mul), "cell1", &[a.into(), b.into()]);
        let p = g.cell(Opcode::Bin(BinOp::Add), "cell2", &[y.into(), 2.0.into()]);
        let q = g.cell(Opcode::Bin(BinOp::Sub), "cell3", &[y.into(), 3.0.into()]);
        let r = g.cell(Opcode::Bin(BinOp::Mul), "cell4", &[p.into(), q.into()]);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[r.into()]);
        g
    }

    #[test]
    fn fig2_values_correct() {
        let g = fig2();
        let inputs = ProgramInputs::new()
            .bind("a", reals(&[1.0, 2.0, 3.0]))
            .bind("b", reals(&[4.0, 5.0, 6.0]));
        let r = run_defaults(&g, inputs).unwrap();
        let expect: Vec<f64> = [4.0, 10.0, 18.0]
            .iter()
            .map(|y| (y + 2.0) * (y - 3.0))
            .collect();
        assert_eq!(r.reals("out"), expect);
        assert!(r.sources_exhausted);
        assert_eq!(r.stop, StopReason::Quiescent);
    }

    #[test]
    fn both_kernels_agree_on_fig2() {
        let g = fig2();
        let inputs = ProgramInputs::new()
            .bind("a", reals(&[1.0, 2.0, 3.0]))
            .bind("b", reals(&[4.0, 5.0, 6.0]));
        let scan = Simulator::builder(&g)
            .inputs(inputs.clone())
            .kernel(Kernel::Scan)
            .run()
            .unwrap();
        let event = Simulator::builder(&g)
            .inputs(inputs)
            .kernel(Kernel::EventDriven)
            .run()
            .unwrap();
        assert_eq!(scan, event);
    }

    #[test]
    fn fig2_fully_pipelined_rate_one_half() {
        let g = fig2();
        let n = 200;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let inputs = ProgramInputs::new()
            .bind("a", reals(&data))
            .bind("b", reals(&data));
        let r = run_defaults(&g, inputs).unwrap();
        let iv = r.timing("out").interval().unwrap();
        assert!((iv - 2.0).abs() < 0.05, "interval {iv} ≉ 2");
    }

    #[test]
    fn unbalanced_diamond_runs_slower_than_one_half() {
        // a → id1 → id2 → add ; a → add  (paths of length 2 and 0).
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let i1 = g.cell(Opcode::Id, "i1", &[a.into()]);
        let i2 = g.cell(Opcode::Id, "i2", &[i1.into()]);
        let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[i2.into(), a.into()]);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[add.into()]);
        let data: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let r = run_defaults(&g, ProgramInputs::new().bind("a", reals(&data))).unwrap();
        let iv = r.timing("out").interval().unwrap();
        assert!(iv > 2.5, "unbalanced diamond interval {iv} should exceed 2");
        // Values are still correct — imbalance costs speed, not correctness.
        assert_eq!(
            r.reals("out"),
            data.iter().map(|x| x + x).collect::<Vec<_>>()
        );
    }

    #[test]
    fn three_cycle_rate_one_third() {
        // Feedback loop of 3 cells, 1 initial token: x_{k+1} = x_k + 1.
        let mut g = Graph::new();
        let add = g.add_node(Opcode::Bin(BinOp::Add), "add");
        g.set_lit(add, 1, Value::Int(1));
        let i1 = g.cell(Opcode::Id, "i1", &[add.into()]);
        let i2 = g.cell(Opcode::Id, "i2", &[i1.into()]);
        g.connect_init(i2, add, 0, Value::Int(0));
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[i2.into()]);
        let r = Simulator::builder(&g).max_steps(2000).run().unwrap();
        // Runs forever (no sources), so we hit the step limit.
        assert_eq!(r.stop, StopReason::MaxSteps);
        let iv = r.timing("out").interval().unwrap();
        assert!((iv - 3.0).abs() < 0.05, "3-cycle interval {iv} ≉ 3");
        let vals = r.values("out");
        assert_eq!(vals[0], Value::Int(1));
        assert_eq!(vals[1], Value::Int(2));
    }

    #[test]
    fn four_cycle_two_tokens_full_rate() {
        // 4-cell loop with 2 initial tokens → interval 2 (paper §7's
        // even-length requirement for maximum pipelining).
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Bin(BinOp::Add), "a");
        g.set_lit(a, 1, Value::Int(1));
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        let c = g.add_node(Opcode::Bin(BinOp::Add), "c");
        g.set_lit(c, 1, Value::Int(1));
        g.connect_init(b, c, 0, Value::Int(100));
        let d = g.cell(Opcode::Id, "d", &[c.into()]);
        g.connect_init(d, a, 0, Value::Int(0));
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[d.into()]);
        let r = Simulator::builder(&g).max_steps(2000).run().unwrap();
        let iv = r.timing("out").interval().unwrap();
        assert!((iv - 2.0).abs() < 0.05, "4-cycle/2-token interval {iv} ≉ 2");
    }

    #[test]
    fn tgate_discards_without_jamming() {
        // Select the middle of each 4-wave: <F T T F>.
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let ctl = g.add_node(Opcode::CtlGen(CtlStream::window(4, 1, 2)), "ctl");
        let gate = g.cell(Opcode::TGate, "g", &[ctl.into(), a.into()]);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[gate.into()]);
        let r = run_defaults(
            &g,
            ProgramInputs::new().bind("a", reals(&[0., 1., 2., 3., 4., 5., 6., 7.])),
        )
        .unwrap();
        assert_eq!(r.reals("out"), vec![1., 2., 5., 6.]);
        assert!(
            r.sources_exhausted,
            "discarded packets must not jam the source"
        );
    }

    #[test]
    fn merge_reassembles_order() {
        // Two sources merged under control <T F>: t0, f0, t1, f1, …
        let mut g = Graph::new();
        let t = g.add_node(Opcode::Source("t".into()), "t");
        let f = g.add_node(Opcode::Source("f".into()), "f");
        let ctl = g.add_node(
            Opcode::CtlGen(CtlStream::from_runs([(true, 1), (false, 1)])),
            "ctl",
        );
        let m = g.cell(Opcode::Merge, "m", &[ctl.into(), t.into(), f.into()]);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[m.into()]);
        let r = run_defaults(
            &g,
            ProgramInputs::new()
                .bind("t", reals(&[10., 11., 12.]))
                .bind("f", reals(&[20., 21., 22.])),
        )
        .unwrap();
        assert_eq!(r.reals("out"), vec![10., 20., 11., 21., 12., 22.]);
    }

    #[test]
    fn missing_input_reported() {
        let g = fig2();
        let err = run_defaults(&g, ProgramInputs::new().bind("a", reals(&[1.0]))).unwrap_err();
        assert_eq!(err, SimError::MissingInput("b".into()));
    }

    #[test]
    fn type_fault_reported() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let and = g.cell(Opcode::Bin(BinOp::And), "and", &[a.into(), true.into()]);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[and.into()]);
        let err = run_defaults(&g, ProgramInputs::new().bind("a", reals(&[1.0]))).unwrap_err();
        assert!(matches!(err, SimError::Eval { .. }));
    }

    #[test]
    fn non_bool_control_reported() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let b = g.add_node(Opcode::Source("b".into()), "b");
        let gate = g.cell(Opcode::TGate, "g", &[a.into(), b.into()]);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[gate.into()]);
        let err = run_defaults(
            &g,
            ProgramInputs::new()
                .bind("a", reals(&[1.0]))
                .bind("b", reals(&[2.0])),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::NonBoolControl { .. }));
    }

    #[test]
    fn pipeline_rate_independent_of_stage_count() {
        // Chains of 5 vs 50 identity cells: same steady-state interval (§3:
        // "the computation rate of a pipeline is not dependent on the
        // number of stages").
        let mut ivs = Vec::new();
        for stages in [5usize, 50] {
            let mut g = Graph::new();
            let a = g.add_node(Opcode::Source("a".into()), "a");
            let mut prev = a;
            for k in 0..stages {
                prev = g.cell(Opcode::Id, format!("s{k}"), &[prev.into()]);
            }
            let _ = g.cell(Opcode::Sink("out".into()), "out", &[prev.into()]);
            let data: Vec<f64> = (0..300).map(|i| i as f64).collect();
            let r = run_defaults(&g, ProgramInputs::new().bind("a", reals(&data))).unwrap();
            ivs.push(r.timing("out").interval().unwrap());
        }
        assert!((ivs[0] - ivs[1]).abs() < 0.02, "{ivs:?}");
        assert!((ivs[0] - 2.0).abs() < 0.05);
    }

    #[test]
    fn fifo_expansion_required_for_manual_stepping() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let f = g.cell(Opcode::Fifo(2), "f", &[a.into()]);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[f.into()]);
        let err = Simulator::builder(&g)
            .inputs(ProgramInputs::new().bind("a", reals(&[1.0])))
            .build();
        assert!(matches!(err, Err(SimError::UnexpandedFifo(_))));
        // … but the all-in-one run path expands them transparently.
        let r = Simulator::builder(&g)
            .inputs(ProgramInputs::new().bind("a", reals(&[1.0, 2.0])))
            .run()
            .unwrap();
        assert_eq!(r.reals("out"), vec![1.0, 2.0]);
    }
}
