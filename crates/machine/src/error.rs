//! Structured error taxonomy for the machine simulators.
//!
//! Every way a simulation can fail is a [`MachineError`] variant, so
//! callers (in particular `valpipe-core`'s oracle verifier) can report
//! *why* a compiled program diverged instead of aborting on a panic. The
//! taxonomy distinguishes:
//!
//! * **program faults** — the simulated program itself misbehaved
//!   ([`MachineError::Eval`], [`MachineError::NonBoolControl`]);
//! * **usage errors** — the caller handed the simulator something it
//!   cannot run ([`MachineError::MissingInput`],
//!   [`MachineError::UnexpandedFifo`], [`MachineError::InvalidConfig`],
//!   [`MachineError::DelayTableMismatch`]);
//! * **invariant violations** — the optional runtime checkers (see
//!   `SimConfig::check_invariants`) caught the simulator in an
//!   inconsistent state ([`MachineError::InvariantViolation`]).
//!
//! `panic!` remains only for true internal invariant violations on paths
//! where returning an error is impossible; every such message names the
//! cell and step.

use std::fmt;

/// Hard simulation fault.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// An instruction evaluated to a type error / division by zero.
    Eval {
        /// Faulting cell.
        node: usize,
        /// Cell label.
        label: String,
        /// Underlying error.
        message: String,
    },
    /// A control operand was not a boolean packet.
    NonBoolControl {
        /// Faulting cell.
        node: usize,
        /// Cell label.
        label: String,
    },
    /// A `Source` port has no bound input sequence.
    MissingInput(String),
    /// The program contains a symbolic FIFO (call `expand_fifos` first).
    UnexpandedFifo(usize),
    /// A simulator/machine configuration parameter is unusable (e.g. a
    /// closed-loop machine with a non-power-of-two PE count, or a
    /// placement table whose length does not match the graph).
    InvalidConfig(String),
    /// A supplied [`crate::sim::ArcDelays`] table does not cover every arc.
    DelayTableMismatch {
        /// Arcs in the graph.
        expected: usize,
        /// Entries in the delay table.
        got: usize,
    },
    /// A runtime invariant checker (token conservation, arc capacity,
    /// acknowledge accounting, gate discard accounting) found the machine
    /// in an inconsistent state.
    InvariantViolation {
        /// Instruction time at which the violation was detected.
        step: u64,
        /// What was violated, naming the cell/arc involved.
        detail: String,
    },
    /// Writing a periodic checkpoint (see `SimConfig::checkpoint_path`)
    /// failed; the run is aborted rather than continuing with a stale
    /// recovery point.
    CheckpointIo {
        /// Destination path of the failed write.
        path: String,
        /// Underlying I/O error.
        detail: String,
    },
}

/// Historical name for [`MachineError`]; the simulator began with a much
/// smaller error set under this name.
pub type SimError = MachineError;

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Eval {
                node,
                label,
                message,
            } => {
                write!(f, "cell {node} ({label}): {message}")
            }
            MachineError::NonBoolControl { node, label } => {
                write!(f, "cell {node} ({label}): non-boolean control packet")
            }
            MachineError::MissingInput(name) => write!(f, "no input bound for source '{name}'"),
            MachineError::UnexpandedFifo(node) => {
                write!(
                    f,
                    "cell {node}: symbolic FIFO not lowered (call expand_fifos)"
                )
            }
            MachineError::InvalidConfig(msg) => write!(f, "invalid machine configuration: {msg}"),
            MachineError::DelayTableMismatch { expected, got } => {
                write!(
                    f,
                    "arc delay table has {got} entries but the graph has {expected} arcs"
                )
            }
            MachineError::InvariantViolation { step, detail } => {
                write!(f, "machine invariant violated at step {step}: {detail}")
            }
            MachineError::CheckpointIo { path, detail } => {
                write!(f, "checkpoint write to '{path}' failed: {detail}")
            }
        }
    }
}

impl std::error::Error for MachineError {}
