//! Topology-aware cell sharding for the epoch-batched parallel kernel.
//!
//! The parallel kernel's original design striped cells across workers by
//! id, which puts both endpoints of most arcs in different shards — every
//! step's firing traffic crosses shard boundaries, so workers can never
//! run ahead of each other. This module partitions cells so that most
//! arcs stay shard-local, which is what makes long epoch horizons
//! provable (see DESIGN.md §16):
//!
//! * **Connected components first.** A wide phased workload (the paper's
//!   array pipelines replicated per array row) decomposes into many
//!   independent chains; bin-packing whole components onto shards yields
//!   *zero* cross-shard arcs and an unbounded horizon.
//! * **BFS-level banding otherwise.** A single connected pipeline is cut
//!   into contiguous bands of pipeline stages (breadth-first levels from
//!   the source cells), so only the band-boundary arcs cross shards —
//!   the min-cross-arc heuristic on the compiled graph.
//!
//! The map also precomputes, per cell, the undirected graph distance to
//! the nearest shard boundary. Influence propagates at most one hop per
//! instruction time (every packet takes ≥ 1 instruction time), so a
//! pending wakeup at time `t` on a cell `d` hops from the boundary
//! cannot touch another shard before `t + d` — the light-cone bound the
//! epoch engine turns into a proven horizon.

use valpipe_ir::graph::{Graph, PortBinding};

/// How the parallel kernel assigns instruction cells to worker shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Partition by graph topology: whole connected components when the
    /// graph has several, contiguous BFS-level (pipeline-stage) bands
    /// otherwise. Minimizes cross-shard arcs, maximizing the provable
    /// epoch horizon.
    #[default]
    Topology,
    /// Contiguous cell-id bands — the pre-epoch striping, kept as a
    /// baseline for the bench sweep and as a fallback policy knob.
    Striped,
}

impl ShardPolicy {
    /// Stable name used in bench records and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardPolicy::Topology => "topology",
            ShardPolicy::Striped => "striped",
        }
    }

    /// Parse a CLI spelling of the policy.
    pub fn parse(s: &str) -> Option<ShardPolicy> {
        match s {
            "topology" => Some(ShardPolicy::Topology),
            "striped" => Some(ShardPolicy::Striped),
            _ => None,
        }
    }
}

/// What the epoch engine accomplished over a run — the per-epoch /
/// per-shard counters surfaced through `Session::drive` (mirroring
/// [`crate::fastforward::FastForwardStats`]) and the bench JSON records.
/// All zeros when the run never engaged epochs (sequential kernels,
/// fault plans, throttles, watchdogs, or a non-viable shard map).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochStats {
    /// Multi-step epochs executed (each one pool dispatch).
    pub epochs: u64,
    /// Instruction times advanced inside epochs (Σ per-epoch horizons).
    pub batched_steps: u64,
    /// Times the provable horizon collapsed below 2 and the step fell
    /// back to the per-step phased path.
    pub horizon_fallbacks: u64,
    /// Pending cross-shard wakeups that bounded an epoch horizon below
    /// the configured cap.
    pub cross_wakes_deferred: u64,
    /// Worker shards in the map (0 until the engine is built).
    pub shards: u32,
    /// Arcs whose endpoints live in different shards.
    pub cross_arcs: u64,
    /// Cells per shard, in shard order.
    pub shard_cells: Vec<u32>,
}

impl EpochStats {
    /// Mean steps per executed epoch (0 when no epoch ran).
    pub fn mean_horizon(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.batched_steps as f64 / self.epochs as f64
        }
    }
}

/// A cell→shard assignment plus the derived geometry the epoch engine's
/// horizon proof needs. Built once per simulation (the graph never
/// changes mid-run) and never snapshotted — like the wakeup wheels, it
/// is an optimization artifact, not canonical machine state.
#[derive(Debug)]
pub(crate) struct ShardMap {
    /// Shard of each cell.
    pub(crate) cell_shard: Vec<u32>,
    /// Shard that owns each arc's state during an epoch (= the shard of
    /// its source cell; for shard-local arcs both endpoints agree).
    pub(crate) arc_shard: Vec<u32>,
    /// Whether each arc's endpoints live in different shards.
    pub(crate) arc_cross: Vec<bool>,
    /// Undirected hops from each cell to the nearest boundary cell
    /// (an endpoint of a cross-shard arc); `u64::MAX` when no boundary
    /// is reachable — such a cell can never influence another shard.
    pub(crate) dist: Vec<u64>,
    /// Number of cross-shard arcs.
    pub(crate) cross_arcs: u64,
    /// Cells per shard.
    pub(crate) shard_cells: Vec<u32>,
    /// Whether epoch batching may use this map at all: at least two
    /// populated shards, and no sink/source slot shared across shards
    /// (slot streams must stay single-writer within an epoch).
    pub(crate) viable: bool,
}

/// Disjoint-set find with path halving.
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

impl ShardMap {
    pub(crate) fn build(g: &Graph, policy: ShardPolicy, shards: usize) -> ShardMap {
        let n = g.nodes.len();
        let cell_shard = match policy {
            ShardPolicy::Striped => striped_assignment(n, shards),
            ShardPolicy::Topology => topology_assignment(g, shards),
        };
        Self::finish(g, shards, cell_shard)
    }

    fn finish(g: &Graph, shards: usize, cell_shard: Vec<u32>) -> ShardMap {
        let n = g.nodes.len();
        let mut arc_shard = Vec::with_capacity(g.arcs.len());
        let mut arc_cross = Vec::with_capacity(g.arcs.len());
        let mut cross_arcs = 0u64;
        for e in &g.arcs {
            let (s, d) = (cell_shard[e.src.idx()], cell_shard[e.dst.idx()]);
            arc_shard.push(s);
            arc_cross.push(s != d);
            cross_arcs += u64::from(s != d);
        }
        // Boundary cells = endpoints of cross-shard arcs; `dist` is a
        // multi-source undirected BFS from all of them.
        let mut dist = vec![u64::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for (i, e) in g.arcs.iter().enumerate() {
            if arc_cross[i] {
                for c in [e.src.idx(), e.dst.idx()] {
                    if dist[c] != 0 {
                        dist[c] = 0;
                        queue.push_back(c);
                    }
                }
            }
        }
        let adj = undirected_adjacency(g);
        while let Some(c) = queue.pop_front() {
            for &m in &adj[c] {
                if dist[m] == u64::MAX {
                    dist[m] = dist[c] + 1;
                    queue.push_back(m);
                }
            }
        }
        let mut shard_cells = vec![0u32; shards];
        for &s in &cell_shard {
            shard_cells[s as usize] += 1;
        }
        let populated = shard_cells.iter().filter(|&&c| c > 0).count();
        ShardMap {
            viable: populated >= 2 && slots_unsplit(g, &cell_shard),
            cell_shard,
            arc_shard,
            arc_cross,
            dist,
            cross_arcs,
            shard_cells,
        }
    }
}

/// Contiguous id bands (the pre-epoch striping).
fn striped_assignment(n: usize, shards: usize) -> Vec<u32> {
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(n);
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        out.extend(std::iter::repeat_n(s as u32, size));
    }
    out
}

/// Undirected adjacency lists over the wired arcs.
fn undirected_adjacency(g: &Graph) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); g.nodes.len()];
    for e in &g.arcs {
        adj[e.src.idx()].push(e.dst.idx());
        adj[e.dst.idx()].push(e.src.idx());
    }
    adj
}

/// Components-first, BFS-levels-second partition (see module docs).
fn topology_assignment(g: &Graph, shards: usize) -> Vec<u32> {
    let n = g.nodes.len();
    // Union endpoints of every arc.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    for e in &g.arcs {
        let (a, b) = (
            find(&mut parent, e.src.idx() as u32),
            find(&mut parent, e.dst.idx() as u32),
        );
        if a != b {
            parent[a.max(b) as usize] = a.min(b);
        }
    }
    let mut comp_of = vec![0u32; n];
    let mut comps: Vec<(u32, u32)> = Vec::new(); // (representative, size)
    for i in 0..n as u32 {
        let r = find(&mut parent, i);
        comp_of[i as usize] = r;
        match comps.iter_mut().find(|(rep, _)| *rep == r) {
            Some((_, size)) => *size += 1,
            None => comps.push((r, 1)),
        }
    }
    if comps.len() >= 2 {
        // Bin-pack whole components, largest first, onto the lightest
        // shard; ties break on representative id then shard index, so
        // the assignment is deterministic.
        comps.sort_by_key(|&(rep, size)| (std::cmp::Reverse(size), rep));
        let mut load = vec![0usize; shards];
        let mut shard_of_comp = std::collections::HashMap::new();
        for (rep, size) in comps {
            let s = (0..shards).min_by_key(|&s| (load[s], s)).unwrap();
            load[s] += size as usize;
            shard_of_comp.insert(rep, s as u32);
        }
        return comp_of.iter().map(|r| shard_of_comp[r]).collect();
    }
    // Single component: order cells by BFS level from the root cells
    // (no wired inputs), then cut into contiguous equal-count bands —
    // only the band-boundary arcs cross shards. Cells unreachable from
    // any root (feedback-only loops) sort after the reachable ones.
    let mut level = vec![u64::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for (i, node) in g.nodes.iter().enumerate() {
        let has_wired_input = node
            .inputs
            .iter()
            .any(|b| matches!(b, PortBinding::Wired(_)));
        if !has_wired_input {
            level[i] = 0;
            queue.push_back(i);
        }
    }
    // Forward BFS over directed arcs approximates pipeline stages.
    let mut out_adj = vec![Vec::new(); n];
    for e in &g.arcs {
        out_adj[e.src.idx()].push(e.dst.idx());
    }
    while let Some(c) = queue.pop_front() {
        for &m in &out_adj[c] {
            if level[m] == u64::MAX {
                level[m] = level[c] + 1;
                queue.push_back(m);
            }
        }
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| (level[i as usize], i));
    let band = striped_assignment(n, shards);
    let mut out = vec![0u32; n];
    for (pos, &cell) in order.iter().enumerate() {
        out[cell as usize] = band[pos];
    }
    out
}

/// Whether every sink/source port slot is written by cells of a single
/// shard. Cells sharing a port name append to one merged stream; the
/// epoch workers mutate those streams without coordination, so a slot
/// split across shards disqualifies the map.
fn slots_unsplit(g: &Graph, cell_shard: &[u32]) -> bool {
    use std::collections::HashMap;
    let mut owner: HashMap<&str, u32> = HashMap::new();
    for (i, node) in g.nodes.iter().enumerate() {
        let name = match &node.op {
            valpipe_ir::opcode::Opcode::Source(p) | valpipe_ir::opcode::Opcode::Sink(p) => {
                p.as_str()
            }
            _ => continue,
        };
        match owner.entry(name) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != cell_shard[i] {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(cell_shard[i]);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use valpipe_ir::opcode::Opcode;
    use valpipe_ir::value::BinOp;

    /// `chains` disjoint 3-cell pipelines.
    fn multi_chain(chains: usize) -> Graph {
        let mut g = Graph::new();
        for c in 0..chains {
            let a = g.add_node(Opcode::Source(format!("a{c}")), format!("a{c}"));
            let x = g.cell(Opcode::Id, format!("x{c}"), &[a.into()]);
            let _ = g.cell(Opcode::Sink(format!("y{c}")), format!("y{c}"), &[x.into()]);
        }
        g
    }

    #[test]
    fn components_pack_with_zero_cross_arcs() {
        let g = multi_chain(8);
        let m = ShardMap::build(&g, ShardPolicy::Topology, 4);
        assert!(m.viable);
        assert_eq!(m.cross_arcs, 0);
        assert!(m.dist.iter().all(|&d| d == u64::MAX));
        assert_eq!(m.shard_cells.iter().sum::<u32>() as usize, g.nodes.len());
        assert_eq!(m.shard_cells, vec![6, 6, 6, 6]);
        // Every chain stays within one shard.
        for e in &g.arcs {
            assert_eq!(m.cell_shard[e.src.idx()], m.cell_shard[e.dst.idx()]);
        }
    }

    #[test]
    fn single_pipeline_bands_by_level() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let mut prev = a;
        for k in 0..10 {
            prev = g.cell(Opcode::Id, format!("s{k}"), &[prev.into()]);
        }
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[prev.into()]);
        let m = ShardMap::build(&g, ShardPolicy::Topology, 3);
        assert!(m.viable);
        // A chain cut into 3 bands crosses exactly twice.
        assert_eq!(m.cross_arcs, 2);
        // Distances reflect hops to the nearest cut.
        assert_eq!(m.dist.iter().filter(|&&d| d == 0).count(), 4);
    }

    #[test]
    fn shared_sink_slot_across_shards_disqualifies() {
        let mut g = Graph::new();
        for c in 0..4 {
            let a = g.add_node(Opcode::Source(format!("a{c}")), format!("a{c}"));
            let x = g.cell(
                Opcode::Bin(BinOp::Add),
                format!("x{c}"),
                &[a.into(), a.into()],
            );
            // Every chain reports to the SAME sink port name.
            let _ = g.cell(Opcode::Sink("y".into()), format!("y{c}"), &[x.into()]);
        }
        let m = ShardMap::build(&g, ShardPolicy::Topology, 2);
        assert!(!m.viable, "split sink slot must disqualify the map");
    }

    #[test]
    fn striped_matches_contiguous_bands() {
        let g = multi_chain(4);
        let m = ShardMap::build(&g, ShardPolicy::Striped, 3);
        assert_eq!(m.cell_shard[0], 0);
        assert_eq!(*m.cell_shard.last().unwrap(), 2);
        let mut sorted = m.cell_shard.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, m.cell_shard, "striped bands are contiguous");
    }
}
