//! Fast-forward equivalence suite: `ExecMode::FastForward` must be an
//! unobservable optimization. Every test drives the same program twice —
//! exactly and fast-forwarded — and requires bit-identical outcomes,
//! plus the engine's own accounting (steps actually skipped, fallbacks
//! taken when the configuration makes windows inexact).

use valpipe_ir::opcode::Opcode;
use valpipe_ir::value::{BinOp, Value};
use valpipe_ir::{CtlStream, Graph};
use valpipe_machine::{
    FaultPlan, Kernel, ProgramInputs, ResourceModel, RunOutcome, RunResult, RunSpec, Session,
    SimConfig, Simulator,
};

fn reals(v: &[f64]) -> Vec<Value> {
    v.iter().map(|&x| Value::Real(x)).collect()
}

/// A periodic input: `waves` repetitions of a fixed 4-element wave.
fn wave_inputs(waves: usize) -> ProgramInputs {
    let wave_a = [1.5, 2.25, 0.75, 3.0];
    let wave_b = [2.0, 0.5, 1.25, 4.0];
    let a: Vec<f64> = (0..waves * 4).map(|i| wave_a[i % 4]).collect();
    let b: Vec<f64> = (0..waves * 4).map(|i| wave_b[i % 4]).collect();
    ProgramInputs::new()
        .bind("a", reals(&a))
        .bind("b", reals(&b))
}

/// Fig. 2's expression pipeline: the paper's maximally pipelined
/// steady-state workload (rate 1/2 once full).
fn pipeline_graph() -> Graph {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let y = g.cell(Opcode::Bin(BinOp::Mul), "mul", &[a.into(), b.into()]);
    let p = g.cell(Opcode::Bin(BinOp::Add), "add2", &[y.into(), 2.0.into()]);
    let q = g.cell(Opcode::Bin(BinOp::Sub), "sub3", &[y.into(), 3.0.into()]);
    let r = g.cell(Opcode::Bin(BinOp::Mul), "join", &[p.into(), q.into()]);
    let _ = g.cell(Opcode::Sink("out".into()), "out", &[r.into()]);
    g
}

/// The pipeline plus a gated tap driven by a periodic control stream —
/// exercises the generator shift-invariance checks.
fn gated_graph() -> Graph {
    let mut g = pipeline_graph();
    let y = g
        .node_ids()
        .find(|n| g.nodes[n.idx()].label == "mul")
        .unwrap();
    let ctl = g.add_node(Opcode::CtlGen(CtlStream::window(4, 1, 2)), "ctl");
    let gate = g.cell(Opcode::TGate, "gate", &[ctl.into(), y.into()]);
    let _ = g.cell(Opcode::Sink("tap".into()), "tap", &[gate.into()]);
    g
}

fn run_exact(g: &Graph, inputs: &ProgramInputs, cfg: &SimConfig, kernel: Kernel) -> RunResult {
    Simulator::builder(g)
        .inputs(inputs.clone())
        .config(cfg.clone().kernel(kernel))
        .run()
        .unwrap()
}

fn drive_ff(
    g: &Graph,
    inputs: &ProgramInputs,
    cfg: &SimConfig,
    kernel: Kernel,
    verify: u64,
) -> (RunResult, valpipe_machine::FastForwardStats) {
    let driven = Simulator::builder(g)
        .inputs(inputs.clone())
        .config(cfg.clone().kernel(kernel))
        .build()
        .unwrap()
        .drive(RunSpec::new().fast_forward(verify))
        .unwrap();
    let stats = driven.fast_forward.clone();
    (driven.result(), stats)
}

#[test]
fn fastforward_is_bit_identical_on_all_kernels() {
    let g = pipeline_graph();
    let inputs = wave_inputs(500);
    let cfg = SimConfig::new();
    for kernel in [Kernel::Scan, Kernel::EventDriven, Kernel::ParallelEvent(2)] {
        let exact = run_exact(&g, &inputs, &cfg, kernel);
        let (ff, stats) = drive_ff(&g, &inputs, &cfg, kernel, 0);
        assert_eq!(ff, exact, "fast-forward diverged on {kernel:?}");
        assert!(
            stats.skipped_steps > 0,
            "expected engagement on {kernel:?}, stats: {stats:?}"
        );
        assert!(stats.period.is_some());
    }
}

#[test]
fn fastforward_handles_control_generators() {
    let g = gated_graph();
    let inputs = wave_inputs(400);
    let cfg = SimConfig::new();
    for kernel in [Kernel::Scan, Kernel::EventDriven] {
        let exact = run_exact(&g, &inputs, &cfg, kernel);
        let (ff, stats) = drive_ff(&g, &inputs, &cfg, kernel, 0);
        assert_eq!(ff, exact, "gated fast-forward diverged on {kernel:?}");
        assert!(stats.skipped_steps > 0, "stats: {stats:?}");
    }
}

#[test]
fn verified_windows_replay_identically() {
    let g = pipeline_graph();
    let inputs = wave_inputs(300);
    let cfg = SimConfig::new();
    let exact = run_exact(&g, &inputs, &cfg, Kernel::EventDriven);
    let (ff, stats) = drive_ff(&g, &inputs, &cfg, Kernel::EventDriven, 2);
    assert_eq!(ff, exact);
    assert!(stats.verified_windows > 0, "stats: {stats:?}");
    assert_eq!(stats.fallbacks, 0, "verification must not miscompare");
}

#[test]
fn post_skip_snapshot_matches_exact_snapshot() {
    let g = pipeline_graph();
    let inputs = wave_inputs(400);
    let cfg = SimConfig::new();
    // Pause both runs at the same mid-steady-state instruction time;
    // the serialized machine states must be byte-identical.
    for pause in [801u64, 1502, 2203] {
        let spec_exact = RunSpec::new().pause_at(pause);
        let spec_ff = RunSpec::new().fast_forward(0).pause_at(pause);
        let build = || {
            Simulator::builder(&g)
                .inputs(inputs.clone())
                .config(cfg.clone())
                .build()
                .unwrap()
        };
        let exact = match build().drive(spec_exact).unwrap().outcome {
            RunOutcome::Paused(s) => s,
            RunOutcome::Done(_) => panic!("exact run finished before t={pause}"),
        };
        let ff = match build().drive(spec_ff).unwrap().outcome {
            RunOutcome::Paused(s) => s,
            RunOutcome::Done(_) => panic!("ff run finished before t={pause}"),
        };
        assert_eq!(exact.now(), pause);
        assert_eq!(ff.now(), pause);
        assert_eq!(
            exact.checkpoint().as_bytes(),
            ff.checkpoint().as_bytes(),
            "snapshot diverged at pause t={pause}"
        );
        // And both resume to the same completed run.
        assert_eq!(
            exact.drive(RunSpec::new()).unwrap().result(),
            ff.drive(RunSpec::new().fast_forward(1)).unwrap().result(),
            "resumed runs diverged from pause t={pause}"
        );
    }
}

#[test]
fn stop_outputs_target_is_reached_exactly() {
    let g = pipeline_graph();
    let inputs = wave_inputs(400);
    let cfg = SimConfig::new().stop_outputs(vec![("out".to_string(), 611)]);
    let exact = run_exact(&g, &inputs, &cfg, Kernel::EventDriven);
    let (ff, stats) = drive_ff(&g, &inputs, &cfg, Kernel::EventDriven, 1);
    assert_eq!(ff, exact);
    assert_eq!(ff.outputs["out"].len(), exact.outputs["out"].len());
    assert!(stats.skipped_steps > 0, "stats: {stats:?}");
}

#[test]
fn faults_and_throttles_force_exact_fallback() {
    let g = pipeline_graph();
    let inputs = wave_inputs(50);
    let faulted = SimConfig::new().fault_plan(FaultPlan {
        seed: 7,
        delay_result: 0.05,
        delay_result_max: 2,
        ..Default::default()
    });
    let exact = run_exact(&g, &inputs, &faulted, Kernel::EventDriven);
    let (ff, stats) = drive_ff(&g, &inputs, &faulted, Kernel::EventDriven, 0);
    assert_eq!(ff, exact);
    assert_eq!(stats.skipped_steps, 0);
    assert_eq!(stats.fallbacks, 1, "ineligible config must be recorded");

    let throttled = SimConfig::new().resources(ResourceModel {
        unit_of: vec![0; g.nodes.len()],
        capacity: vec![2],
    });
    let exact = run_exact(&g, &inputs, &throttled, Kernel::EventDriven);
    let (ff, stats) = drive_ff(&g, &inputs, &throttled, Kernel::EventDriven, 0);
    assert_eq!(ff, exact);
    assert_eq!(stats.skipped_steps, 0);
    assert_eq!(stats.fallbacks, 1);
}

#[test]
fn active_checkpoint_cadence_forces_exact_fallback() {
    let g = pipeline_graph();
    let inputs = wave_inputs(60);
    let cfg = SimConfig::new().checkpoint_every(16);
    let mut snaps_exact = Vec::new();
    let exact = Simulator::builder(&g)
        .inputs(inputs.clone())
        .config(cfg.clone())
        .build()
        .unwrap()
        .drive_with(RunSpec::new(), |s| snaps_exact.push(s.step()))
        .unwrap()
        .result();
    let mut snaps_ff = Vec::new();
    let driven = Simulator::builder(&g)
        .inputs(inputs.clone())
        .config(cfg.clone())
        .build()
        .unwrap()
        .drive_with(RunSpec::new().fast_forward(0), |s| snaps_ff.push(s.step()))
        .unwrap();
    assert_eq!(driven.fast_forward.skipped_steps, 0);
    assert_eq!(driven.fast_forward.fallbacks, 1);
    assert_eq!(driven.result(), exact);
    assert_eq!(snaps_ff, snaps_exact, "every periodic checkpoint observed");
}

#[test]
fn watchdogged_runs_still_fast_forward() {
    let g = pipeline_graph();
    let inputs = wave_inputs(300);
    let cfg = SimConfig::new().watchdog(valpipe_machine::WatchdogConfig {
        step_budget: 1_000_000,
        progress_window: 10_000,
    });
    let exact = run_exact(&g, &inputs, &cfg, Kernel::EventDriven);
    let (ff, stats) = drive_ff(&g, &inputs, &cfg, Kernel::EventDriven, 1);
    assert_eq!(ff, exact);
    assert!(stats.skipped_steps > 0, "stats: {stats:?}");
}

#[test]
fn skipped_windows_dominate_long_steady_state() {
    // The acceptance-criteria shape in miniature: the simulated
    // (non-skipped) step count must be a small fraction of the run.
    let g = pipeline_graph();
    let inputs = wave_inputs(25_000);
    let cfg = SimConfig::new().max_steps(1_000_000);
    let exact = run_exact(&g, &inputs, &cfg, Kernel::EventDriven);
    let (ff, stats) = drive_ff(&g, &inputs, &cfg, Kernel::EventDriven, 1);
    assert_eq!(ff, exact);
    let executed = ff.steps - stats.skipped_steps;
    assert!(
        executed * 100 <= ff.steps,
        "simulated {executed} of {} steps (skipped {})",
        ff.steps,
        stats.skipped_steps
    );
}

#[test]
#[allow(deprecated)]
fn deprecated_wrappers_still_run() {
    let g = pipeline_graph();
    let inputs = wave_inputs(20);
    let cfg = SimConfig::new();
    let reference = run_exact(&g, &inputs, &cfg, Kernel::EventDriven);
    let build = || {
        Simulator::builder(&g)
            .inputs(inputs.clone())
            .config(cfg.clone())
            .build()
            .unwrap()
    };
    assert_eq!(build().run().unwrap(), reference);
    match build().run_until(u64::MAX).unwrap() {
        RunOutcome::Done(r) => assert_eq!(*r, reference),
        RunOutcome::Paused(_) => panic!("run_until must complete"),
    }
    let session = Session::restore(&g, &build().checkpoint()).unwrap();
    assert_eq!(session.run_with_checkpoints(|_| ()).unwrap(), reference);
}
