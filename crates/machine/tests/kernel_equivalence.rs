//! Kernel equivalence: the event-driven and parallel kernels must
//! reproduce the scan kernel's `RunResult` *bit for bit* — same step
//! count, same stop reason, same output packets at the same instruction
//! times, same per-cell fire counts — on every regime the simulator
//! supports: clean pipelines, feedback loops, gates and merges, fault
//! plans (drops, duplicates, delays, freezes, link faults), resource
//! throttling, watchdog stalls, arc capacities, link latencies, and
//! early stop conditions. `ParallelEvent` is exercised at 1, 2, and 4
//! workers; wide-graph tests push enough cells per tick to engage the
//! phased multi-worker path rather than its small-tick sequential
//! fallback.
//!
//! `RunResult` derives `PartialEq`, so each test is a single whole-run
//! comparison — nothing is projected out, nothing can drift silently.

use valpipe_ir::opcode::Opcode;
use valpipe_ir::value::{BinOp, Value};
use valpipe_ir::{CtlStream, Graph};
use valpipe_machine::{
    CellFreeze, FaultPlan, Kernel, LinkFault, ProgramInputs, RunResult, SimConfig, Simulator,
    StopReason, WatchdogConfig,
};

fn reals(v: &[f64]) -> Vec<Value> {
    v.iter().map(|&x| Value::Real(x)).collect()
}

fn ramp(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64).collect()
}

/// Every kernel the simulator ships, in one sweep.
const ALL_KERNELS: [Kernel; 5] = [
    Kernel::Scan,
    Kernel::EventDriven,
    Kernel::ParallelEvent(1),
    Kernel::ParallelEvent(2),
    Kernel::ParallelEvent(4),
];

/// Run the same program under every kernel and assert whole-run equality.
fn assert_equivalent(g: &Graph, inputs: &ProgramInputs, cfg: SimConfig) -> RunResult {
    let run = |kernel: Kernel| {
        Simulator::builder(g)
            .inputs(inputs.clone())
            .config(cfg.clone().kernel(kernel))
            .run()
            .unwrap()
    };
    let scan = run(Kernel::Scan);
    for kernel in &ALL_KERNELS[1..] {
        let other = run(*kernel);
        assert_eq!(scan, other, "{kernel:?} must agree with Scan bit-for-bit");
    }
    scan
}

/// Fig. 2 regime: an acknowledged identity chain.
fn chain(stages: usize) -> Graph {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let mut prev = a;
    for k in 0..stages {
        prev = g.cell(Opcode::Id, format!("s{k}"), &[prev.into()]);
    }
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[prev.into()]);
    g
}

/// Todd's counterexample regime: a source feeding a 3-cycle feedback loop.
fn three_cycle() -> Graph {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let j = g.add_node(Opcode::Bin(BinOp::Add), "join");
    g.connect(a, j, 0);
    let l1 = g.cell(Opcode::Id, "l1", &[j.into()]);
    let l2 = g.cell(Opcode::Id, "l2", &[l1.into()]);
    g.connect_init(l2, j, 1, Value::Real(0.0));
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[l2.into()]);
    g
}

/// A conditional: gate pair, distinct arms, control-paced merge.
fn conditional() -> Graph {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let ctl = g.add_node(
        Opcode::CtlGen(CtlStream::from_runs([(true, 2), (false, 1)])),
        "ctl",
    );
    let tg = g.cell(Opcode::TGate, "tg", &[ctl.into(), a.into()]);
    let fg = g.cell(Opcode::FGate, "fg", &[ctl.into(), a.into()]);
    let t_arm = g.cell(Opcode::Bin(BinOp::Add), "t_arm", &[tg.into(), 100.0.into()]);
    let f_arm = g.cell(
        Opcode::Bin(BinOp::Mul),
        "f_arm",
        &[fg.into(), (-1.0).into()],
    );
    let m = g.add_node(Opcode::Merge, "m");
    g.connect(ctl, m, 0);
    g.connect(t_arm, m, 1);
    g.connect(f_arm, m, 2);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[m.into()]);
    g
}

#[test]
fn clean_chain_and_loop_and_conditional() {
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(64)));
    let r = assert_equivalent(&chain(8), &inputs, SimConfig::new());
    assert!(r.sources_exhausted);
    assert!((r.timing("y").interval().unwrap() - 2.0).abs() < 1e-9);

    let r = assert_equivalent(&three_cycle(), &inputs, SimConfig::new());
    assert!((r.timing("y").interval().unwrap() - 3.0).abs() < 1e-9);

    let r = assert_equivalent(&conditional(), &inputs, SimConfig::new());
    assert!(r.sources_exhausted);
    assert_eq!(r.values("y").len(), 64);
}

#[test]
fn fire_time_recording_matches() {
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(32)));
    let r = assert_equivalent(&chain(5), &inputs, SimConfig::new().record_fire_times(true));
    assert!(r.fire_times.is_some());
}

#[test]
fn capacities_and_link_latencies_match() {
    let g = chain(4);
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(50)));
    for cap in [1usize, 2, 4] {
        for (fwd, ack) in [(1u64, 1u64), (2, 2), (3, 1)] {
            let cfg = SimConfig::new()
                .arc_capacity(cap)
                .delays(valpipe_machine::ArcDelays {
                    forward: vec![fwd; g.arc_count()],
                    ack: vec![ack; g.arc_count()],
                });
            let r = assert_equivalent(&g, &inputs, cfg);
            assert!(r.sources_exhausted, "cap {cap} fwd {fwd} ack {ack}");
        }
    }
}

#[test]
fn resource_throttling_matches() {
    // One shared unit with budget 1: only one cell may initiate per
    // instruction time, so the scan order (= node index order) is the
    // arbitration order. The event kernel must arbitrate identically.
    let g = conditional();
    let n = g.node_count();
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(45)));
    for budget in [1u32, 2, 3] {
        let cfg = SimConfig::new().resources(valpipe_machine::ResourceModel {
            unit_of: vec![0; n],
            capacity: vec![budget],
        });
        let r = assert_equivalent(&g, &inputs, cfg);
        assert!(r.sources_exhausted, "budget {budget}");
    }
}

#[test]
fn probabilistic_fault_plans_match() {
    // Faults are seeded per (arc, step), so a fate decided at the same
    // instruction time lands identically under both kernels.
    let g = conditional();
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(40)));
    for seed in [1u64, 7, 23, 42] {
        let plan = FaultPlan {
            seed,
            delay_result: 0.3,
            delay_result_max: 5,
            delay_ack: 0.2,
            delay_ack_max: 3,
            dup_result: 0.05,
            ..Default::default()
        };
        let r = assert_equivalent(&g, &inputs, SimConfig::new().fault_plan(plan));
        assert!(r.sources_exhausted, "seed {seed}");
    }
}

#[test]
fn lossy_fault_plans_and_deadlocks_match() {
    // Dropped results/acks wedge the pipe; the deadlock step and the
    // stall report must agree exactly.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let add = g.cell(Opcode::Bin(BinOp::Add), "join", &[a.into(), b.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
    let inputs = ProgramInputs::new()
        .bind("a", reals(&ramp(40)))
        .bind("b", reals(&ramp(40)));
    for (drop_result, drop_ack) in [(0.0, 0.3), (0.2, 0.0), (0.1, 0.1)] {
        let plan = FaultPlan {
            seed: 11,
            drop_result,
            drop_ack,
            ..Default::default()
        };
        let cfg = SimConfig::new().fault_plan(plan).check_invariants(true);
        let r = assert_equivalent(&g, &inputs, cfg);
        assert!(!r.sources_exhausted);
        assert!(r.stall_report.is_some());
    }
}

#[test]
fn cell_freezes_and_link_faults_match() {
    let g = chain(6);
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(24)));
    // Transient freeze: cell 3 is out for steps 10..60, then recovers.
    let plan = FaultPlan {
        freezes: vec![CellFreeze {
            node: 3,
            from: 10,
            until: 60,
        }],
        ..Default::default()
    };
    let r = assert_equivalent(&g, &inputs, SimConfig::new().fault_plan(plan));
    assert!(
        r.sources_exhausted,
        "a transient freeze must drain eventually"
    );

    // Overlapping freezes on two cells.
    let plan = FaultPlan {
        freezes: vec![
            CellFreeze {
                node: 2,
                from: 5,
                until: 40,
            },
            CellFreeze {
                node: 3,
                from: 20,
                until: 70,
            },
        ],
        ..Default::default()
    };
    assert_equivalent(&g, &inputs, SimConfig::new().fault_plan(plan));

    // A link outage on the first chain arc.
    let plan = FaultPlan {
        link_faults: vec![LinkFault {
            stage: 1,
            port: 0,
            from: 8,
            until: 30,
        }],
        ..Default::default()
    };
    assert_equivalent(&g, &inputs, SimConfig::new().fault_plan(plan));
}

#[test]
fn permanent_freeze_watchdog_stall_matches() {
    // A cell frozen forever wedges the run; the watchdog fires at the
    // same step with the same diagnosis under both kernels.
    let g = chain(4);
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(8)));
    let cfg = SimConfig::new()
        .fault_plan(FaultPlan {
            freezes: vec![CellFreeze {
                node: 2,
                from: 0,
                until: 1 << 40,
            }],
            ..Default::default()
        })
        .watchdog(WatchdogConfig {
            step_budget: 3_000,
            ..Default::default()
        })
        .check_invariants(true);
    let r = assert_equivalent(&g, &inputs, cfg);
    assert_eq!(r.stop, StopReason::Stalled);
}

#[test]
fn livelock_and_budget_exhaustion_match() {
    // Livelock: a closed spinning loop fires forever without progress.
    let mut g = Graph::new();
    let n1 = g.add_node(Opcode::Id, "spin1");
    let n2 = g.add_node(Opcode::Id, "spin2");
    g.connect(n1, n2, 0);
    g.connect_init(n2, n1, 0, Value::Real(1.0));
    let cfg = SimConfig::new().watchdog(WatchdogConfig {
        step_budget: 50_000,
        progress_window: 64,
    });
    let r = assert_equivalent(&g, &ProgramInputs::new(), cfg);
    assert_eq!(r.stop, StopReason::Stalled);

    // Budget exhaustion: a healthy pipe cut off mid-stream.
    let g = chain(2);
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(200)));
    let cfg = SimConfig::new().watchdog(WatchdogConfig {
        step_budget: 40,
        ..Default::default()
    });
    let r = assert_equivalent(&g, &inputs, cfg);
    assert_eq!(r.steps, 40);
}

#[test]
fn stop_outputs_and_max_steps_match() {
    // Early stop on output count.
    let g = three_cycle();
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(100)));
    let cfg = SimConfig::new().stop_outputs(vec![("y".into(), 20)]);
    let r = assert_equivalent(&g, &inputs, cfg);
    assert_eq!(r.stop, StopReason::OutputsReached);
    assert!(r.values("y").len() >= 20);

    // Hard step cap mid-flight.
    let r = assert_equivalent(&g, &inputs, SimConfig::new().max_steps(37));
    assert_eq!(r.stop, StopReason::MaxSteps);
    assert_eq!(r.steps, 37);
}

/// A wide program — `chains` independent pipelines side by side — so a
/// steady-state tick has hundreds of cells due and the parallel kernel
/// takes its phased multi-worker path instead of the small-tick
/// sequential fallback.
fn wide(chains: usize, stages: usize) -> (Graph, ProgramInputs) {
    let mut g = Graph::new();
    let mut inputs = ProgramInputs::new();
    for c in 0..chains {
        let name = format!("a{c}");
        let a = g.add_node(Opcode::Source(name.clone()), &name);
        let mut prev = a;
        for k in 0..stages {
            prev = if (c + k) % 2 == 0 {
                g.cell(Opcode::Id, format!("s{c}_{k}"), &[prev.into()])
            } else {
                g.cell(
                    Opcode::Bin(BinOp::Add),
                    format!("s{c}_{k}"),
                    &[prev.into(), (c as f64).into()],
                )
            };
        }
        let _ = g.cell(
            Opcode::Sink(format!("y{c}")),
            format!("y{c}"),
            &[prev.into()],
        );
        inputs = inputs.bind(&name, reals(&ramp(24)));
    }
    (g, inputs)
}

#[test]
fn wide_clean_pipeline_matches_across_workers() {
    let (g, inputs) = wide(128, 6);
    assert!(
        g.node_count() >= 1000,
        "must be wide enough to engage the phased path"
    );
    let r = assert_equivalent(&g, &inputs, SimConfig::new().check_invariants(true));
    assert!(r.sources_exhausted);
    assert_eq!(r.values("y17").len(), 24);
}

#[test]
fn wide_faulted_throttled_latent_pipeline_matches() {
    let (g, inputs) = wide(96, 5);
    let n = g.node_count();
    let cfg = SimConfig::new()
        .fault_plan(FaultPlan {
            seed: 99,
            delay_result: 0.2,
            delay_result_max: 4,
            delay_ack: 0.1,
            delay_ack_max: 3,
            dup_result: 0.04,
            ..Default::default()
        })
        .resources(valpipe_machine::ResourceModel {
            unit_of: (0..n as u32).map(|i| i % 4).collect(),
            capacity: vec![64; 4],
        })
        .arc_capacity(2)
        .delays(valpipe_machine::ArcDelays {
            forward: vec![2; g.arc_count()],
            ack: vec![1; g.arc_count()],
        })
        .check_invariants(true);
    let r = assert_equivalent(&g, &inputs, cfg);
    assert!(r.sources_exhausted);
}

#[test]
fn wide_watchdog_stall_matches() {
    // Freeze a band of cells forever: the run wedges and every kernel
    // must report the identical stall at the identical step.
    let (g, inputs) = wide(100, 4);
    let cfg = SimConfig::new()
        .fault_plan(FaultPlan {
            freezes: (0..40)
                .map(|i| CellFreeze {
                    node: 7 + 6 * i,
                    from: 12,
                    until: 1 << 40,
                })
                .collect(),
            ..Default::default()
        })
        .watchdog(WatchdogConfig {
            step_budget: 2_000,
            ..Default::default()
        })
        .check_invariants(true);
    let r = assert_equivalent(&g, &inputs, cfg);
    assert_eq!(r.stop, StopReason::Stalled);
}

#[test]
fn wide_planning_error_surfaces_identically() {
    // Adding a boolean is a planning-time Eval error; the parallel
    // kernel must surface the same first error the sequential plan
    // order would, from the same step, with no partial firing.
    let (mut g, inputs) = wide(110, 3);
    let ctl = g.add_node(Opcode::CtlGen(CtlStream::from_runs([(true, 1)])), "badctl");
    let bad = g.cell(Opcode::Bin(BinOp::Add), "bad", &[ctl.into(), 1.0.into()]);
    let _ = g.cell(Opcode::Sink("z".into()), "z", &[bad.into()]);
    let errs: Vec<String> = [
        Kernel::Scan,
        Kernel::EventDriven,
        Kernel::ParallelEvent(2),
        Kernel::ParallelEvent(4),
    ]
    .into_iter()
    .map(|kernel| {
        Simulator::builder(&g)
            .inputs(inputs.clone())
            .config(SimConfig::new().kernel(kernel))
            .run()
            .unwrap_err()
            .to_string()
    })
    .collect();
    for e in &errs[1..] {
        assert_eq!(&errs[0], e, "kernels must report the same first error");
    }
}

#[test]
fn faults_plus_throttling_plus_latency_compose() {
    // The unholy trinity: seeded delays, a shared-unit throttle, and
    // non-unit link latencies, all at once.
    let g = conditional();
    let n = g.node_count();
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(30)));
    let cfg = SimConfig::new()
        .fault_plan(FaultPlan {
            seed: 5,
            delay_result: 0.25,
            delay_result_max: 4,
            ..Default::default()
        })
        .resources(valpipe_machine::ResourceModel {
            unit_of: vec![0; n],
            capacity: vec![2],
        })
        .arc_capacity(2)
        .delays(valpipe_machine::ArcDelays {
            forward: vec![2; g.arc_count()],
            ack: vec![1; g.arc_count()],
        })
        .check_invariants(true);
    let r = assert_equivalent(&g, &inputs, cfg);
    assert!(r.sources_exhausted);
}
