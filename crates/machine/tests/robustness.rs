//! Robustness integration tests: fault injection, the watchdog's stall
//! taxonomy (deadlock / livelock / budget exhaustion), invariant
//! checking, and the bit-identity guarantee of the empty fault plan.

use valpipe_ir::opcode::Opcode;
use valpipe_ir::value::{BinOp, Value};
use valpipe_ir::{CtlStream, Graph};
use valpipe_machine::{
    CellFreeze, FaultPlan, ProgramInputs, RunResult, Simulator, StallKind, StopReason,
    WatchdogConfig,
};

fn reals(v: &[f64]) -> Vec<Value> {
    v.iter().map(|&x| Value::Real(x)).collect()
}

fn ramp(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64).collect()
}

/// Run with invariant checking on and an optional fault plan.
fn run_checked(g: &Graph, inputs: &ProgramInputs, plan: Option<FaultPlan>) -> RunResult {
    Simulator::builder(g)
        .inputs(inputs.clone())
        .fault_plan_opt(plan)
        .check_invariants(true)
        .run()
        .unwrap()
}

// ---------------------------------------------------------------------
// The ISSUE acceptance test: a wedged graph terminates within the step
// budget and the stall report names at least one blocked cell and one
// arc holding tokens.
// ---------------------------------------------------------------------

#[test]
fn wedged_graph_terminates_within_budget_with_diagnosis() {
    // A join whose left arm passes through a cell that is frozen for the
    // whole run: the right arm's token sits in front of the join forever.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let left = g.cell(Opcode::Id, "left_arm", &[a.into()]);
    let add = g.cell(
        Opcode::Bin(BinOp::Add),
        "the_join",
        &[left.into(), b.into()],
    );
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);

    let budget = 5_000;
    let r = Simulator::builder(&g)
        .inputs(
            ProgramInputs::new()
                .bind("a", reals(&ramp(8)))
                .bind("b", reals(&ramp(8))),
        )
        .fault_plan(FaultPlan {
            freezes: vec![CellFreeze {
                node: left.idx(),
                from: 0,
                until: 1 << 40,
            }],
            ..Default::default()
        })
        .watchdog(WatchdogConfig {
            step_budget: budget,
            ..Default::default()
        })
        .check_invariants(true)
        .run()
        .unwrap();

    assert_eq!(r.stop, StopReason::Stalled);
    assert!(
        r.steps <= budget,
        "terminated at step {} > budget {budget}",
        r.steps
    );
    assert!(!r.sources_exhausted);
    let report = r
        .stall_report
        .expect("wedged run must carry a stall report");
    let join = report
        .blocked_cells
        .iter()
        .find(|c| c.label == "the_join")
        .expect("report must name the starved join");
    assert_eq!(join.missing_ports, vec![0], "join waits on the frozen arm");
    assert!(
        !report.held_arcs.is_empty(),
        "report must name at least one held arc"
    );
    assert!(
        report.held_arcs.iter().any(|h| h.tokens > 0),
        "some arc must hold a queued token"
    );
    let text = report.to_string();
    assert!(text.contains("the_join"), "{text}");
    assert!(text.contains("token(s) queued"), "{text}");
}

#[test]
fn lost_acknowledges_deadlock_with_named_cells_and_arcs() {
    // Probabilistic ack loss on a two-armed join: one arm wedges before
    // the other, leaving the join starved with a token queued in front
    // of it. The seed is fixed, so the run is reproducible.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let add = g.cell(Opcode::Bin(BinOp::Add), "join", &[a.into(), b.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);

    let plan = FaultPlan {
        seed: 11,
        drop_ack: 0.3,
        ..Default::default()
    };
    let r = run_checked(
        &g,
        &ProgramInputs::new()
            .bind("a", reals(&ramp(40)))
            .bind("b", reals(&ramp(40))),
        Some(plan),
    );

    assert!(
        !r.sources_exhausted,
        "lost acknowledges must wedge the pipe"
    );
    let report = r.stall_report.expect("deadlocked run must carry a report");
    assert_eq!(report.kind, StallKind::Deadlock);
    assert!(!report.blocked_cells.is_empty(), "{report}");
    let held = report
        .held_arcs
        .iter()
        .find(|h| h.unacked > 0)
        .expect("some arc must hold an unacknowledged slot");
    assert!(held.arc < g.arc_count());
}

// ---------------------------------------------------------------------
// Bit-identity: the empty fault plan shares the fault-free code path,
// so the paper's rate measurements are untouched by the robustness
// machinery.
// ---------------------------------------------------------------------

fn assert_bit_identical(g: &Graph, inputs: &ProgramInputs) -> RunResult {
    let clean = run_checked(g, inputs, None);
    let empty = run_checked(g, inputs, Some(FaultPlan::default()));
    assert_eq!(clean.steps, empty.steps);
    assert_eq!(clean.stop, empty.stop);
    assert_eq!(clean.outputs, empty.outputs);
    assert_eq!(clean.fires, empty.fires);
    assert_eq!(clean.total_fires, empty.total_fires);
    assert_eq!(clean.source_emit_times, empty.source_emit_times);
    clean
}

#[test]
fn empty_plan_bit_identical_on_max_pipelined_chain() {
    // Fig. 2 regime: an acknowledged chain runs at the paper's maximum
    // rate of 1/2 — and the empty plan must not move it by a single step.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let mut prev = a;
    for k in 0..4 {
        prev = g.cell(Opcode::Id, format!("s{k}"), &[prev.into()]);
    }
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[prev.into()]);
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(64)));
    let r = assert_bit_identical(&g, &inputs);
    let iv = r.timing("y").interval().unwrap();
    assert!(
        (iv - 2.0).abs() < 1e-9,
        "rate-1/2 chain measured at interval {iv}"
    );
}

#[test]
fn empty_plan_bit_identical_on_three_cycle_loop() {
    // Todd's counterexample regime: a 3-cycle pins everything to rate
    // 1/3; again the measurement must be bit-identical under the empty
    // plan.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let j = g.add_node(Opcode::Bin(BinOp::Add), "join");
    g.connect(a, j, 0);
    let l1 = g.cell(Opcode::Id, "l1", &[j.into()]);
    let l2 = g.cell(Opcode::Id, "l2", &[l1.into()]);
    g.connect_init(l2, j, 1, Value::Real(0.0));
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[l2.into()]);
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(80)));
    let r = assert_bit_identical(&g, &inputs);
    let iv = r.timing("y").interval().unwrap();
    assert!((iv - 3.0).abs() < 1e-9, "3-cycle measured at interval {iv}");
}

// ---------------------------------------------------------------------
// Control skew: gates and merges under fault-delayed streams.
// ---------------------------------------------------------------------

#[test]
fn gate_discards_under_control_skew_never_jam() {
    // TGate/FGate pair fed from one source; injected delays skew the
    // control stream against the data stream. The gates' discard rule
    // (acknowledge without forwarding) must keep the pipe draining, and
    // the selected values must be exactly the clean run's.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let ct = g.add_node(Opcode::CtlGen(CtlStream::window(4, 1, 2)), "ct");
    let cf = g.add_node(Opcode::CtlGen(CtlStream::window(4, 1, 2)), "cf");
    let tg = g.cell(Opcode::TGate, "t", &[ct.into(), a.into()]);
    let _ = g.cell(Opcode::Sink("t".into()), "st", &[tg.into()]);
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let fg = g.cell(Opcode::FGate, "f", &[cf.into(), b.into()]);
    let _ = g.cell(Opcode::Sink("f".into()), "sf", &[fg.into()]);
    let inputs = ProgramInputs::new()
        .bind("a", reals(&ramp(48)))
        .bind("b", reals(&ramp(48)));

    let clean = run_checked(&g, &inputs, None);
    let plan = FaultPlan {
        seed: 23,
        delay_result: 0.35,
        delay_result_max: 5,
        delay_ack: 0.2,
        delay_ack_max: 3,
        ..Default::default()
    };
    let skewed = run_checked(&g, &inputs, Some(plan));
    assert!(
        skewed.sources_exhausted,
        "gate discards must never block upstream"
    );
    assert!(skewed.stall_report.is_none());
    assert_eq!(skewed.values("t"), clean.values("t"));
    assert_eq!(skewed.values("f"), clean.values("f"));
}

#[test]
fn merge_ordering_survives_a_delayed_arm() {
    // A conditional (gate pair, distinct arms, merge) under heavy result
    // delays: the merge's control stream dictates the output order, so
    // the sequence must match the clean run even when one arm's tokens
    // arrive late.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let ctl = g.add_node(
        Opcode::CtlGen(CtlStream::from_runs([(true, 2), (false, 1)])),
        "ctl",
    );
    let tg = g.cell(Opcode::TGate, "tg", &[ctl.into(), a.into()]);
    let fg = g.cell(Opcode::FGate, "fg", &[ctl.into(), a.into()]);
    let t_arm = g.cell(Opcode::Bin(BinOp::Add), "t_arm", &[tg.into(), 100.0.into()]);
    let f_arm = g.cell(
        Opcode::Bin(BinOp::Mul),
        "f_arm",
        &[fg.into(), (-1.0).into()],
    );
    let m = g.add_node(Opcode::Merge, "m");
    g.connect(ctl, m, 0);
    g.connect(t_arm, m, 1);
    g.connect(f_arm, m, 2);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[m.into()]);
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(45)));

    let clean = run_checked(&g, &inputs, None);
    assert!(clean.sources_exhausted);
    let expected = clean.values("y");
    // Analytic oracle: control (T,T,F) repeating, so wave i takes the
    // true arm (+100) unless i % 3 == 2, which takes the false arm (-x).
    let oracle: Vec<Value> = (0..45)
        .map(|i| {
            Value::Real(if i % 3 < 2 {
                i as f64 + 100.0
            } else {
                -(i as f64)
            })
        })
        .collect();
    assert_eq!(expected, oracle, "clean machine run must match the oracle");

    for seed in [1u64, 7, 42] {
        let plan = FaultPlan {
            seed,
            delay_result: 0.4,
            delay_result_max: 6,
            ..Default::default()
        };
        let r = run_checked(&g, &inputs, Some(plan));
        assert!(r.sources_exhausted, "seed {seed}: delays must never wedge");
        assert_eq!(r.values("y"), expected, "seed {seed}: merge order broke");
    }
}

// ---------------------------------------------------------------------
// Watchdog taxonomy: livelock and budget exhaustion.
// ---------------------------------------------------------------------

#[test]
fn spinning_token_loop_is_reported_as_livelock() {
    // Two identity cells passing one token around forever: firings keep
    // happening but no sink ever receives and no source ever emits.
    let mut g = Graph::new();
    let n1 = g.add_node(Opcode::Id, "spin1");
    let n2 = g.add_node(Opcode::Id, "spin2");
    g.connect(n1, n2, 0);
    g.connect_init(n2, n1, 0, Value::Real(1.0));

    let r = Simulator::builder(&g)
        .watchdog(WatchdogConfig {
            step_budget: 100_000,
            progress_window: 64,
        })
        .check_invariants(true)
        .run()
        .unwrap();
    assert_eq!(r.stop, StopReason::Stalled);
    let report = r.stall_report.expect("livelocked run must carry a report");
    assert_eq!(report.kind, StallKind::Livelock);
    assert!(
        report.fires_in_window > 0,
        "livelock means firings without progress"
    );
    assert!(
        r.steps < 100_000,
        "livelock must be caught well before the budget"
    );
    assert!(report.to_string().contains("livelock"), "{report}");
}

#[test]
fn productive_run_out_of_budget_is_reported_as_such() {
    // A healthy pipeline cut off mid-stream: the watchdog must not call
    // it deadlocked or livelocked.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let id = g.cell(Opcode::Id, "id", &[a.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[id.into()]);
    let r = Simulator::builder(&g)
        .inputs(ProgramInputs::new().bind("a", reals(&ramp(200))))
        .watchdog(WatchdogConfig {
            step_budget: 40,
            ..Default::default()
        })
        .run()
        .unwrap();
    assert_eq!(r.stop, StopReason::Stalled);
    assert_eq!(r.steps, 40);
    let report = r
        .stall_report
        .expect("budget-killed run must carry a report");
    assert_eq!(report.kind, StallKind::BudgetExhausted);
    assert!(report.to_string().contains("budget"), "{report}");
}

// ---------------------------------------------------------------------
// Invariant checker: silent on healthy runs, including under the
// latency/capacity knobs the experiments use.
// ---------------------------------------------------------------------

#[test]
fn invariant_checker_is_silent_on_healthy_runs() {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let i1 = g.cell(Opcode::Id, "i1", &[a.into()]);
    let i2 = g.cell(Opcode::Id, "i2", &[i1.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[i2.into()]);
    let inputs = ProgramInputs::new().bind("a", reals(&ramp(50)));
    for cap in [1usize, 2, 4] {
        let r = Simulator::builder(&g)
            .inputs(inputs.clone())
            .arc_capacity(cap)
            .delays(valpipe_machine::ArcDelays {
                forward: vec![2; g.arc_count()],
                ack: vec![2; g.arc_count()],
            })
            .check_invariants(true)
            .run()
            .unwrap();
        assert!(r.sources_exhausted, "cap {cap}");
        assert_eq!(r.reals("y"), ramp(50), "cap {cap}");
    }
}

/// Compile-time proof that sessions and every snapshot-carrying type can
/// migrate across worker threads — the property the multi-tenant
/// simulation service's worker pool depends on. If any field regresses
/// to a non-`Send` type (an `Rc`, a raw pointer without its manual
/// impl), this test stops compiling.
#[test]
fn sessions_and_snapshot_state_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<valpipe_machine::Session<'static>>();
    assert_send::<valpipe_machine::RunOutcome<'static>>();
    assert_send::<valpipe_machine::Snapshot>();
    assert_send::<valpipe_machine::SnapshotError>();
    assert_send::<valpipe_machine::SimConfig>();
    assert_send::<RunResult>();
    // A `&Graph` crosses threads with the session, so the graph itself
    // must also be shareable.
    fn assert_sync<T: Sync>() {}
    assert_sync::<Graph>();
}
