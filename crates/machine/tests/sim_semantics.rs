//! Semantic tests of the machine model: firing rules, acknowledge
//! pacing, gate discards, merge selection, stop conditions, and the
//! capacity/latency knobs used by the detailed-machine experiments.

use valpipe_ir::opcode::Opcode;
use valpipe_ir::value::{BinOp, Value};
use valpipe_ir::{CtlStream, Graph};
use valpipe_machine::{ProgramInputs, Simulator, StopReason, Timing};

fn reals(v: &[f64]) -> Vec<Value> {
    v.iter().map(|&x| Value::Real(x)).collect()
}

#[test]
fn chain_latency_is_depth_plus_one() {
    // First packet arrives after (stages + 1) hops of 1 instruction time.
    for stages in [1usize, 5, 17] {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let mut prev = a;
        for k in 0..stages {
            prev = g.cell(Opcode::Id, format!("s{k}"), &[prev.into()]);
        }
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[prev.into()]);
        let r = Simulator::builder(&g)
            .inputs(ProgramInputs::new().bind("a", reals(&[1.0])))
            .run()
            .unwrap();
        let (t, _) = r.outputs["y"][0];
        // Source fires at 0; each cell adds one instruction time; the sink
        // records at its own firing.
        assert_eq!(t, stages as u64 + 1, "stages = {stages}");
    }
}

#[test]
fn merge_with_two_literal_operands_paced_by_control() {
    let mut g = Graph::new();
    let ctl = g.add_node(
        Opcode::CtlGen(CtlStream::from_runs([(true, 2), (false, 1)])),
        "ctl",
    );
    let m = g.add_node(Opcode::Merge, "m");
    g.connect(ctl, m, 0);
    g.set_lit(m, 1, Value::Real(1.0));
    g.set_lit(m, 2, Value::Real(2.0));
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[m.into()]);
    let r = Simulator::builder(&g)
        .stop_outputs(vec![("y".into(), 9)])
        .run()
        .unwrap();
    assert_eq!(r.stop, StopReason::OutputsReached);
    assert_eq!(
        r.reals("y")[..9],
        [1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 1.0, 1.0, 2.0]
    );
}

#[test]
fn fgate_complements_tgate() {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let ct = g.add_node(Opcode::CtlGen(CtlStream::window(4, 1, 2)), "ct");
    let cf = g.add_node(Opcode::CtlGen(CtlStream::window(4, 1, 2)), "cf");
    let tg = g.cell(Opcode::TGate, "t", &[ct.into(), a.into()]);
    let _ = g.cell(Opcode::Sink("t".into()), "st", &[tg.into()]);
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let fg = g.cell(Opcode::FGate, "f", &[cf.into(), b.into()]);
    let _ = g.cell(Opcode::Sink("f".into()), "sf", &[fg.into()]);
    let data = [0., 1., 2., 3., 4., 5., 6., 7.];
    let r = Simulator::builder(&g)
        .inputs(
            ProgramInputs::new()
                .bind("a", reals(&data))
                .bind("b", reals(&data)),
        )
        .run()
        .unwrap();
    assert_eq!(r.reals("t"), vec![1., 2., 5., 6.]);
    assert_eq!(r.reals("f"), vec![0., 3., 4., 7.]);
}

#[test]
fn capacity_two_links_halve_the_interval_under_latency() {
    // With forward/ack latency 2 each, capacity-1 links run at interval 4;
    // capacity-2 links restore pipelining across the in-flight gap.
    let build = || {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let i1 = g.cell(Opcode::Id, "i1", &[a.into()]);
        let i2 = g.cell(Opcode::Id, "i2", &[i1.into()]);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[i2.into()]);
        g
    };
    let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
    let mut ivs = Vec::new();
    for cap in [1usize, 2] {
        let g = build();
        let r = Simulator::builder(&g)
            .inputs(ProgramInputs::new().bind("a", reals(&data)))
            .arc_capacity(cap)
            .delays(valpipe_machine::ArcDelays {
                forward: vec![2; g.arc_count()],
                ack: vec![2; g.arc_count()],
            })
            .run()
            .unwrap();
        let t: Vec<u64> = r.outputs["y"].iter().map(|&(t, _)| t).collect();
        ivs.push(Timing::of(t).interval().unwrap());
    }
    assert!((ivs[0] - 4.0).abs() < 0.1, "cap1 interval {}", ivs[0]);
    assert!((ivs[1] - 2.0).abs() < 0.1, "cap2 interval {}", ivs[1]);
}

#[test]
fn fire_counts_and_times_recorded() {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let id = g.cell(Opcode::Id, "id", &[a.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[id.into()]);
    let r = Simulator::builder(&g)
        .inputs(ProgramInputs::new().bind("a", reals(&[1., 2., 3.])))
        .record_fire_times(true)
        .run()
        .unwrap();
    assert_eq!(r.fires, vec![3, 3, 3]);
    let ft = r.fire_times.unwrap();
    assert_eq!(ft[1].len(), 3);
    // Identity fires strictly after the source each round.
    assert!(ft[1][0] > ft[0][0]);
    assert_eq!(r.total_fires, 9);
}

#[test]
fn deadlocked_program_reports_unexhausted_sources() {
    // A join whose second operand never arrives.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[a.into(), b.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
    let r = Simulator::builder(&g)
        .inputs(
            ProgramInputs::new()
                .bind("a", reals(&[1., 2., 3., 4.]))
                .bind("b", reals(&[10.])),
        )
        .run()
        .unwrap();
    assert_eq!(r.stop, StopReason::Quiescent);
    assert!(!r.sources_exhausted);
    assert_eq!(r.reals("y"), vec![11.0]);
}

#[test]
fn source_emit_times_track_backpressure() {
    // A slow consumer (3-cell loop alternately blocking) should stretch
    // the source's emission spacing beyond 2.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    // 3-cycle with one token between the source and sink: the loop's
    // merge-free structure forces interval 3 on everything upstream.
    let j = g.add_node(Opcode::Bin(BinOp::Add), "join");
    g.connect(a, j, 0);
    let l1 = g.cell(Opcode::Id, "l1", &[j.into()]);
    let l2 = g.cell(Opcode::Id, "l2", &[l1.into()]);
    g.connect_init(l2, j, 1, Value::Real(0.0));
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[l2.into()]);
    let data: Vec<f64> = (0..80).map(|i| i as f64).collect();
    let r = Simulator::builder(&g)
        .inputs(ProgramInputs::new().bind("a", reals(&data)))
        .run()
        .unwrap();
    let iv = r.source_timing("a").interval().unwrap();
    assert!(
        (iv - 3.0).abs() < 0.1,
        "source paced at {iv}, expected 3 (loop-limited)"
    );
}

#[test]
fn values_independent_of_issue_order() {
    // Same program under an aggressive resource throttle produces the same
    // value sequence (determinism + data-driven semantics).
    let build = || {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let b = g.add_node(Opcode::Source("b".into()), "b");
        let m = g.cell(Opcode::Bin(BinOp::Mul), "m", &[a.into(), b.into()]);
        let p = g.cell(Opcode::Bin(BinOp::Add), "p", &[m.into(), 1.0.into()]);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[p.into()]);
        g
    };
    let data: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
    let inputs = ProgramInputs::new()
        .bind("a", reals(&data))
        .bind("b", reals(&data));
    let free_g = build();
    let free = Simulator::builder(&free_g)
        .inputs(inputs.clone())
        .run()
        .unwrap();
    let throttled_g = build();
    let throttled = Simulator::builder(&throttled_g)
        .inputs(inputs)
        .resources(valpipe_machine::ResourceModel {
            unit_of: vec![0; 5],
            capacity: vec![1],
        })
        .run()
        .unwrap();
    assert_eq!(free.values("y"), throttled.values("y"));
    assert!(throttled.steps > free.steps);
}

#[test]
fn stall_report_names_the_blocked_join() {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let add = g.cell(Opcode::Bin(BinOp::Add), "the_join", &[a.into(), b.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
    let r = Simulator::builder(&g)
        .inputs(
            ProgramInputs::new()
                .bind("a", reals(&[1., 2., 3.]))
                .bind("b", reals(&[])),
        )
        .run()
        .unwrap();
    assert!(!r.sources_exhausted);
    let report = r.stall_report.expect("stalled run must carry a report");
    assert_eq!(report.kind, valpipe_machine::StallKind::Deadlock);
    let join = report
        .blocked_cells
        .iter()
        .find(|c| c.label == "the_join")
        .expect("report must name the blocked join");
    assert_eq!(join.missing_ports, vec![1]);
    let text = report.to_string();
    assert!(text.contains("the_join"), "{text}");
    assert!(text.contains("port(s) [1]"), "{text}");
}

#[test]
fn successful_run_has_no_stall_report() {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[a.into()]);
    let r = Simulator::builder(&g)
        .inputs(ProgramInputs::new().bind("a", reals(&[1.0])))
        .run()
        .unwrap();
    assert!(r.sources_exhausted);
    assert!(r.stall_report.is_none());
}
