//! Checkpoint/restore: a snapshot taken mid-run — under faults, gates,
//! non-uniform delays, and a watchdog — must resume to the *bit-identical*
//! `RunResult` of an uninterrupted run, on either kernel and across a
//! kernel switch at the restore boundary. The committed golden fixture
//! pins the on-disk format: byte-for-byte stability is asserted, so any
//! format change must bump `SNAPSHOT_VERSION` and regenerate the fixture.

use valpipe_ir::opcode::Opcode;
use valpipe_ir::value::{BinOp, Value};
use valpipe_ir::{CtlStream, Graph};
use valpipe_machine::{
    ArcDelays, FaultPlan, Kernel, ProgramInputs, RunResult, RunSpec, Session, SimConfig, Simulator,
    Snapshot, SnapshotError, WatchdogConfig, SNAPSHOT_VERSION,
};

fn reals(v: &[f64]) -> Vec<Value> {
    v.iter().map(|&x| Value::Real(x)).collect()
}

/// Fig. 2's expression pipeline plus a gated tap: exercises binary
/// cells, literals, a control generator, gate pass/discard accounting,
/// and two sinks.
fn workload_graph() -> Graph {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let y = g.cell(Opcode::Bin(BinOp::Mul), "mul", &[a.into(), b.into()]);
    let p = g.cell(Opcode::Bin(BinOp::Add), "add2", &[y.into(), 2.0.into()]);
    let q = g.cell(Opcode::Bin(BinOp::Sub), "sub3", &[y.into(), 3.0.into()]);
    let r = g.cell(Opcode::Bin(BinOp::Mul), "join", &[p.into(), q.into()]);
    let _ = g.cell(Opcode::Sink("out".into()), "out", &[r.into()]);
    let ctl = g.add_node(Opcode::CtlGen(CtlStream::window(4, 1, 2)), "ctl");
    let gate = g.cell(Opcode::TGate, "gate", &[ctl.into(), y.into()]);
    let _ = g.cell(Opcode::Sink("tap".into()), "tap", &[gate.into()]);
    g
}

fn workload_inputs(n: usize) -> ProgramInputs {
    let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.5).collect();
    let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos() + 2.0).collect();
    ProgramInputs::new()
        .bind("a", reals(&xs))
        .bind("b", reals(&ys))
}

/// A deliberately hostile configuration: non-uniform link latencies,
/// injected delays and duplicates, a watchdog, and fire-time recording.
/// (No drops: a dropped packet wedges its arc permanently, which is a
/// stall test, not a recovery test.)
fn faulted_config(arcs: usize) -> SimConfig {
    SimConfig::new()
        .max_steps(50_000)
        .delays(ArcDelays {
            forward: (0..arcs).map(|i| 1 + (i as u64 % 3)).collect(),
            ack: (0..arcs).map(|i| 1 + ((i as u64 + 1) % 2)).collect(),
        })
        .fault_plan(FaultPlan {
            seed: 0xC0FFEE,
            delay_result: 0.2,
            delay_result_max: 3,
            delay_ack: 0.1,
            delay_ack_max: 2,
            dup_result: 0.05,
            ..Default::default()
        })
        .watchdog(WatchdogConfig {
            step_budget: 40_000,
            progress_window: 1_000,
        })
        .record_fire_times(true)
}

fn straight_run(g: &Graph, inputs: &ProgramInputs, cfg: &SimConfig, kernel: Kernel) -> RunResult {
    Simulator::builder(g)
        .inputs(inputs.clone())
        .config(cfg.clone().kernel(kernel))
        .run()
        .unwrap()
}

/// Step to instruction time `k` under `run_kernel`, checkpoint, throw the
/// session away (the "crash"), restore under `resume_kernel`, run out.
fn crash_and_recover(
    g: &Graph,
    inputs: &ProgramInputs,
    cfg: &SimConfig,
    run_kernel: Kernel,
    resume_kernel: Kernel,
    k: u64,
) -> RunResult {
    let mut session = Simulator::builder(g)
        .inputs(inputs.clone())
        .config(cfg.clone().kernel(run_kernel))
        .build()
        .unwrap();
    while session.now() < k {
        session.step().unwrap();
    }
    let snap = session.checkpoint();
    drop(session);
    assert_eq!(snap.step(), k);
    let restored = Session::restore_with_kernel(g, &snap, resume_kernel).unwrap();
    assert_eq!(restored.now(), k);
    assert_eq!(restored.kernel(), resume_kernel);
    restored.drive(RunSpec::new()).unwrap().result()
}

#[test]
fn recovery_is_bit_identical_across_kernel_pairs() {
    let g = workload_graph();
    let inputs = workload_inputs(48);
    let cfg = faulted_config(g.arcs.len());
    let pairs = [
        (Kernel::Scan, Kernel::Scan),
        (Kernel::Scan, Kernel::EventDriven),
        (Kernel::EventDriven, Kernel::Scan),
        (Kernel::EventDriven, Kernel::EventDriven),
        (Kernel::Scan, Kernel::ParallelEvent(2)),
        (Kernel::EventDriven, Kernel::ParallelEvent(4)),
        (Kernel::ParallelEvent(2), Kernel::Scan),
        (Kernel::ParallelEvent(2), Kernel::EventDriven),
        (Kernel::ParallelEvent(2), Kernel::ParallelEvent(2)),
    ];
    for (run_k, resume_k) in pairs {
        let reference = straight_run(&g, &inputs, &cfg, resume_k);
        assert!(reference.steps > 100, "workload too short to crash into");
        for k in [0, 1, 13, 50, reference.steps / 2, reference.steps - 1] {
            let recovered = crash_and_recover(&g, &inputs, &cfg, run_k, resume_k, k);
            assert_eq!(
                recovered, reference,
                "recovered run diverged: crash at {k}, {run_k:?} -> {resume_k:?}"
            );
        }
    }
}

#[test]
fn default_restore_resumes_on_default_kernel() {
    let g = workload_graph();
    let inputs = workload_inputs(16);
    let cfg = SimConfig::new();
    let mut session = Simulator::builder(&g)
        .inputs(inputs.clone())
        .config(cfg.clone().kernel(Kernel::Scan))
        .build()
        .unwrap();
    for _ in 0..20 {
        session.step().unwrap();
    }
    let snap = session.checkpoint();
    let restored = Session::restore(&g, &snap).unwrap();
    assert_eq!(restored.kernel(), Kernel::default());
    assert_eq!(
        restored.drive(RunSpec::new()).unwrap().result(),
        straight_run(&g, &inputs, &cfg, Kernel::default())
    );
}

#[test]
fn run_with_checkpoints_every_snapshot_resumes_identically() {
    let g = workload_graph();
    let inputs = workload_inputs(32);
    let cfg = faulted_config(g.arcs.len()).checkpoint_every(25);
    let session = Simulator::builder(&g)
        .inputs(inputs.clone())
        .config(cfg.clone())
        .build()
        .unwrap();
    let mut snaps = Vec::new();
    let reference = session
        .drive_with(RunSpec::new(), |s| snaps.push(s))
        .unwrap()
        .result();
    assert!(
        snaps.len() >= 4,
        "expected several periodic checkpoints, got {}",
        snaps.len()
    );
    for snap in &snaps {
        assert_eq!(snap.step() % 25, 0);
        let recovered = Session::restore(&g, snap)
            .unwrap()
            .drive(RunSpec::new())
            .unwrap()
            .result();
        assert_eq!(recovered, reference, "checkpoint at step {}", snap.step());
    }
}

#[test]
fn checkpoint_file_survives_crash_and_restores() {
    let g = workload_graph();
    let inputs = workload_inputs(32);
    let path = std::env::temp_dir().join(format!("valpipe_ckpt_{}.snap", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();
    let cfg = faulted_config(g.arcs.len())
        .checkpoint_every(40)
        .checkpoint_path(path_str.clone());
    let reference = Simulator::builder(&g)
        .inputs(inputs.clone())
        .config(cfg.clone())
        .run()
        .unwrap();
    // The file holds the latest periodic checkpoint of the finished run;
    // pretend the process died right after it was written.
    let snap = Snapshot::read_from(&path).unwrap();
    assert!(snap.step() > 0 && snap.step() <= reference.steps);
    let recovered = Session::restore(&g, &snap)
        .unwrap()
        .drive(RunSpec::new())
        .unwrap()
        .result();
    assert_eq!(recovered, reference);
    std::fs::remove_file(&path).ok();
}

#[test]
fn unreadable_and_truncated_files_are_typed_errors() {
    let missing = std::env::temp_dir().join("valpipe_no_such_checkpoint.snap");
    assert!(matches!(
        Snapshot::read_from(&missing),
        Err(SnapshotError::Io(_))
    ));

    let g = workload_graph();
    let mut session = Simulator::builder(&g)
        .inputs(workload_inputs(8))
        .build()
        .unwrap();
    for _ in 0..5 {
        session.step().unwrap();
    }
    let bytes = session.checkpoint().as_bytes().to_vec();
    let path = std::env::temp_dir().join(format!("valpipe_trunc_{}.snap", std::process::id()));
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert_eq!(Snapshot::read_from(&path), Err(SnapshotError::Truncated));
    std::fs::remove_file(&path).ok();
}

#[test]
fn stalled_runs_checkpoint_and_recover_too() {
    // An acknowledge-dropping plan wedges the pipe; the watchdog turns
    // that into a stall report. A run recovered from mid-flight must
    // reproduce the stall verdict bit for bit, report included.
    let g = workload_graph();
    let inputs = workload_inputs(64);
    let cfg = SimConfig::new()
        .fault_plan(FaultPlan {
            seed: 3,
            drop_ack: 0.02,
            ..Default::default()
        })
        .watchdog(WatchdogConfig {
            step_budget: 5_000,
            progress_window: 300,
        });
    let reference = straight_run(&g, &inputs, &cfg, Kernel::EventDriven);
    assert!(
        reference.stall_report.is_some(),
        "plan should wedge the pipe"
    );
    for k in [10, reference.steps / 2, reference.steps - 1] {
        let recovered = crash_and_recover(&g, &inputs, &cfg, Kernel::EventDriven, Kernel::Scan, k);
        assert_eq!(recovered, reference, "crash at {k}");
    }
}

// --- Golden fixture: pins snapshot format v1 byte for byte. ---

const GOLDEN_STEPS: u64 = 60;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_v1.snap")
}

fn golden_snapshot() -> (Graph, ProgramInputs, SimConfig) {
    let g = workload_graph();
    let inputs = workload_inputs(40);
    let cfg = faulted_config(g.arcs.len())
        .stop_outputs(vec![("out".into(), 40), ("tap".into(), 20)])
        .checkpoint_every(500);
    (g, inputs, cfg)
}

fn capture_golden() -> (Graph, ProgramInputs, SimConfig, Snapshot) {
    let (g, inputs, cfg) = golden_snapshot();
    let snap = {
        let mut session = Simulator::builder(&g)
            .inputs(inputs.clone())
            .config(cfg.clone())
            .build()
            .unwrap();
        while session.now() < GOLDEN_STEPS {
            session.step().unwrap();
        }
        session.checkpoint()
    };
    (g, inputs, cfg, snap)
}

/// Regenerate the committed fixture after an intentional format change:
/// `cargo test -p valpipe-machine --test snapshot -- --ignored regenerate`
#[test]
#[ignore = "writes the golden fixture; run only on an intentional format bump"]
fn regenerate_golden_fixture() {
    let (_, _, _, snap) = capture_golden();
    std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
    std::fs::write(golden_path(), snap.as_bytes()).unwrap();
}

#[test]
fn golden_fixture_bytes_are_stable() {
    let (_, _, _, fresh) = capture_golden();
    let committed = std::fs::read(golden_path())
        .expect("fixture missing — run the ignored regenerate_golden_fixture test");
    assert_eq!(
        fresh.as_bytes(),
        &committed[..],
        "snapshot encoding changed; bump SNAPSHOT_VERSION and regenerate the fixture"
    );
}

#[test]
fn golden_fixture_restores_and_finishes() {
    let (g, inputs, cfg) = golden_snapshot();
    let snap = Snapshot::read_from(golden_path())
        .expect("fixture missing — run the ignored regenerate_golden_fixture test");
    assert_eq!(snap.version(), SNAPSHOT_VERSION);
    assert_eq!(snap.step(), GOLDEN_STEPS);
    assert_eq!(snap.fingerprint(), g.fingerprint());
    let reference = straight_run(&g, &inputs, &cfg, Kernel::EventDriven);
    assert_eq!(reference.stop, valpipe_machine::StopReason::OutputsReached);
    for kernel in [Kernel::Scan, Kernel::EventDriven, Kernel::ParallelEvent(2)] {
        let recovered = Session::restore_with_kernel(&g, &snap, kernel)
            .unwrap()
            .drive(RunSpec::new())
            .unwrap()
            .result();
        assert_eq!(recovered, reference, "fixture resumed on {kernel:?}");
    }
}
