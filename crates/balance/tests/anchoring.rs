//! Tests of source anchoring: inputs with different index origins start
//! at the same absolute machine time, so joins across differently-ranged
//! arrays need real skew buffers — while delaying a single source is free.

use valpipe_balance::{problem, solve};
use valpipe_ir::value::BinOp;
use valpipe_ir::{Graph, NodeId, Opcode};

/// One source fanning out to two taps at different offsets (the
/// compiler's Fig. 4 situation), joined elementwise.
fn fanout_tap_graph(phase_a: i32, phase_b: i32) -> (Graph, NodeId) {
    let mut g = Graph::new();
    let src = g.add_node(Opcode::Source("c".into()), "c");
    let ta = g.add_node(Opcode::Id, "ta");
    g.connect_phase(src, ta, 0, phase_a);
    let tb = g.add_node(Opcode::Id, "tb");
    g.connect_phase(src, tb, 0, phase_b);
    let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[ta.into(), tb.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
    (g, src)
}

#[test]
fn fanout_tap_skew_is_fully_buffered() {
    // C[i] + C[i+2]: taps at phases 0 and 4 off the SAME stream. The
    // shared source cannot slide for one consumer only — the early branch
    // must buffer the whole 4-instruction-time skew (Fig. 4's FIFOs).
    let (g, src) = fanout_tap_graph(0, 4);
    let p = problem::extract_anchored(&g, &[(src, 0)]).unwrap();
    let opt = solve::solve_optimal(&p);
    assert!(opt.is_feasible(&p));
    assert_eq!(opt.total_buffers, 4, "skew of 4 must be fully buffered");
}

#[test]
fn independent_sources_slide_for_free() {
    // Two different arrays joined with a phase difference: each source has
    // one consumer, so the late branch is absorbed by starting the other
    // source's stream later (a one-off transient) — no buffers at all.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let ta = g.add_node(Opcode::Id, "ta");
    g.connect_phase(a, ta, 0, 0);
    let tb = g.add_node(Opcode::Id, "tb");
    g.connect_phase(b, tb, 0, 4);
    let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[ta.into(), tb.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
    let p = problem::extract_anchored(&g, &[(a, 0), (b, 0)]).unwrap();
    let opt = solve::solve_optimal(&p);
    assert!(opt.is_feasible(&p));
    assert_eq!(
        opt.total_buffers, 0,
        "single-consumer sources slide for free"
    );
}

#[test]
fn single_consumer_slide_is_free() {
    // One source feeding one deep chain and another source feeding a
    // shallow chain, joined at the end: the shallow source just starts
    // later (zero-cost anchor slack), no buffers needed.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let mut prev = a;
    for k in 0..6 {
        prev = g.cell(Opcode::Id, format!("d{k}"), &[prev.into()]);
    }
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let sh = g.cell(Opcode::Id, "sh", &[b.into()]);
    let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[prev.into(), sh.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
    let p = problem::extract(&g).unwrap();
    let opt = solve::solve_optimal(&p);
    assert_eq!(
        opt.total_buffers, 0,
        "sliding the shallow source later costs nothing"
    );
    // ASAP (which pins everything early) needs real buffers instead.
    let asap = solve::solve_asap(&p);
    assert_eq!(asap.total_buffers, 5);
}

#[test]
fn fanout_prevents_free_slide() {
    // The same shallow source ALSO feeds its own sink directly: now it
    // cannot slide freely (its other consumer runs at phase 0), so the
    // optimum must buffer the deep join's shallow branch.
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let mut prev = a;
    for k in 0..6 {
        prev = g.cell(Opcode::Id, format!("d{k}"), &[prev.into()]);
    }
    let b = g.add_node(Opcode::Source("b".into()), "b");
    let sh = g.cell(Opcode::Id, "sh", &[b.into()]);
    let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[prev.into(), sh.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
    let _ = g.cell(Opcode::Sink("b_raw".into()), "b_raw", &[b.into()]);
    let p = problem::extract(&g).unwrap();
    let opt = solve::solve_optimal(&p);
    // b fans out: one branch must absorb the depth difference. (Sinks are
    // free-floating consumers, so the slide is still free here — unless a
    // sink is anchored. The invariant we check: optimal stays feasible and
    // no worse than ASAP.)
    let asap = solve::solve_asap(&p);
    assert!(opt.is_feasible(&p));
    assert!(opt.total_buffers <= asap.total_buffers);
}

#[test]
fn contracted_negative_weights_solve() {
    // A loop supernode fed by two inputs at different interior stages
    // produces negative contracted weights; all solvers must handle them.
    let mut g = Graph::new();
    let s1 = g.add_node(Opcode::Source("s1".into()), "s1");
    let s2 = g.add_node(Opcode::Source("s2".into()), "s2");
    let n1 = g.add_node(Opcode::Bin(BinOp::Add), "n1");
    g.connect(s1, n1, 1);
    let n2 = g.add_node(Opcode::Bin(BinOp::Add), "n2");
    g.connect(n1, n2, 0);
    g.connect(s2, n2, 1);
    let n3 = g.cell(Opcode::Id, "n3", &[n2.into()]);
    g.connect_init(n3, n1, 0, valpipe_ir::Value::Real(0.0));
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[n3.into()]);
    let p = problem::extract(&g).unwrap();
    // s2 enters the loop one stage later than s1 → its contracted weight
    // is 1 + rel(n1) − rel(n2) = 0 relative… just assert solvability.
    for sol in [
        solve::solve_asap(&p),
        solve::solve_heuristic(&p, 32),
        solve::solve_optimal(&p),
    ] {
        assert!(sol.is_feasible(&p));
    }
}

#[test]
fn alap_feasible_and_slack_nonnegative() {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let i1 = g.cell(Opcode::Id, "i1", &[a.into()]);
    let i2 = g.cell(Opcode::Id, "i2", &[i1.into()]);
    let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[i2.into(), a.into()]);
    let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
    let p = problem::extract(&g).unwrap();
    let asap = solve::solve_asap(&p);
    let alap = solve::solve_alap(&p);
    assert!(alap.is_feasible(&p));
    // Every supernode's ALAP potential ≥ its ASAP potential (slack ≥ 0),
    // up to the common translation fixed by the shared horizon.
    for n in 0..p.n {
        assert!(
            alap.potential[n] >= asap.potential[n],
            "node {n}: alap {} < asap {}",
            alap.potential[n],
            asap.potential[n]
        );
    }
}
