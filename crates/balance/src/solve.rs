//! Balancing solvers.
//!
//! Three algorithms matching the paper's §8 conclusions:
//!
//! 1. **ASAP** (`solve_asap`) — topological longest path, the classical
//!    Montz/Gao polynomial balancing. Always feasible, often wasteful.
//! 2. **Heuristic reduction** (`solve_heuristic`) — coordinate descent on
//!    the cell potentials, "effectively reducing the buffering in many
//!    cases" (§8 conclusion 2).
//! 3. **Optimal** (`solve_optimal`) — minimum total buffer stages. The
//!    problem is the linear-programming dual of a min-cost flow (§8
//!    conclusion 3); we solve the flow side by cycle canceling on the
//!    residual network (starting from the feasible all-ones flow that the
//!    incidence structure provides) and read the optimal potentials back
//!    off the residual graph by complementary slackness.

use crate::problem::{BArc, BalanceProblem, BalanceSolution};

/// Topological order of the contracted constraint graph. The contracted
/// graph is a DAG (frozen regions are whole SCC interiors), so this always
/// succeeds for problems produced by `extract`.
fn topo_order(p: &BalanceProblem) -> Vec<usize> {
    let mut indeg = vec![0usize; p.n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); p.n];
    for (k, a) in p.arcs.iter().enumerate() {
        indeg[a.v] += 1;
        out[a.u].push(k);
    }
    let mut stack: Vec<usize> = (0..p.n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(p.n);
    while let Some(u) = stack.pop() {
        order.push(u);
        for &k in &out[u] {
            let v = p.arcs[k].v;
            indeg[v] -= 1;
            if indeg[v] == 0 {
                stack.push(v);
            }
        }
    }
    assert_eq!(order.len(), p.n, "contracted balance graph has a cycle");
    order
}

/// ASAP balancing: every supernode fires as early as its latest input
/// allows.
pub fn solve_asap(p: &BalanceProblem) -> BalanceSolution {
    let order = topo_order(p);
    let mut pot = vec![0i64; p.n];
    let mut in_arcs: Vec<Vec<usize>> = vec![Vec::new(); p.n];
    for (k, a) in p.arcs.iter().enumerate() {
        in_arcs[a.v].push(k);
    }
    for &v in &order {
        let lb = in_arcs[v]
            .iter()
            .map(|&k| pot[p.arcs[k].u] + p.arcs[k].w)
            .max();
        if let Some(lb) = lb {
            pot[v] = lb;
        }
    }
    BalanceSolution::from_potentials(p, pot)
}

/// ALAP balancing: every supernode fires as late as its earliest consumer
/// allows (the mirror of ASAP; useful as a second feasible baseline and
/// in slack analyses — slack(n) = π_alap(n) − π_asap(n)).
pub fn solve_alap(p: &BalanceProblem) -> BalanceSolution {
    let asap = solve_asap(p);
    let mut out_arcs: Vec<Vec<usize>> = vec![Vec::new(); p.n];
    for (k, a) in p.arcs.iter().enumerate() {
        out_arcs[a.u].push(k);
    }
    let order = topo_order(p);
    // Anchor the latest possible completion at the ASAP horizon so the
    // two schedules are directly comparable.
    let horizon = asap.potential.iter().copied().max().unwrap_or(0);
    let mut pot = vec![horizon; p.n];
    for &u in order.iter().rev() {
        let ub = out_arcs[u]
            .iter()
            .map(|&k| pot[p.arcs[k].v] - p.arcs[k].w)
            .min();
        if let Some(ub) = ub {
            pot[u] = ub;
        }
    }
    BalanceSolution::from_potentials(p, pot)
}

/// Coordinate-descent improvement over ASAP: slide each supernode within
/// its slack window in the direction that reduces total buffering, until a
/// fixpoint (or `max_passes`).
pub fn solve_heuristic(p: &BalanceProblem, max_passes: usize) -> BalanceSolution {
    let mut sol = solve_asap(p);
    let mut in_arcs: Vec<Vec<usize>> = vec![Vec::new(); p.n];
    let mut out_arcs: Vec<Vec<usize>> = vec![Vec::new(); p.n];
    for (k, a) in p.arcs.iter().enumerate() {
        in_arcs[a.v].push(k);
        out_arcs[a.u].push(k);
    }
    let order = topo_order(p);
    for _ in 0..max_passes {
        let mut changed = false;
        // Sweep in reverse topological order (sliding consumers first
        // opens slack for producers), then forward.
        for &sweep_rev in &[true, false] {
            let iter: Box<dyn Iterator<Item = &usize>> = if sweep_rev {
                Box::new(order.iter().rev())
            } else {
                Box::new(order.iter())
            };
            for &n in iter {
                let lb = in_arcs[n]
                    .iter()
                    .map(|&k| sol.potential[p.arcs[k].u] + p.arcs[k].w)
                    .max();
                let ub = out_arcs[n]
                    .iter()
                    .map(|&k| sol.potential[p.arcs[k].v] - p.arcs[k].w)
                    .min();
                let indeg: i64 = in_arcs[n].iter().map(|&k| p.arcs[k].cost as i64).sum();
                let outdeg: i64 = out_arcs[n].iter().map(|&k| p.arcs[k].cost as i64).sum();
                // Moving π(n) up by 1 changes the cost by indeg − outdeg.
                let target = if outdeg > indeg {
                    ub
                } else if indeg > outdeg {
                    lb
                } else {
                    None
                };
                if let Some(t) = target {
                    if t != sol.potential[n] {
                        // Clamp into the feasible window.
                        let lo = lb.unwrap_or(i64::MIN);
                        let hi = ub.unwrap_or(i64::MAX);
                        let t = t.clamp(lo, hi);
                        if t != sol.potential[n] {
                            sol.potential[n] = t;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    BalanceSolution::from_potentials(p, sol.potential)
}

/// Optimal balancing via the min-cost-flow dual.
///
/// The LP `min Σ_e cost_e·(π_v − π_u − w_e)` subject to `π_v − π_u ≥ w_e`
/// has the dual `max Σ w_e f_e` subject to flow conservation with node
/// imbalance `Σ cost_in − Σ cost_out` and `f ≥ 0`; the flow `f = cost` is
/// feasible by construction. We cancel
/// positive-cost residual cycles (Bellman–Ford detection) until none
/// remain, then recover optimal potentials as longest distances in the
/// residual network. Complementary slackness makes those potentials both
/// feasible and optimal for the primal.
pub fn solve_optimal(p: &BalanceProblem) -> BalanceSolution {
    let mut flow: Vec<i64> = p.arcs.iter().map(|a| a.cost as i64).collect();

    // Residual relaxation: returns (dist, pred) for longest paths, or the
    // index of a node on a positive cycle.
    // pred[v] = (node, arc index, forward?) of the relaxing edge.
    loop {
        match find_positive_cycle(p, &flow) {
            None => break,
            Some(cycle) => {
                // cycle is a list of (arc index, forward?) to push along.
                let delta = cycle
                    .iter()
                    .filter(|&&(_, fwd)| !fwd)
                    .map(|&(k, _)| flow[k])
                    .min()
                    .expect("positive residual cycle must contain a backward arc");
                debug_assert!(delta > 0);
                for &(k, fwd) in &cycle {
                    if fwd {
                        flow[k] += delta;
                    } else {
                        flow[k] -= delta;
                    }
                }
            }
        }
    }

    // Longest distances over the final residual network.
    let mut dist = vec![0i64; p.n];
    for _ in 0..=p.n {
        let mut changed = false;
        for (k, a) in p.arcs.iter().enumerate() {
            if dist[a.u] + a.w > dist[a.v] {
                dist[a.v] = dist[a.u] + a.w;
                changed = true;
            }
            if flow[k] > 0 && dist[a.v] - a.w > dist[a.u] {
                dist[a.u] = dist[a.v] - a.w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    BalanceSolution::from_potentials(p, dist)
}

/// Optimal balancing of a **sub-problem** whose boundary is frozen:
/// supernodes listed in `pinned` must take exactly the given potentials
/// (they belong to an already-balanced surrounding region whose FIFO
/// depths are settled), and the remaining free supernodes are placed to
/// minimize total buffer cost subject to the usual `π_v − π_u ≥ w`
/// constraints.
///
/// This is the re-balancing primitive an incremental compiler wants: when
/// one source block changes, re-solve only its region against the frozen
/// boundary depths of its neighbors. Returns `Err` when the pins are
/// mutually infeasible — the surrounding depths admit no placement of the
/// free region — in which case the caller must fall back to a whole-graph
/// solve.
///
/// Implementation: each pin `π_v = φ` becomes a pair of zero-cost arcs
/// `root→v (w=φ)` and `v→root (w=−φ)` through a fresh root supernode,
/// turning the equality into two inequalities; [`solve_optimal`] on the
/// extended problem then yields potentials that satisfy every pin exactly
/// (the two arcs sandwich `π_v − π_root`), and subtracting the root's
/// potential re-normalizes to the caller's frame.
pub fn solve_sub(p: &BalanceProblem, pinned: &[(usize, i64)]) -> Result<BalanceSolution, String> {
    for &(v, _) in pinned {
        if v >= p.n {
            return Err(format!("pinned supernode {v} out of range (n = {})", p.n));
        }
    }
    for (i, &(v, phi)) in pinned.iter().enumerate() {
        if let Some(&(_, other)) = pinned[..i].iter().find(|&&(u, _)| u == v) {
            if other != phi {
                return Err(format!("supernode {v} pinned at both {other} and {phi}"));
            }
        }
    }

    // Feasibility of the pins: propagate longest paths from the pinned
    // nodes; if any pinned node's required potential exceeds its pin, the
    // frozen boundary is inconsistent with the constraints. The contracted
    // constraint graph is a DAG, so n rounds converge.
    let mut dist: Vec<Option<i64>> = vec![None; p.n];
    let mut pin_of: Vec<Option<i64>> = vec![None; p.n];
    for &(v, phi) in pinned {
        dist[v] = Some(phi);
        pin_of[v] = Some(phi);
    }
    for _ in 0..=p.n {
        let mut changed = false;
        for a in &p.arcs {
            if let Some(du) = dist[a.u] {
                let cand = du + a.w;
                if dist[a.v].is_none_or(|dv| cand > dv) {
                    if let Some(phi) = pin_of[a.v] {
                        if cand > phi {
                            return Err(format!(
                                "pins infeasible: supernode {} needs potential ≥ {cand}, \
                                 pinned at {phi}",
                                a.v
                            ));
                        }
                    } else {
                        dist[a.v] = Some(cand);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let root = p.n;
    let mut arcs = p.arcs.clone();
    for &(v, phi) in pinned {
        arcs.push(BArc {
            u: root,
            v,
            w: phi,
            cost: 0,
            arc: None,
        });
        arcs.push(BArc {
            u: v,
            v: root,
            w: -phi,
            cost: 0,
            arc: None,
        });
    }
    let ext = BalanceProblem {
        n: p.n + 1,
        arcs,
        comp_of: Vec::new(),
        rel: Vec::new(),
    };
    let sol = solve_optimal(&ext);
    let shift = sol.potential[root];
    let potential: Vec<i64> = (0..p.n).map(|v| sol.potential[v] - shift).collect();
    for &(v, phi) in pinned {
        debug_assert_eq!(potential[v], phi, "pin not honored by the extended solve");
    }
    Ok(BalanceSolution::from_potentials(p, potential))
}

/// Bellman–Ford positive-cycle detection on the residual network. Returns
/// the cycle as `(arc index, forward?)` steps, or `None` at optimality.
fn find_positive_cycle(p: &BalanceProblem, flow: &[i64]) -> Option<Vec<(usize, bool)>> {
    let n = p.n;
    let mut dist = vec![0i64; n];
    let mut pred: Vec<Option<(usize, usize, bool)>> = vec![None; n]; // (from, arc, fwd)
    let mut last_relaxed = None;
    for round in 0..=n {
        last_relaxed = None;
        for (k, a) in p.arcs.iter().enumerate() {
            if dist[a.u] + a.w > dist[a.v] {
                dist[a.v] = dist[a.u] + a.w;
                pred[a.v] = Some((a.u, k, true));
                last_relaxed = Some(a.v);
            }
            if flow[k] > 0 && dist[a.v] - a.w > dist[a.u] {
                dist[a.u] = dist[a.v] - a.w;
                pred[a.u] = Some((a.v, k, false));
                last_relaxed = Some(a.u);
            }
        }
        last_relaxed?;
        let _ = round;
    }
    // A relaxation in round n ⇒ positive cycle. Walk back n steps to land
    // on the cycle, then collect it.
    let mut x = last_relaxed.expect("relaxed in final round");
    for _ in 0..n {
        x = pred[x].expect("relaxed node has a predecessor").0;
    }
    let start = x;
    let mut cycle = Vec::new();
    let mut cur = start;
    loop {
        let (from, arc, fwd) = pred[cur].expect("cycle nodes have predecessors");
        cycle.push((arc, fwd));
        cur = from;
        if cur == start {
            break;
        }
    }
    cycle.reverse();
    Some(cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{extract, BalanceProblem};
    use valpipe_ir::opcode::Opcode;
    use valpipe_ir::value::BinOp;
    use valpipe_ir::Graph;

    /// Hand-built problem: the classic "join of three chains" where ASAP
    /// over-buffers but shifting a shared producer is cheaper.
    fn chains_problem() -> BalanceProblem {
        // s → a (w1); s → b1 → b2 → b3 (w1 each); a → t; b3 → t.
        // ASAP pins s=0: a=1, b3=3, t=4 ⇒ slack 2 on a→t.
        // Optimal slides a to 3 (slack 2 moved onto s→a? no: s has two
        // consumers, so the slack must be buffered somewhere — total is 2
        // either way here; see the fan test below for a real gap).
        let mut g = Graph::new();
        let s = g.add_node(Opcode::Source("s".into()), "s");
        let a = g.cell(Opcode::Id, "a", &[s.into()]);
        let b1 = g.cell(Opcode::Id, "b1", &[s.into()]);
        let b2 = g.cell(Opcode::Id, "b2", &[b1.into()]);
        let b3 = g.cell(Opcode::Id, "b3", &[b2.into()]);
        let t = g.cell(Opcode::Bin(BinOp::Add), "t", &[a.into(), b3.into()]);
        let _ = g.cell(Opcode::Sink("o".into()), "o", &[t.into()]);
        extract(&g).unwrap()
    }

    /// A graph where the optimum genuinely beats ASAP: one producer fans
    /// out to K parallel deep consumers plus one shallow consumer. ASAP
    /// buffers every deep branch; the optimum delays the producer's
    /// shallow branch only.
    fn fan_graph(k: usize, depth: usize) -> Graph {
        let mut g = Graph::new();
        let s = g.add_node(Opcode::Source("s".into()), "s");
        let shallow = g.cell(Opcode::Id, "sh", &[s.into()]);
        let mut join_inputs = vec![shallow];
        let deep_src = g.add_node(Opcode::Source("d".into()), "d");
        for kk in 0..k {
            let mut prev = deep_src;
            for dd in 0..depth {
                prev = g.cell(Opcode::Id, format!("c{kk}_{dd}"), &[prev.into()]);
            }
            join_inputs.push(prev);
        }
        // Pairwise joins (ADD) down to one output.
        let mut cur = join_inputs[0];
        for (j, &other) in join_inputs[1..].iter().enumerate() {
            cur = g.cell(
                Opcode::Bin(BinOp::Add),
                format!("j{j}"),
                &[cur.into(), other.into()],
            );
        }
        let _ = g.cell(Opcode::Sink("o".into()), "o", &[cur.into()]);
        g
    }

    #[test]
    fn asap_feasible_on_chains() {
        let p = chains_problem();
        let sol = solve_asap(&p);
        assert!(sol.is_feasible(&p));
        assert_eq!(sol.total_buffers, 2);
    }

    #[test]
    fn optimal_feasible_and_no_worse() {
        let p = chains_problem();
        let asap = solve_asap(&p);
        let opt = solve_optimal(&p);
        assert!(opt.is_feasible(&p));
        assert!(opt.total_buffers <= asap.total_buffers);
    }

    #[test]
    fn optimal_beats_asap_on_fan() {
        let g = fan_graph(3, 4);
        let p = extract(&g).unwrap();
        let asap = solve_asap(&p);
        let opt = solve_optimal(&p);
        let heur = solve_heuristic(&p, 50);
        assert!(opt.is_feasible(&p));
        assert!(heur.is_feasible(&p));
        assert!(
            opt.total_buffers < asap.total_buffers,
            "opt {} !< asap {}",
            opt.total_buffers,
            asap.total_buffers
        );
        assert!(heur.total_buffers <= asap.total_buffers);
        assert!(opt.total_buffers <= heur.total_buffers);
    }

    #[test]
    fn optimal_on_empty_and_single() {
        let p = BalanceProblem {
            n: 1,
            arcs: vec![],
            comp_of: vec![0],
            rel: vec![0],
        };
        let sol = solve_optimal(&p);
        assert_eq!(sol.total_buffers, 0);
    }

    #[test]
    fn heuristic_is_fixpoint_stable() {
        let g = fan_graph(2, 3);
        let p = extract(&g).unwrap();
        let h1 = solve_heuristic(&p, 50);
        // Re-running from the heuristic's result must not change it.
        let h2 = solve_heuristic(&p, 50);
        assert_eq!(h1.total_buffers, h2.total_buffers);
    }

    #[test]
    fn sub_solve_with_optimal_pins_matches_optimal() {
        // Pinning every supernode at the optimal potentials must return
        // exactly the optimal solution (nothing left to optimize).
        let g = fan_graph(3, 4);
        let p = extract(&g).unwrap();
        let opt = solve_optimal(&p);
        let pins: Vec<(usize, i64)> = opt.potential.iter().copied().enumerate().collect();
        let sub = solve_sub(&p, &pins).unwrap();
        assert!(sub.is_feasible(&p));
        assert_eq!(sub.potential, opt.potential);
        assert_eq!(sub.total_buffers, opt.total_buffers);
    }

    #[test]
    fn sub_solve_honors_a_partial_boundary() {
        // Freeze only the endpoints of the fan at ASAP potentials; the
        // interior is re-placed optimally *within* that frozen frame, so
        // the result is feasible, exact on the pins, and no worse than
        // ASAP itself (which is one feasible completion of those pins).
        let g = fan_graph(3, 4);
        let p = extract(&g).unwrap();
        let asap = solve_asap(&p);
        let pins = [
            (0usize, asap.potential[0]),
            (p.n - 1, asap.potential[p.n - 1]),
        ];
        let sub = solve_sub(&p, &pins).unwrap();
        assert!(sub.is_feasible(&p));
        for &(v, phi) in &pins {
            assert_eq!(sub.potential[v], phi);
        }
        assert!(sub.total_buffers <= asap.total_buffers);
    }

    #[test]
    fn sub_solve_rejects_infeasible_pins() {
        // Pin both endpoints of a constraint arc closer together than its
        // weight allows: π_v − π_u ≥ w has no solution.
        let p = chains_problem();
        let a = p.arcs.iter().find(|a| a.w > 0).unwrap();
        let pins = [(a.u, 0i64), (a.v, a.w - 1)];
        assert!(solve_sub(&p, &pins).is_err());
        // Conflicting duplicate pins are rejected up front.
        assert!(solve_sub(&p, &[(0, 0), (0, 1)]).is_err());
        // Out-of-range pins are rejected.
        assert!(solve_sub(&p, &[(p.n, 0)]).is_err());
    }
}
