//! # valpipe-balance — pipeline balancing for data flow instruction graphs
//!
//! Fully pipelined operation requires every path through an instruction
//! graph to carry equal delay (Dennis & Gao, ICPP 1983, §3). This crate
//! extracts the balancing constraint system from a program
//! ([`problem::extract`]), solves it three ways — ASAP longest path, a
//! buffer-reducing heuristic, and the provably optimal min-cost-flow dual
//! ([`solve::solve_optimal`], §8 conclusions 1–3) — and inserts the
//! resulting FIFO buffers back into the graph ([`problem::apply`]).
//!
//! Feedback loops (for-iter bodies) are detected as strongly connected
//! components, frozen (buffering a loop arc would stretch the cycle and
//! destroy its rate), and contracted into supernodes before solving.

#![warn(missing_docs)]

pub mod problem;
pub mod solve;

pub use problem::{apply, extract, BalanceProblem, BalanceSolution, ProblemError};
pub use solve::{solve_alap, solve_asap, solve_heuristic, solve_optimal, solve_sub};

use valpipe_ir::Graph;

/// Which balancing algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalanceMode {
    /// Longest-path ASAP balancing (baseline).
    Asap,
    /// ASAP followed by coordinate-descent buffer reduction.
    #[default]
    Heuristic,
    /// Optimal (minimum total buffer stages) via the min-cost-flow dual.
    Optimal,
    /// Insert no buffers (for ablation experiments).
    None,
}

/// Balance a graph in place: extract, solve with the chosen mode, insert
/// FIFOs. Returns the number of buffer stages added.
pub fn balance(g: &mut Graph, mode: BalanceMode) -> Result<u64, ProblemError> {
    if mode == BalanceMode::None {
        return Ok(0);
    }
    let p = problem::extract(g)?;
    let sol = match mode {
        BalanceMode::Asap => solve::solve_asap(&p),
        BalanceMode::Heuristic => solve::solve_heuristic(&p, 64),
        BalanceMode::Optimal => solve::solve_optimal(&p),
        BalanceMode::None => unreachable!(),
    };
    Ok(problem::apply(g, &p, &sol))
}
