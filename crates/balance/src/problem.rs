//! Extraction of a balancing problem from a machine-level program.
//!
//! Fully pipelined operation requires every path through the instruction
//! graph to carry equal delay (paper §3). We formalize this as a system of
//! difference constraints: assign each cell a *potential* `π` (its firing
//! phase within a wave, in instruction times) such that for every forward
//! arc `u → v` with weight `w`,
//!
//! ```text
//! π(v) = π(u) + w + d(e),        d(e) ≥ 0
//! ```
//!
//! where `d(e)` is the FIFO depth inserted on the arc. The weight is the
//! producing cell's latency (1) plus the arc's *stream-phase* lead (an
//! array tap whose selection window starts `s` positions into the wave is
//! `2·s` instruction times early, because consecutive elements of a fully
//! pipelined stream are 2 instruction times apart — the paper's Fig. 4
//! skew).
//!
//! Arcs carrying initial tokens are loop back-edges and are excluded.
//! Forward arcs *inside* a feedback loop (detected as arcs whose endpoints
//! share a strongly connected component of the full graph) are **frozen**:
//! buffering them would stretch the cycle and destroy the loop's rate, so
//! they become equality constraints. Frozen regions are contracted into
//! supernodes with fixed internal offsets before solving.

use valpipe_ir::graph::Graph;
use valpipe_ir::ArcId;

/// One constraint arc of the balancing problem (already contracted).
#[derive(Debug, Clone, Copy)]
pub struct BArc {
    /// Source supernode.
    pub u: usize,
    /// Target supernode.
    pub v: usize,
    /// Weight `w` (may be negative after contraction).
    pub w: i64,
    /// Buffer cost per slack unit: 1 for real arcs (a FIFO stage is an
    /// identity cell), 0 for virtual anchor arcs (a source starting late
    /// is free — backpressure absorbs it without buffers).
    pub cost: u32,
    /// The original graph arc this constraint came from (`None` for
    /// virtual anchor arcs — no FIFO can be inserted there).
    pub arc: Option<ArcId>,
}

/// A contracted balancing problem.
#[derive(Debug, Clone)]
pub struct BalanceProblem {
    /// Number of supernodes.
    pub n: usize,
    /// Constraint arcs (bufferable).
    pub arcs: Vec<BArc>,
    /// Supernode of each original cell.
    pub comp_of: Vec<usize>,
    /// Fixed offset of each original cell within its supernode.
    pub rel: Vec<i64>,
}

/// Why a problem could not be extracted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// The forward graph (initial-token arcs removed) has a cycle, i.e. an
    /// unseeded feedback loop.
    ForwardCycle,
    /// A feedback loop's interior is itself unbalanced: two frozen paths
    /// between the same cells disagree on delay, so no FIFO placement
    /// outside the loop can fix it.
    InconsistentLoop {
        /// A cell where the disagreement was detected.
        node: usize,
    },
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::ForwardCycle => write!(f, "unseeded feedback cycle"),
            ProblemError::InconsistentLoop { node } => {
                write!(f, "feedback loop interior is unbalanced at cell {node}")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

/// Tarjan strongly-connected components over the *full* graph (including
/// initial-token arcs). Returns the component index per node.
pub fn sccs(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Iterative Tarjan to avoid recursion limits on long pipelines.
    enum Frame {
        Enter(usize),
        Resume(usize, usize), // (node, next successor position)
    }
    let succs: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            g.nodes[i]
                .outputs
                .iter()
                .map(|a| g.arcs[a.idx()].dst.idx())
                .collect()
        })
        .collect();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames = vec![Frame::Enter(start)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut k) => {
                    let mut descended = false;
                    while k < succs[v].len() {
                        let wnode = succs[v][k];
                        k += 1;
                        if index[wnode] == usize::MAX {
                            frames.push(Frame::Resume(v, k));
                            frames.push(Frame::Enter(wnode));
                            descended = true;
                            break;
                        } else if on_stack[wnode] {
                            low[v] = low[v].min(index[wnode]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().unwrap();
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                    // Propagate lowlink to parent (next Resume on the stack).
                    if let Some(Frame::Resume(parent, _)) = frames.last() {
                        let p = *parent;
                        low[p] = low[p].min(low[v]);
                    }
                }
            }
        }
    }
    comp
}

/// The balancing weight of a forward arc: producer latency 1 plus the
/// stream-phase lead recorded by the compiler.
pub fn arc_weight(g: &Graph, a: ArcId) -> i64 {
    1 + g.arcs[a.idx()].phase as i64
}

/// Extract and contract the balancing problem for `g`, anchoring every
/// `Source` cell at start time 0 (see [`extract_anchored`]).
pub fn extract(g: &Graph) -> Result<BalanceProblem, ProblemError> {
    let anchors: Vec<(valpipe_ir::NodeId, i64)> = g
        .node_ids()
        .filter(|n| matches!(g.nodes[n.idx()].op, valpipe_ir::Opcode::Source(_)))
        .map(|n| (n, 0))
        .collect();
    extract_anchored(g, &anchors)
}

/// Extract and contract the balancing problem for `g`.
///
/// `anchors` pins the earliest possible firing phase of generator cells
/// relative to a common origin: a pair `(node, a)` adds the zero-cost
/// constraint `π(node) ≥ π(origin) + a`. The compiler anchors each input
/// `Source` of an array over `[lo, hi]` at `a = −2·lo`, expressing that
/// the machine starts feeding every input at absolute time 0, so the
/// element for index `i` cannot arrive before `2·(i − lo)`. Sliding a
/// source *later* costs nothing (the first-token stall is a transient the
/// pipeline absorbs), which is why anchor arcs carry cost 0.
pub fn extract_anchored(
    g: &Graph,
    anchors: &[(valpipe_ir::NodeId, i64)],
) -> Result<BalanceProblem, ProblemError> {
    if g.forward_topo_order().is_none() {
        return Err(ProblemError::ForwardCycle);
    }
    let scc = sccs(g);
    let n = g.node_count();

    // Union nodes connected by frozen arcs (forward arcs inside an SCC).
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let mut frozen = vec![false; g.arc_count()];
    for (ai, e) in g.arcs.iter().enumerate() {
        if e.is_forward() && scc[e.src.idx()] == scc[e.dst.idx()] {
            frozen[ai] = true;
            let (ru, rv) = (
                find(&mut parent, e.src.idx()),
                find(&mut parent, e.dst.idx()),
            );
            if ru != rv {
                parent[ru] = rv;
            }
        }
    }

    // Number the supernodes and compute intra-component offsets by
    // propagating equalities along frozen arcs.
    let mut comp_of = vec![usize::MAX; n];
    let mut next = 0usize;
    for i in 0..n {
        let r = find(&mut parent, i);
        if comp_of[r] == usize::MAX {
            comp_of[r] = next;
            next += 1;
        }
        comp_of[i] = comp_of[r];
    }
    let mut rel = vec![i64::MIN; n];
    // BFS within each frozen component along frozen arcs (both directions).
    let mut adj: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n];
    for (ai, e) in g.arcs.iter().enumerate() {
        if frozen[ai] {
            let w = arc_weight(g, ArcId(ai as u32));
            adj[e.src.idx()].push((e.dst.idx(), w));
            adj[e.dst.idx()].push((e.src.idx(), -w));
        }
    }
    for start in 0..n {
        if rel[start] != i64::MIN {
            continue;
        }
        rel[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &(v, w) in &adj[u] {
                let want = rel[u] + w;
                if rel[v] == i64::MIN {
                    rel[v] = want;
                    queue.push_back(v);
                } else if rel[v] != want {
                    return Err(ProblemError::InconsistentLoop { node: v });
                }
            }
        }
    }

    let mut arcs: Vec<BArc> = g
        .arc_ids()
        .filter(|a| g.arcs[a.idx()].is_forward() && !frozen[a.idx()])
        .map(|a| {
            let e = &g.arcs[a.idx()];
            BArc {
                u: comp_of[e.src.idx()],
                v: comp_of[e.dst.idx()],
                w: arc_weight(g, a) + rel[e.src.idx()] - rel[e.dst.idx()],
                cost: 1,
                arc: Some(a),
            }
        })
        .collect();
    // Virtual origin node anchoring the generators.
    if !anchors.is_empty() {
        let origin = next;
        for &(node, a) in anchors {
            arcs.push(BArc {
                u: origin,
                v: comp_of[node.idx()],
                w: a - rel[node.idx()],
                cost: 0,
                arc: None,
            });
        }
        return Ok(BalanceProblem {
            n: next + 1,
            arcs,
            comp_of,
            rel,
        });
    }

    Ok(BalanceProblem {
        n: next,
        arcs,
        comp_of,
        rel,
    })
}

/// A potential assignment (per supernode) plus the implied FIFO depths.
#[derive(Debug, Clone)]
pub struct BalanceSolution {
    /// Potential per supernode.
    pub potential: Vec<i64>,
    /// FIFO depth per constraint arc (same order as `BalanceProblem::arcs`).
    pub depths: Vec<u32>,
    /// Total inserted buffer stages.
    pub total_buffers: u64,
}

impl BalanceSolution {
    /// Build a solution from potentials, computing depths; panics if the
    /// potentials are infeasible (negative slack).
    pub fn from_potentials(problem: &BalanceProblem, potential: Vec<i64>) -> Self {
        let depths: Vec<u32> = problem
            .arcs
            .iter()
            .map(|a| {
                let slack = potential[a.v] - potential[a.u] - a.w;
                assert!(slack >= 0, "infeasible potentials: slack {slack} on arc");
                u32::try_from(slack).expect("slack exceeds u32")
            })
            .collect();
        let total_buffers = problem
            .arcs
            .iter()
            .zip(&depths)
            .map(|(a, &d)| a.cost as u64 * d as u64)
            .sum();
        BalanceSolution {
            potential,
            depths,
            total_buffers,
        }
    }

    /// Check feasibility of the solution against the problem.
    pub fn is_feasible(&self, problem: &BalanceProblem) -> bool {
        problem
            .arcs
            .iter()
            .zip(&self.depths)
            .all(|(a, &d)| self.potential[a.v] - self.potential[a.u] == a.w + d as i64)
    }
}

/// Insert the solution's FIFOs into the graph. Returns the number of
/// buffer *stages* added (equal to `solution.total_buffers`).
pub fn apply(g: &mut Graph, problem: &BalanceProblem, solution: &BalanceSolution) -> u64 {
    let mut added = 0u64;
    for (barc, &d) in problem.arcs.iter().zip(&solution.depths) {
        if d > 0 {
            if let Some(arc) = barc.arc {
                g.insert_fifo_on_arc(arc, d);
                added += d as u64;
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use valpipe_ir::opcode::Opcode;
    use valpipe_ir::value::{BinOp, Value};
    use valpipe_ir::Graph;

    fn diamond() -> Graph {
        // a → b → d ; a → d   (unbalanced diamond)
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        let d = g.cell(Opcode::Bin(BinOp::Add), "d", &[b.into(), a.into()]);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[d.into()]);
        g
    }

    #[test]
    fn extract_diamond() {
        let g = diamond();
        let p = extract(&g).unwrap();
        assert_eq!(p.n, 5); // 4 supernodes + the anchoring origin
        assert_eq!(p.arcs.len(), 5); // 4 real arcs + 1 source anchor
        assert_eq!(p.arcs.iter().filter(|a| a.cost == 1).count(), 4);
    }

    #[test]
    fn scc_finds_loop() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Id, "a");
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        let c = g.cell(Opcode::Id, "c", &[b.into()]);
        g.connect_init(c, a, 0, Value::Int(0));
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[c.into()]);
        let comp = sccs(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn loop_interior_frozen_and_contracted() {
        // Loop a→b→c→(init)→a plus an external source feeding b? No — keep
        // the canonical shape: loop cells merge into one supernode.
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Bin(BinOp::Add), "a");
        let src = g.add_node(Opcode::Source("in".into()), "in");
        g.connect(src, a, 1);
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        g.connect_init(b, a, 0, Value::Int(0));
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[b.into()]);
        let p = extract(&g).unwrap();
        // a and b share a supernode; src and sink have their own.
        assert_eq!(p.comp_of[0], p.comp_of[2]);
        assert_ne!(p.comp_of[0], p.comp_of[1]);
        // b is one stage after a inside the loop.
        assert_eq!(p.rel[2] - p.rel[0], 1);
        // The frozen arc a→b is not a constraint arc.
        assert_eq!(p.arcs.iter().filter(|a| a.arc.is_some()).count(), 2); // src→a, b→sink
    }

    #[test]
    fn inconsistent_loop_detected() {
        // Loop with an internal diamond of unequal arm lengths: a→b→c→a
        // (init) and a→c directly. Both a→b→c and a→c are frozen, but they
        // disagree (2 vs 1).
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Id, "a");
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        let c = g.add_node(Opcode::Bin(BinOp::Add), "c");
        g.connect(b, c, 0);
        g.connect(a, c, 1);
        g.connect_init(c, a, 0, Value::Int(0));
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[c.into()]);
        assert!(matches!(
            extract(&g),
            Err(ProblemError::InconsistentLoop { .. })
        ));
    }

    #[test]
    fn phase_contributes_to_weight() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let b = g.add_node(Opcode::Id, "b");
        g.connect_phase(a, b, 0, 4);
        let _ = g.cell(Opcode::Sink("out".into()), "out", &[b.into()]);
        let p = extract(&g).unwrap();
        let arc = p.arcs.iter().find(|x| x.w == 5).expect("weight 1 + 4");
        assert_eq!(arc.w, 5);
    }

    #[test]
    fn apply_inserts_fifos() {
        let mut g = diamond();
        let p = extract(&g).unwrap();
        let sol = crate::solve::solve_asap(&p);
        assert_eq!(sol.total_buffers, 1); // slack on the short diamond arm
        let before = g.node_count();
        apply(&mut g, &p, &sol);
        assert_eq!(g.node_count(), before + 1);
        assert!(g.nodes.iter().any(|n| matches!(n.op, Opcode::Fifo(1))));
    }
}
