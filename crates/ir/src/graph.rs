//! The machine-level data flow program: a directed graph of instruction
//! cells (nodes) and destination links (arcs).
//!
//! Every arc stands for **both** the forward path of a result packet and the
//! reverse path of the acknowledge packet (paper §3) and can hold at most
//! one data token — the static architecture's one-instance-per-instruction
//! rule. Arcs on feedback paths may carry an **initial token** (a preloaded
//! operand value in the target cell), which is how iteration state is seeded
//! in Figs. 7 and 8.

use crate::opcode::Opcode;
use crate::value::Value;

/// Index of an instruction cell within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of an arc (destination link) within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArcId(pub u32);

impl NodeId {
    /// Usize view for indexing.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ArcId {
    /// Usize view for indexing.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// How an input operand port of a cell receives its value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PortBinding {
    /// Not yet connected (invalid in a finished program).
    Unbound,
    /// Receives result packets over the given arc.
    Wired(ArcId),
    /// A literal constant held in the cell's operand field; always present
    /// and never consumed.
    Lit(Value),
}

/// One instruction cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operation code.
    pub op: Opcode,
    /// Human-readable label for listings and Graphviz output.
    pub label: String,
    /// Input operand ports, length `op.arity()`.
    pub inputs: Vec<PortBinding>,
    /// Outgoing arcs (destination fields); the result packet is replicated
    /// to every one, and the cell re-enables only after all of them have
    /// been acknowledged.
    pub outputs: Vec<ArcId>,
    /// Provenance id: index into the compiler's [`crate::prov::Provenance`]
    /// table naming the source statement this cell implements. Purely a
    /// side annotation — excluded from [`Graph::fingerprint`] and the JSON
    /// machine-code format; 0 on hand-built graphs (the whole-program
    /// fallback entry).
    pub src: u32,
}

/// One destination link.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Producing cell.
    pub src: NodeId,
    /// Consuming cell.
    pub dst: NodeId,
    /// Which operand port of `dst` this link feeds.
    pub dst_port: usize,
    /// Initial token preloaded on the link (feedback seeding). An arc with
    /// an initial token is by construction a loop back-edge and is excluded
    /// from acyclic balancing.
    pub initial: Option<Value>,
    /// Declared loop back-edge whose liveness is ensured by construction
    /// (e.g. a MERGE-initialized feedback path, paper Figs. 7–8). Treated
    /// like an initial-token arc by cycle analyses.
    pub back: bool,
    /// Extra *stream-phase* weight in instruction times, used by the
    /// balancer: a tap at constant offset `c` consumes the element for
    /// index `i + c`, which arrives `2·c` instruction times away from the
    /// reference element (paper Fig. 4's skew). Negative for backward
    /// offsets.
    pub phase: i32,
}

impl Edge {
    /// Whether this arc participates in the forward (acyclic) graph.
    pub fn is_forward(&self) -> bool {
        self.initial.is_none() && !self.back
    }
}

/// A complete machine-level data flow program.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Instruction cells, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// Destination links, indexed by [`ArcId`].
    pub arcs: Vec<Edge>,
    /// Ambient provenance id stamped onto cells created by [`Graph::add_node`]
    /// (see [`Node::src`]). The compiler points this at the statement it is
    /// currently lowering via [`Graph::set_provenance`].
    pub cur_src: u32,
}

/// Anything that can feed an operand port while building a graph: an
/// existing cell's output, or a literal constant.
#[derive(Debug, Clone, Copy)]
pub enum In {
    /// Wire from this cell's output.
    Node(NodeId),
    /// Literal operand.
    Lit(Value),
}

impl From<NodeId> for In {
    fn from(n: NodeId) -> Self {
        In::Node(n)
    }
}
impl From<Value> for In {
    fn from(v: Value) -> Self {
        In::Lit(v)
    }
}
impl From<f64> for In {
    fn from(v: f64) -> Self {
        In::Lit(Value::Real(v))
    }
}
impl From<i64> for In {
    fn from(v: i64) -> Self {
        In::Lit(Value::Int(v))
    }
}
impl From<bool> for In {
    fn from(v: bool) -> Self {
        In::Lit(Value::Bool(v))
    }
}

impl Graph {
    /// Empty program.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of instruction cells.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Add an instruction cell with all ports unbound. The cell is stamped
    /// with the ambient provenance id (see [`Graph::set_provenance`]).
    pub fn add_node(&mut self, op: Opcode, label: impl Into<String>) -> NodeId {
        let arity = op.arity();
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            label: label.into(),
            inputs: vec![PortBinding::Unbound; arity],
            outputs: Vec::new(),
            src: self.cur_src,
        });
        id
    }

    /// Point the ambient provenance at the statement being lowered;
    /// subsequently created cells carry `src`. Returns the previous value
    /// so callers can restore an enclosing scope.
    pub fn set_provenance(&mut self, src: u32) -> u32 {
        std::mem::replace(&mut self.cur_src, src)
    }

    /// Connect `src`'s output to operand port `dst_port` of `dst`.
    pub fn connect(&mut self, src: NodeId, dst: NodeId, dst_port: usize) -> ArcId {
        self.connect_full(src, dst, dst_port, None, 0)
    }

    /// Connect a declared loop back-edge (see [`Edge::back`]).
    pub fn connect_back(&mut self, src: NodeId, dst: NodeId, dst_port: usize) -> ArcId {
        let a = self.connect_full(src, dst, dst_port, None, 0);
        self.arcs[a.idx()].back = true;
        a
    }

    /// Connect with an initial token preloaded on the link.
    pub fn connect_init(&mut self, src: NodeId, dst: NodeId, dst_port: usize, tok: Value) -> ArcId {
        self.connect_full(src, dst, dst_port, Some(tok), 0)
    }

    /// Connect with an explicit stream-phase weight (see [`Edge::phase`]).
    pub fn connect_phase(
        &mut self,
        src: NodeId,
        dst: NodeId,
        dst_port: usize,
        phase: i32,
    ) -> ArcId {
        self.connect_full(src, dst, dst_port, None, phase)
    }

    /// Fully general connection.
    pub fn connect_full(
        &mut self,
        src: NodeId,
        dst: NodeId,
        dst_port: usize,
        initial: Option<Value>,
        phase: i32,
    ) -> ArcId {
        assert!(
            dst_port < self.nodes[dst.idx()].inputs.len(),
            "port out of range"
        );
        assert!(
            matches!(self.nodes[dst.idx()].inputs[dst_port], PortBinding::Unbound),
            "port {dst_port} of node {} ({}) already bound",
            dst.idx(),
            self.nodes[dst.idx()].label
        );
        let id = ArcId(self.arcs.len() as u32);
        self.arcs.push(Edge {
            src,
            dst,
            dst_port,
            initial,
            back: false,
            phase,
        });
        self.nodes[dst.idx()].inputs[dst_port] = PortBinding::Wired(id);
        self.nodes[src.idx()].outputs.push(id);
        id
    }

    /// Bind a literal operand to an input port.
    pub fn set_lit(&mut self, dst: NodeId, dst_port: usize, v: Value) {
        assert!(
            matches!(self.nodes[dst.idx()].inputs[dst_port], PortBinding::Unbound),
            "port already bound"
        );
        self.nodes[dst.idx()].inputs[dst_port] = PortBinding::Lit(v);
    }

    /// Bind an [`In`] (wire or literal) to a port.
    pub fn bind(&mut self, input: In, dst: NodeId, dst_port: usize) -> Option<ArcId> {
        match input {
            In::Node(src) => Some(self.connect(src, dst, dst_port)),
            In::Lit(v) => {
                self.set_lit(dst, dst_port, v);
                None
            }
        }
    }

    /// Create a cell and bind all of its operand ports in one step.
    pub fn cell(&mut self, op: Opcode, label: impl Into<String>, inputs: &[In]) -> NodeId {
        let id = self.add_node(op, label);
        assert_eq!(
            inputs.len(),
            self.nodes[id.idx()].op.arity(),
            "wrong operand count"
        );
        for (port, &input) in inputs.iter().enumerate() {
            self.bind(input, id, port);
        }
        id
    }

    /// The arcs leaving `n`.
    pub fn out_arcs(&self, n: NodeId) -> &[ArcId] {
        &self.nodes[n.idx()].outputs
    }

    /// The arcs entering `n` (one per wired port), in port order.
    pub fn in_arcs(&self, n: NodeId) -> impl Iterator<Item = ArcId> + '_ {
        self.nodes[n.idx()].inputs.iter().filter_map(|p| match p {
            PortBinding::Wired(a) => Some(*a),
            _ => None,
        })
    }

    /// Successor cells of `n` (with multiplicity).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[n.idx()]
            .outputs
            .iter()
            .map(|a| self.arcs[a.idx()].dst)
    }

    /// Predecessor cells of `n` (with multiplicity).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_arcs(n).map(|a| self.arcs[a.idx()].src)
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All arc ids.
    pub fn arc_ids(&self) -> impl Iterator<Item = ArcId> {
        (0..self.arcs.len() as u32).map(ArcId)
    }

    /// Topological order of the graph **ignoring loop back-edges** (arcs
    /// carrying initial tokens or declared `back`). Returns `None` if the
    /// remaining forward graph has a cycle — a feedback loop with no
    /// liveness seed, i.e. a deadlocked program.
    pub fn forward_topo_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.arcs {
            if e.is_forward() {
                indeg[e.dst.idx()] += 1;
            }
        }
        let mut stack: Vec<NodeId> = self.node_ids().filter(|id| indeg[id.idx()] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = stack.pop() {
            order.push(id);
            for &a in &self.nodes[id.idx()].outputs {
                let e = &self.arcs[a.idx()];
                if e.is_forward() {
                    indeg[e.dst.idx()] -= 1;
                    if indeg[e.dst.idx()] == 0 {
                        stack.push(e.dst);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Replace every symbolic [`Opcode::Fifo`] cell by a chain of identity
    /// cells of the same depth — the actual machine realization of a buffer.
    /// Returns the number of identity cells created.
    pub fn expand_fifos(&mut self) -> usize {
        let mut created = 0;
        for i in 0..self.nodes.len() {
            let depth = match self.nodes[i].op {
                Opcode::Fifo(d) => d,
                _ => continue,
            };
            assert!(depth >= 1, "FIFO depth must be >= 1");
            // Turn the FIFO cell itself into the first identity stage…
            self.nodes[i].op = Opcode::Id;
            let base_label = std::mem::take(&mut self.nodes[i].label);
            self.nodes[i].label = format!("{base_label}#0");
            // …then splice `depth - 1` further stages onto its output side.
            // The stages inherit the FIFO cell's provenance.
            let fifo_src = self.nodes[i].src;
            let mut tail = NodeId(i as u32);
            let moved_outputs = std::mem::take(&mut self.nodes[i].outputs);
            for k in 1..depth {
                let stage = self.add_node(Opcode::Id, format!("{base_label}#{k}"));
                self.nodes[stage.idx()].src = fifo_src;
                self.connect(tail, stage, 0);
                tail = stage;
                created += 1;
            }
            if tail == NodeId(i as u32) {
                self.nodes[i].outputs = moved_outputs;
            } else {
                for a in moved_outputs {
                    self.arcs[a.idx()].src = tail;
                    self.nodes[tail.idx()].outputs.push(a);
                }
            }
        }
        created
    }

    /// Insert an identity-chain FIFO of `depth` stages *on* an existing arc,
    /// preserving the arc's initial token (it stays on the segment entering
    /// the original destination). Returns the first inserted node, if any.
    pub fn insert_fifo_on_arc(&mut self, arc: ArcId, depth: u32) -> Option<NodeId> {
        if depth == 0 {
            return None;
        }
        let Edge {
            src, dst, dst_port, ..
        } = self.arcs[arc.idx()];
        let first = self.add_node(
            Opcode::Fifo(depth),
            format!("bal→{}", self.nodes[dst.idx()].label),
        );
        // A balancing buffer pads the consumer's operand path, so it is
        // blamed on the consuming statement.
        self.nodes[first.idx()].src = self.nodes[dst.idx()].src;
        // Rewire: src → first, first → dst (reusing the original arc for the
        // downstream segment keeps `dst`'s port binding and initial token).
        // Remove `arc` from src's output list.
        let pos = self.nodes[src.idx()]
            .outputs
            .iter()
            .position(|&a| a == arc)
            .expect("arc missing from source outputs");
        self.nodes[src.idx()].outputs.remove(pos);
        // New upstream arc src → first, carrying the original phase.
        let phase = self.arcs[arc.idx()].phase;
        self.arcs[arc.idx()].phase = 0;
        let up = ArcId(self.arcs.len() as u32);
        self.arcs.push(Edge {
            src,
            dst: first,
            dst_port: 0,
            initial: None,
            back: false,
            phase,
        });
        self.nodes[first.idx()].inputs[0] = PortBinding::Wired(up);
        self.nodes[src.idx()].outputs.push(up);
        // Original arc now originates at the FIFO.
        self.arcs[arc.idx()].src = first;
        self.nodes[first.idx()].outputs.push(arc);
        let _ = (dst, dst_port);
        Some(first)
    }

    /// Count of cells per mnemonic — handy for tests and listings.
    pub fn opcode_histogram(&self) -> std::collections::BTreeMap<String, usize> {
        let mut h = std::collections::BTreeMap::new();
        for n in &self.nodes {
            *h.entry(n.op.mnemonic()).or_insert(0) += 1;
        }
        h
    }

    /// Ids of all `Source` cells with their port names.
    pub fn sources(&self) -> Vec<(NodeId, String)> {
        self.node_ids()
            .filter_map(|id| match &self.nodes[id.idx()].op {
                Opcode::Source(name) => Some((id, name.clone())),
                _ => None,
            })
            .collect()
    }

    /// Serialize the program to JSON (the on-disk machine-code format;
    /// see [`Graph::from_json`]).
    pub fn to_json(&self) -> String {
        crate::serialize::graph_to_json(self).to_pretty()
    }

    /// Load a program from its JSON form.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let j = valpipe_util::Json::parse(s).map_err(|e| e.to_string())?;
        crate::serialize::graph_from_json(&j)
    }

    /// A structural fingerprint of the program: a 64-bit hash over every
    /// cell's opcode (including embedded control streams, index ranges
    /// and port names), every operand binding, and every arc's wiring,
    /// initial token, back-edge flag and phase. Two graphs share a
    /// fingerprint exactly when they are the same machine program —
    /// cell labels are cosmetic and deliberately excluded.
    ///
    /// The machine crate's snapshot format records this fingerprint so a
    /// checkpoint refuses to restore against a mismatched program.
    pub fn fingerprint(&self) -> u64 {
        fn push_value(words: &mut Vec<u64>, v: &Value) {
            match v {
                Value::Int(i) => words.extend([0, *i as u64]),
                Value::Real(r) => words.extend([1, r.to_bits()]),
                Value::Bool(b) => words.extend([2, *b as u64]),
            }
        }
        fn push_str(words: &mut Vec<u64>, s: &str) {
            words.push(s.len() as u64);
            for chunk in s.as_bytes().chunks(8) {
                let mut w = [0u8; 8];
                w[..chunk.len()].copy_from_slice(chunk);
                words.push(u64::from_le_bytes(w));
            }
        }
        let mut words: Vec<u64> = vec![self.nodes.len() as u64, self.arcs.len() as u64];
        for node in &self.nodes {
            match &node.op {
                Opcode::Bin(op) => words.extend([10, *op as u64]),
                Opcode::Un(op) => words.extend([11, *op as u64]),
                Opcode::Id => words.push(12),
                Opcode::TGate => words.push(13),
                Opcode::FGate => words.push(14),
                Opcode::Merge => words.push(15),
                Opcode::Fifo(d) => words.extend([16, *d as u64]),
                Opcode::CtlGen(s) => {
                    words.extend([17, s.runs().len() as u64]);
                    for run in s.runs() {
                        words.extend([run.value as u64, run.count as u64]);
                    }
                }
                Opcode::IdxGen { lo, hi } => words.extend([18, *lo as u64, *hi as u64]),
                Opcode::Source(name) => {
                    words.push(19);
                    push_str(&mut words, name);
                }
                Opcode::Sink(name) => {
                    words.push(20);
                    push_str(&mut words, name);
                }
                Opcode::AmWrite => words.push(21),
                Opcode::AmRead => words.push(22),
            }
            for input in &node.inputs {
                match input {
                    PortBinding::Unbound => words.push(30),
                    PortBinding::Wired(a) => words.extend([31, a.0 as u64]),
                    PortBinding::Lit(v) => {
                        words.push(32);
                        push_value(&mut words, v);
                    }
                }
            }
        }
        for e in &self.arcs {
            words.extend([
                e.src.0 as u64,
                e.dst.0 as u64,
                e.dst_port as u64,
                e.back as u64,
                e.phase as u64,
            ]);
            match &e.initial {
                None => words.push(40),
                Some(v) => {
                    words.push(41);
                    push_value(&mut words, v);
                }
            }
        }
        valpipe_util::hash_mix(&words)
    }

    /// Ids of all `Sink` cells with their port names.
    pub fn sinks(&self) -> Vec<(NodeId, String)> {
        self.node_ids()
            .filter_map(|id| match &self.nodes[id.idx()].op {
                Opcode::Sink(name) => Some((id, name.clone())),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BinOp;

    fn tiny() -> (Graph, NodeId, NodeId) {
        // a, b → MULT → SINK
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let b = g.add_node(Opcode::Source("b".into()), "b");
        let m = g.cell(Opcode::Bin(BinOp::Mul), "m", &[a.into(), b.into()]);
        let s = g.cell(Opcode::Sink("y".into()), "y", &[m.into()]);
        (g, m, s)
    }

    #[test]
    fn build_and_query() {
        let (g, m, s) = tiny();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.arc_count(), 3);
        assert_eq!(g.successors(m).collect::<Vec<_>>(), vec![s]);
        assert_eq!(g.predecessors(s).collect::<Vec<_>>(), vec![m]);
        assert_eq!(g.sources().len(), 2);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn topo_order_covers_all() {
        let (g, ..) = tiny();
        let order = g.forward_topo_order().unwrap();
        assert_eq!(order.len(), 4);
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        for e in &g.arcs {
            assert!(pos[&e.src] < pos[&e.dst]);
        }
    }

    #[test]
    fn cycle_without_initial_token_detected() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Id, "a");
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        g.connect(b, a, 0); // un-seeded cycle
        assert!(g.forward_topo_order().is_none());
    }

    #[test]
    fn cycle_with_initial_token_is_forward_acyclic() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Id, "a");
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        g.connect_init(b, a, 0, Value::Int(0));
        assert!(g.forward_topo_order().is_some());
    }

    #[test]
    fn expand_fifos_makes_id_chain() {
        let mut g = Graph::new();
        let src = g.add_node(Opcode::Source("a".into()), "a");
        let f = g.cell(Opcode::Fifo(3), "buf", &[src.into()]);
        let _snk = g.cell(Opcode::Sink("y".into()), "y", &[f.into()]);
        let created = g.expand_fifos();
        assert_eq!(created, 2);
        assert_eq!(g.opcode_histogram()["ID"], 3);
        // Path a → #0 → #1 → #2 → sink.
        let order = g.forward_topo_order().unwrap();
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn insert_fifo_on_arc_preserves_wiring() {
        let (mut g, m, s) = tiny();
        let arc = g.in_arcs(s).next().unwrap();
        g.insert_fifo_on_arc(arc, 2);
        // m now feeds the FIFO; the FIFO feeds the sink.
        let succ_of_m: Vec<_> = g.successors(m).collect();
        assert_eq!(succ_of_m.len(), 1);
        assert!(matches!(g.nodes[succ_of_m[0].idx()].op, Opcode::Fifo(2)));
        assert_eq!(g.predecessors(s).next(), Some(succ_of_m[0]));
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let (mut g, ..) = tiny();
        // Exercise initial tokens, phases and back arcs too.
        let id = g.add_node(Opcode::Id, "fb");
        let a = g.connect_init(g.node_ids().next().unwrap(), id, 0, Value::Int(7));
        g.arcs[a.idx()].phase = -3;
        let json = g.to_json();
        let back = Graph::from_json(&json).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.arc_count(), g.arc_count());
        assert_eq!(back.arcs[a.idx()].initial, Some(Value::Int(7)));
        assert_eq!(back.arcs[a.idx()].phase, -3);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn bad_json_reports_error() {
        assert!(Graph::from_json("{not json").is_err());
    }

    #[test]
    fn fingerprint_ignores_labels_but_sees_structure() {
        let (g, ..) = tiny();
        let fp = g.fingerprint();
        assert_eq!(fp, tiny().0.fingerprint(), "fingerprint is deterministic");

        let mut relabeled = g.clone();
        relabeled.nodes[2].label = "renamed".into();
        assert_eq!(relabeled.fingerprint(), fp, "labels are cosmetic");

        let mut retyped = g.clone();
        retyped.nodes[2].op = Opcode::Bin(BinOp::Add);
        assert_ne!(retyped.fingerprint(), fp, "opcode change must be seen");

        let mut reseeded = g.clone();
        reseeded.arcs[0].initial = Some(Value::Int(1));
        assert_ne!(reseeded.fingerprint(), fp, "initial token must be seen");

        let mut grown = g.clone();
        let id = grown.add_node(Opcode::Id, "extra");
        let _ = id;
        assert_ne!(grown.fingerprint(), fp, "extra cell must be seen");
    }

    #[test]
    fn fingerprint_survives_json_roundtrip() {
        let (mut g, ..) = tiny();
        let id = g.add_node(Opcode::Id, "fb");
        let a = g.connect_init(g.node_ids().next().unwrap(), id, 0, Value::Int(7));
        g.arcs[a.idx()].phase = -3;
        let back = Graph::from_json(&g.to_json()).unwrap();
        assert_eq!(back.fingerprint(), g.fingerprint());
    }

    #[test]
    fn literal_operands() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[a.into(), 2.0.into()]);
        assert!(matches!(
            g.nodes[add.idx()].inputs[1],
            PortBinding::Lit(Value::Real(_))
        ));
        assert_eq!(g.in_arcs(add).count(), 1);
    }
}
