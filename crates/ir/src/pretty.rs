//! Machine-code listing in the style of the paper's cell diagrams:
//! one line per instruction cell with opcode, operands, and destinations.

use crate::graph::{Graph, PortBinding};
use std::fmt::Write;

/// Render the program as a textual instruction-cell listing.
///
/// ```text
/// CELL 2  ADD      ops: cell1, lit 2        -> cell4.0
/// ```
pub fn listing(g: &Graph) -> String {
    let mut out = String::new();
    for (i, node) in g.nodes.iter().enumerate() {
        let ops = node
            .inputs
            .iter()
            .map(|p| match p {
                PortBinding::Unbound => "?".to_string(),
                PortBinding::Wired(a) => format!("cell{}", g.arcs[a.idx()].src.idx()),
                PortBinding::Lit(v) => format!("lit {v}"),
            })
            .collect::<Vec<_>>()
            .join(", ");
        let dests = node
            .outputs
            .iter()
            .map(|a| {
                let e = &g.arcs[a.idx()];
                let init = e.initial.map(|v| format!("[init {v}]")).unwrap_or_default();
                format!("cell{}.{}{}", e.dst.idx(), e.dst_port, init)
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "CELL {i:<4} {:<12} {:<20} ops: {:<30} -> {}",
            node.op.mnemonic(),
            node.label,
            ops,
            if dests.is_empty() { "-".into() } else { dests }
        );
    }
    out
}

/// One-line summary: cell count, arc count, opcode histogram.
pub fn summary(g: &Graph) -> String {
    let hist = g
        .opcode_histogram()
        .into_iter()
        .map(|(k, v)| format!("{k}×{v}"))
        .collect::<Vec<_>>()
        .join(" ");
    format!("{} cells, {} arcs: {}", g.node_count(), g.arc_count(), hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;
    use crate::value::BinOp;

    #[test]
    fn listing_mentions_all_cells() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[a.into(), 2.0.into()]);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
        let text = listing(&g);
        assert!(text.contains("ADD"));
        assert!(text.contains("lit 2"));
        assert!(text.contains("IN[a]"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn summary_counts() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[a.into()]);
        let s = summary(&g);
        assert!(s.starts_with("2 cells, 1 arcs"));
    }
}
