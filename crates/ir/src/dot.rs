//! Graphviz export — renders instruction graphs in the visual style of the
//! paper's figures (boxes for cells, dashed arcs for feedback links carrying
//! initial tokens).

use crate::graph::{Graph, PortBinding};
use crate::opcode::Opcode;
use std::fmt::Write;

/// Render the program in Graphviz `dot` syntax.
pub fn to_dot(g: &Graph, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(
        out,
        "  rankdir=LR; node [shape=box, fontname=\"monospace\"];"
    );
    for (i, node) in g.nodes.iter().enumerate() {
        let shape = match node.op {
            Opcode::Source(_) => "invhouse",
            Opcode::Sink(_) => "house",
            Opcode::CtlGen(_) => "oval",
            Opcode::Fifo(_) => "box3d",
            _ => "box",
        };
        let mut extras = String::new();
        for (port, b) in node.inputs.iter().enumerate() {
            if let PortBinding::Lit(v) = b {
                let _ = write!(extras, "\\nport{port}={v}");
            }
        }
        let _ = writeln!(
            out,
            "  n{i} [shape={shape}, label=\"{}\\n{}{extras}\"];",
            node.op.mnemonic().replace('"', "'"),
            node.label.replace('"', "'"),
        );
    }
    for e in &g.arcs {
        let style = if e.initial.is_some() {
            "dashed"
        } else {
            "solid"
        };
        let label = match e.initial {
            Some(v) => format!("init {v}"),
            None if e.phase != 0 => format!("phase {}", e.phase),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [style={style}, label=\"{label}\"];",
            e.src.idx(),
            e.dst.idx()
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{BinOp, Value};

    #[test]
    fn dot_has_nodes_and_edges() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[a.into(), 2.0.into()]);
        let id = g.add_node(Opcode::Id, "fb");
        g.connect_init(add, id, 0, Value::Int(0)); // initial-token arc for style check
        let dot = to_dot(&g, "t");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("init 0"));
    }
}
