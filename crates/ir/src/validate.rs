//! Structural well-formedness checks for machine-level programs.
//!
//! A valid program can be loaded into the machine: every operand port is
//! bound, control/data port types are plausible, FIFO depths are positive,
//! every cycle is seeded by at least one initial token, and sinks/sources
//! carry unique port names.

use crate::graph::{Graph, PortBinding};
use crate::opcode::{Opcode, GATE_CTL, MERGE_CTL};
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;

/// A structural defect found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing diagnostics payloads
pub enum Defect {
    /// An operand port was never wired or given a literal.
    UnboundPort {
        node: usize,
        port: usize,
        label: String,
    },
    /// A literal was bound where a boolean control stream is required and
    /// the literal is not boolean.
    NonBoolCtlLiteral { node: usize, port: usize },
    /// FIFO with zero depth.
    ZeroFifo { node: usize },
    /// A cycle in the graph with no initial token anywhere on it.
    UnseededCycle,
    /// Two sources (or two sinks) share a port name.
    DuplicatePortName { name: String },
    /// A source or ctl-gen has no consumers, or a non-sink node's output
    /// goes nowhere (it would jam after one firing… actually it would fire
    /// freely; this is reported as dead code).
    DeadOutput { node: usize, label: String },
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Defect::UnboundPort { node, port, label } => {
                write!(f, "cell {node} ({label}): operand port {port} unbound")
            }
            Defect::NonBoolCtlLiteral { node, port } => {
                write!(
                    f,
                    "cell {node}: control port {port} bound to non-boolean literal"
                )
            }
            Defect::ZeroFifo { node } => write!(f, "cell {node}: FIFO of depth 0"),
            Defect::UnseededCycle => write!(f, "cycle with no initial token (deadlock)"),
            Defect::DuplicatePortName { name } => write!(f, "duplicate port name {name}"),
            Defect::DeadOutput { node, label } => {
                write!(f, "cell {node} ({label}) produces a result nobody consumes")
            }
        }
    }
}

/// Check the program; returns all defects found (empty = valid).
pub fn validate(g: &Graph) -> Vec<Defect> {
    let mut defects = Vec::new();

    for (i, node) in g.nodes.iter().enumerate() {
        for (port, binding) in node.inputs.iter().enumerate() {
            match binding {
                PortBinding::Unbound => defects.push(Defect::UnboundPort {
                    node: i,
                    port,
                    label: node.label.clone(),
                }),
                PortBinding::Lit(v) => {
                    let is_ctl = matches!(
                        (&node.op, port),
                        (Opcode::TGate | Opcode::FGate, GATE_CTL) | (Opcode::Merge, MERGE_CTL)
                    );
                    if is_ctl && !matches!(v, Value::Bool(_)) {
                        defects.push(Defect::NonBoolCtlLiteral { node: i, port });
                    }
                }
                PortBinding::Wired(_) => {}
            }
        }
        if let Opcode::Fifo(0) = node.op {
            defects.push(Defect::ZeroFifo { node: i });
        }
        if node.op.produces_output() && node.outputs.is_empty() {
            defects.push(Defect::DeadOutput {
                node: i,
                label: node.label.clone(),
            });
        }
    }

    if g.forward_topo_order().is_none() {
        defects.push(Defect::UnseededCycle);
    }

    let mut src_names = HashSet::new();
    for (_, name) in g.sources() {
        if !src_names.insert(name.clone()) {
            defects.push(Defect::DuplicatePortName { name });
        }
    }
    let mut sink_names = HashSet::new();
    for (_, name) in g.sinks() {
        if !sink_names.insert(name.clone()) {
            defects.push(Defect::DuplicatePortName { name });
        }
    }

    defects
}

/// Panic with a readable report if the program is not valid. Used by the
/// compiler's own tests and the machine loader.
pub fn assert_valid(g: &Graph) {
    let defects = validate(g);
    if !defects.is_empty() {
        let mut msg = String::from("invalid data flow program:\n");
        for d in &defects {
            msg.push_str(&format!("  - {d}\n"));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BinOp;

    #[test]
    fn valid_program_has_no_defects() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[a.into(), 1.0.into()]);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
        assert!(validate(&g).is_empty());
    }

    #[test]
    fn unbound_port_detected() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let add = g.add_node(Opcode::Bin(BinOp::Add), "add");
        g.connect(a, add, 0);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
        let defects = validate(&g);
        assert!(matches!(defects[0], Defect::UnboundPort { port: 1, .. }));
    }

    #[test]
    fn non_bool_ctl_literal_detected() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let gate = g.cell(Opcode::TGate, "g", &[1.0.into(), a.into()]);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[gate.into()]);
        assert!(validate(&g).contains(&Defect::NonBoolCtlLiteral { node: 1, port: 0 }));
    }

    #[test]
    fn dead_output_detected() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a");
        let _add = g.cell(Opcode::Id, "dead", &[a.into()]);
        let defects = validate(&g);
        assert!(defects
            .iter()
            .any(|d| matches!(d, Defect::DeadOutput { .. })));
    }

    #[test]
    fn duplicate_source_names_detected() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Source("a".into()), "a1");
        let b = g.add_node(Opcode::Source("a".into()), "a2");
        let add = g.cell(Opcode::Bin(BinOp::Add), "add", &[a.into(), b.into()]);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[add.into()]);
        assert!(validate(&g)
            .iter()
            .any(|d| matches!(d, Defect::DuplicatePortName { .. })));
    }

    #[test]
    fn unseeded_cycle_detected() {
        let mut g = Graph::new();
        let a = g.add_node(Opcode::Id, "a");
        let b = g.cell(Opcode::Id, "b", &[a.into()]);
        g.connect(b, a, 0);
        let _ = g.cell(Opcode::Sink("y".into()), "y", &[b.into()]);
        assert!(validate(&g).contains(&Defect::UnseededCycle));
    }
}
