//! JSON encoding of machine-level programs (the on-disk machine-code
//! format).
//!
//! The encoding is externally tagged: unit enum variants are bare strings
//! (`"Id"`), payload-carrying variants are single-member objects
//! (`{"Bin": "Add"}`, `{"Lit": {"Int": 5}}`). This matches the format the
//! repository has always written, so previously saved programs still load.

use crate::ctl::CtlStream;
use crate::graph::{ArcId, Edge, Graph, Node, NodeId, PortBinding};
use crate::opcode::Opcode;
use crate::value::{BinOp, UnOp, Value};
use valpipe_util::Json;

fn tag(name: &'static str, payload: Json) -> Json {
    Json::obj([(name, payload)])
}

pub(crate) fn graph_to_json(g: &Graph) -> Json {
    Json::obj([
        (
            "nodes",
            Json::Arr(g.nodes.iter().map(node_to_json).collect()),
        ),
        ("arcs", Json::Arr(g.arcs.iter().map(edge_to_json).collect())),
    ])
}

pub(crate) fn node_to_json(n: &Node) -> Json {
    Json::obj([
        ("op", opcode_to_json(&n.op)),
        ("label", Json::Str(n.label.clone())),
        (
            "inputs",
            Json::Arr(n.inputs.iter().map(binding_to_json).collect()),
        ),
        (
            "outputs",
            Json::Arr(n.outputs.iter().map(|a| Json::Int(a.0 as i64)).collect()),
        ),
    ])
}

pub(crate) fn edge_to_json(e: &Edge) -> Json {
    Json::obj([
        ("src", Json::Int(e.src.0 as i64)),
        ("dst", Json::Int(e.dst.0 as i64)),
        ("dst_port", Json::Int(e.dst_port as i64)),
        (
            "initial",
            e.initial.as_ref().map_or(Json::Null, value_to_json),
        ),
        ("back", Json::Bool(e.back)),
        ("phase", Json::Int(e.phase as i64)),
    ])
}

fn binding_to_json(b: &PortBinding) -> Json {
    match b {
        PortBinding::Unbound => Json::Str("Unbound".into()),
        PortBinding::Wired(a) => tag("Wired", Json::Int(a.0 as i64)),
        PortBinding::Lit(v) => tag("Lit", value_to_json(v)),
    }
}

fn value_to_json(v: &Value) -> Json {
    match *v {
        Value::Int(i) => tag("Int", Json::Int(i)),
        Value::Real(r) => tag("Real", Json::Float(r)),
        Value::Bool(b) => tag("Bool", Json::Bool(b)),
    }
}

fn opcode_to_json(op: &Opcode) -> Json {
    match op {
        Opcode::Bin(b) => tag("Bin", Json::Str(format!("{b:?}"))),
        Opcode::Un(u) => tag("Un", Json::Str(format!("{u:?}"))),
        Opcode::Id => Json::Str("Id".into()),
        Opcode::TGate => Json::Str("TGate".into()),
        Opcode::FGate => Json::Str("FGate".into()),
        Opcode::Merge => Json::Str("Merge".into()),
        Opcode::Fifo(d) => tag("Fifo", Json::Int(*d as i64)),
        Opcode::CtlGen(s) => tag(
            "CtlGen",
            Json::obj([(
                "pattern",
                Json::Arr(
                    s.runs()
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("value", Json::Bool(r.value)),
                                ("count", Json::Int(r.count as i64)),
                            ])
                        })
                        .collect(),
                ),
            )]),
        ),
        Opcode::IdxGen { lo, hi } => tag(
            "IdxGen",
            Json::obj([("lo", Json::Int(*lo)), ("hi", Json::Int(*hi))]),
        ),
        Opcode::Source(name) => tag("Source", Json::Str(name.clone())),
        Opcode::Sink(name) => tag("Sink", Json::Str(name.clone())),
        Opcode::AmWrite => Json::Str("AmWrite".into()),
        Opcode::AmRead => Json::Str("AmRead".into()),
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

pub(crate) fn want<'a>(j: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    j.get(key)
        .ok_or_else(|| format!("{what}: missing field '{key}'"))
}

pub(crate) fn as_int(j: &Json, what: &str) -> Result<i64, String> {
    j.as_i64()
        .ok_or_else(|| format!("{what}: expected an integer, got {j}"))
}

fn as_str<'a>(j: &'a Json, what: &str) -> Result<&'a str, String> {
    j.as_str()
        .ok_or_else(|| format!("{what}: expected a string, got {j}"))
}

pub(crate) fn as_arr<'a>(j: &'a Json, what: &str) -> Result<&'a [Json], String> {
    j.as_arr()
        .ok_or_else(|| format!("{what}: expected an array"))
}

/// A tagged enum value: either a bare string (unit variant) or an object
/// with exactly one member (variant with payload).
fn variant<'a>(j: &'a Json, what: &str) -> Result<(&'a str, Option<&'a Json>), String> {
    match j {
        Json::Str(s) => Ok((s, None)),
        Json::Obj(members) if members.len() == 1 => {
            Ok((members[0].0.as_str(), Some(&members[0].1)))
        }
        _ => Err(format!("{what}: expected an enum variant, got {j}")),
    }
}

fn payload<'a>(p: Option<&'a Json>, name: &str, what: &str) -> Result<&'a Json, String> {
    p.ok_or_else(|| format!("{what}: variant '{name}' requires a payload"))
}

pub(crate) fn graph_from_json(j: &Json) -> Result<Graph, String> {
    let nodes = as_arr(want(j, "nodes", "graph")?, "graph.nodes")?
        .iter()
        .map(node_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let arcs = as_arr(want(j, "arcs", "graph")?, "graph.arcs")?
        .iter()
        .map(edge_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Graph {
        nodes,
        arcs,
        cur_src: 0,
    })
}

pub(crate) fn node_from_json(j: &Json) -> Result<Node, String> {
    Ok(Node {
        op: opcode_from_json(want(j, "op", "node")?)?,
        label: as_str(want(j, "label", "node")?, "node.label")?.to_string(),
        inputs: as_arr(want(j, "inputs", "node")?, "node.inputs")?
            .iter()
            .map(binding_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        outputs: as_arr(want(j, "outputs", "node")?, "node.outputs")?
            .iter()
            .map(|a| Ok(ArcId(as_int(a, "node.outputs")? as u32)))
            .collect::<Result<Vec<_>, String>>()?,
        // Provenance is a compiler-side table, not machine code; loaded
        // programs map to the whole-program fallback entry.
        src: 0,
    })
}

pub(crate) fn edge_from_json(j: &Json) -> Result<Edge, String> {
    let initial = match want(j, "initial", "arc")? {
        Json::Null => None,
        v => Some(value_from_json(v)?),
    };
    Ok(Edge {
        src: NodeId(as_int(want(j, "src", "arc")?, "arc.src")? as u32),
        dst: NodeId(as_int(want(j, "dst", "arc")?, "arc.dst")? as u32),
        dst_port: as_int(want(j, "dst_port", "arc")?, "arc.dst_port")? as usize,
        initial,
        back: want(j, "back", "arc")?
            .as_bool()
            .ok_or("arc.back: expected a boolean")?,
        phase: as_int(want(j, "phase", "arc")?, "arc.phase")? as i32,
    })
}

fn binding_from_json(j: &Json) -> Result<PortBinding, String> {
    let (name, p) = variant(j, "port binding")?;
    match name {
        "Unbound" => Ok(PortBinding::Unbound),
        "Wired" => Ok(PortBinding::Wired(ArcId(
            as_int(payload(p, name, "port binding")?, "Wired")? as u32,
        ))),
        "Lit" => Ok(PortBinding::Lit(value_from_json(payload(
            p,
            name,
            "port binding",
        )?)?)),
        other => Err(format!("port binding: unknown variant '{other}'")),
    }
}

fn value_from_json(j: &Json) -> Result<Value, String> {
    let (name, p) = variant(j, "value")?;
    let p = payload(p, name, "value")?;
    match name {
        "Int" => Ok(Value::Int(as_int(p, "Int")?)),
        "Real" => Ok(Value::Real(p.as_f64().ok_or("Real: expected a number")?)),
        "Bool" => Ok(Value::Bool(p.as_bool().ok_or("Bool: expected a boolean")?)),
        other => Err(format!("value: unknown variant '{other}'")),
    }
}

fn bin_op_from_str(s: &str) -> Result<BinOp, String> {
    use BinOp::*;
    Ok(match s {
        "Add" => Add,
        "Sub" => Sub,
        "Mul" => Mul,
        "Div" => Div,
        "Mod" => Mod,
        "Min" => Min,
        "Max" => Max,
        "Lt" => Lt,
        "Le" => Le,
        "Gt" => Gt,
        "Ge" => Ge,
        "Eq" => Eq,
        "Ne" => Ne,
        "And" => And,
        "Or" => Or,
        other => return Err(format!("unknown binary operator '{other}'")),
    })
}

fn un_op_from_str(s: &str) -> Result<UnOp, String> {
    Ok(match s {
        "Neg" => UnOp::Neg,
        "Not" => UnOp::Not,
        "Abs" => UnOp::Abs,
        other => return Err(format!("unknown unary operator '{other}'")),
    })
}

fn opcode_from_json(j: &Json) -> Result<Opcode, String> {
    let (name, p) = variant(j, "opcode")?;
    match name {
        "Id" => Ok(Opcode::Id),
        "TGate" => Ok(Opcode::TGate),
        "FGate" => Ok(Opcode::FGate),
        "Merge" => Ok(Opcode::Merge),
        "AmWrite" => Ok(Opcode::AmWrite),
        "AmRead" => Ok(Opcode::AmRead),
        "Bin" => Ok(Opcode::Bin(bin_op_from_str(as_str(
            payload(p, name, "opcode")?,
            "Bin",
        )?)?)),
        "Un" => Ok(Opcode::Un(un_op_from_str(as_str(
            payload(p, name, "opcode")?,
            "Un",
        )?)?)),
        "Fifo" => Ok(Opcode::Fifo(
            as_int(payload(p, name, "opcode")?, "Fifo")? as u32
        )),
        "CtlGen" => {
            let p = payload(p, name, "opcode")?;
            let runs = as_arr(want(p, "pattern", "CtlGen")?, "CtlGen.pattern")?
                .iter()
                .map(|r| {
                    let value = want(r, "value", "run")?
                        .as_bool()
                        .ok_or("run.value: expected a boolean")?;
                    let count = as_int(want(r, "count", "run")?, "run.count")? as u32;
                    Ok::<_, String>((value, count))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Opcode::CtlGen(CtlStream::from_runs(runs)))
        }
        "IdxGen" => {
            let p = payload(p, name, "opcode")?;
            Ok(Opcode::IdxGen {
                lo: as_int(want(p, "lo", "IdxGen")?, "IdxGen.lo")?,
                hi: as_int(want(p, "hi", "IdxGen")?, "IdxGen.hi")?,
            })
        }
        "Source" => Ok(Opcode::Source(
            as_str(payload(p, name, "opcode")?, "Source")?.to_string(),
        )),
        "Sink" => Ok(Opcode::Sink(
            as_str(payload(p, name, "opcode")?, "Sink")?.to_string(),
        )),
        other => Err(format!("opcode: unknown variant '{other}'")),
    }
}
