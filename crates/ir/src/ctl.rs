//! Boolean control streams.
//!
//! The constructions in the paper (Figs. 4–8) are driven by *sequences of
//! boolean control values* such as `F T...T F` that select array elements,
//! steer gated identities, and direct MERGE instructions. Todd showed these
//! sequences can be produced by "straightforward arrangements of data flow
//! instructions"; here we represent one symbolically as a **run-length
//! encoded pattern that repeats once per wave** (one wave = one array value
//! flowing through the pipe), which is what the generator circuits emit.

use std::fmt;

/// A maximal run of equal boolean values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Run {
    /// The boolean value repeated throughout the run.
    pub value: bool,
    /// Number of repetitions (> 0 in canonical form).
    pub count: u32,
}

/// A periodic boolean control stream: the `pattern` is emitted in order,
/// then repeats from the start for the next wave, indefinitely.
///
/// The canonical form has no zero-length runs and no two adjacent runs with
/// equal value (runs at the pattern boundary may still match, since the
/// boundary is semantically meaningful: it separates waves).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CtlStream {
    pattern: Vec<Run>,
}

impl CtlStream {
    /// Build a stream from runs; zero-count runs are dropped and adjacent
    /// equal runs merged. Panics if the resulting pattern is empty.
    pub fn from_runs<I: IntoIterator<Item = (bool, u32)>>(runs: I) -> Self {
        let mut pattern: Vec<Run> = Vec::new();
        for (value, count) in runs {
            if count == 0 {
                continue;
            }
            match pattern.last_mut() {
                Some(last) if last.value == value => last.count += count,
                _ => pattern.push(Run { value, count }),
            }
        }
        assert!(
            !pattern.is_empty(),
            "control stream pattern must be non-empty"
        );
        CtlStream { pattern }
    }

    /// A constant stream of `value` with wave length `len`.
    pub fn constant(value: bool, len: u32) -> Self {
        Self::from_runs([(value, len)])
    }

    /// Selection of a contiguous window: over a wave of `total` packets,
    /// `true` exactly for positions `sel_start..sel_start + sel_len`
    /// (0-based). This is the `F^a T^b F^c` shape of the paper's Fig. 4.
    pub fn window(total: u32, sel_start: u32, sel_len: u32) -> Self {
        assert!(
            sel_start + sel_len <= total,
            "window [{sel_start}, +{sel_len}) out of wave length {total}"
        );
        Self::from_runs([
            (false, sel_start),
            (true, sel_len),
            (false, total - sel_start - sel_len),
        ])
    }

    /// `T` only on the first packet of each wave (`T F^(len-1)`).
    pub fn first_only(len: u32) -> Self {
        Self::window(len, 0, 1)
    }

    /// `T` only on the last packet of each wave (`F^(len-1) T`).
    pub fn last_only(len: u32) -> Self {
        Self::window(len, len - 1, 1)
    }

    /// `F` on the first packet, `T` elsewhere — the `F T...T` merge control
    /// of the paper's Fig. 7 (take the initial value first, then feedback).
    pub fn all_but_first(len: u32) -> Self {
        assert!(len >= 1);
        Self::from_runs([(false, 1), (true, len - 1)])
    }

    /// `T` everywhere except the last packet — the `T...T F` output-switch
    /// control of Fig. 7 (feed back every element but the last).
    pub fn all_but_last(len: u32) -> Self {
        assert!(len >= 1);
        Self::from_runs([(true, len - 1), (false, 1)])
    }

    /// `F` on the first `k` packets of each wave, `T` on the rest.
    pub fn all_but_first_k(len: u32, k: u32) -> Self {
        assert!(k <= len);
        Self::from_runs([(false, k), (true, len - k)])
    }

    /// `T` on all but the last `k` packets of each wave.
    pub fn all_but_last_k(len: u32, k: u32) -> Self {
        assert!(k <= len);
        Self::from_runs([(true, len - k), (false, k)])
    }

    /// Wave length (number of packets emitted per repetition).
    pub fn wave_len(&self) -> u32 {
        self.pattern.iter().map(|r| r.count).sum()
    }

    /// Number of `true` packets per wave.
    pub fn trues_per_wave(&self) -> u32 {
        self.pattern
            .iter()
            .filter(|r| r.value)
            .map(|r| r.count)
            .sum()
    }

    /// The canonical run-length pattern.
    pub fn runs(&self) -> &[Run] {
        &self.pattern
    }

    /// The value at 0-based position `idx` of the infinite stream.
    pub fn at(&self, idx: u64) -> bool {
        let len = self.wave_len() as u64;
        let mut pos = idx % len;
        for run in &self.pattern {
            if pos < run.count as u64 {
                return run.value;
            }
            pos -= run.count as u64;
        }
        unreachable!("position within wave length must fall in some run")
    }

    /// Pointwise negation.
    pub fn negate(&self) -> Self {
        Self::from_runs(self.pattern.iter().map(|r| (!r.value, r.count)))
    }

    /// Pointwise conjunction of two streams with equal wave length.
    pub fn and(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a && b)
    }

    /// Pointwise disjunction of two streams with equal wave length.
    pub fn or(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a || b)
    }

    fn zip_with(&self, other: &Self, f: impl Fn(bool, bool) -> bool) -> Self {
        assert_eq!(
            self.wave_len(),
            other.wave_len(),
            "combining control streams of different wave lengths"
        );
        let mut runs = Vec::new();
        let (mut ia, mut ib) = (0usize, 0usize);
        let (mut ra, mut rb) = (self.pattern[0], other.pattern[0]);
        loop {
            let n = ra.count.min(rb.count);
            runs.push((f(ra.value, rb.value), n));
            ra.count -= n;
            rb.count -= n;
            if ra.count == 0 {
                ia += 1;
                if ia == self.pattern.len() {
                    break;
                }
                ra = self.pattern[ia];
            }
            if rb.count == 0 {
                ib += 1;
                rb = other.pattern[ib];
            }
        }
        Self::from_runs(runs)
    }

    /// The subsequence of this stream at positions where `mask` is `true`.
    /// Both streams must share a wave length; the result's wave length is
    /// `mask.trues_per_wave()`. Used to derive the control a nested gate
    /// sees after an outer gate has already filtered the stream.
    pub fn compress(&self, mask: &Self) -> Self {
        assert_eq!(self.wave_len(), mask.wave_len());
        assert!(
            mask.trues_per_wave() > 0,
            "compressing by an all-false mask"
        );
        let len = self.wave_len() as u64;
        let bits: Vec<(bool, u32)> = (0..len)
            .filter(|&i| mask.at(i))
            .map(|i| (self.at(i), 1))
            .collect();
        Self::from_runs(bits)
    }

    /// Materialize the first `n` values of the infinite stream.
    pub fn take(&self, n: usize) -> Vec<bool> {
        (0..n as u64).map(|i| self.at(i)).collect()
    }
}

impl fmt::Display for CtlStream {
    /// Prints in the paper's notation, e.g. `<F T^4 F>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, run) in self.pattern.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            let v = if run.value { "T" } else { "F" };
            if run.count == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{}", run.count)?;
            }
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_shape() {
        let s = CtlStream::window(6, 1, 4);
        assert_eq!(s.take(6), vec![false, true, true, true, true, false]);
        assert_eq!(s.wave_len(), 6);
        assert_eq!(s.trues_per_wave(), 4);
        assert_eq!(s.to_string(), "<F T^4 F>");
    }

    #[test]
    fn repeats_per_wave() {
        let s = CtlStream::window(3, 0, 1);
        assert_eq!(
            s.take(7),
            vec![true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn first_last_helpers() {
        assert_eq!(
            CtlStream::first_only(4).take(4),
            vec![true, false, false, false]
        );
        assert_eq!(
            CtlStream::last_only(4).take(4),
            vec![false, false, false, true]
        );
        assert_eq!(CtlStream::all_but_first(3).take(3), vec![false, true, true]);
        assert_eq!(CtlStream::all_but_last(3).take(3), vec![true, true, false]);
    }

    #[test]
    fn negate_and_and() {
        let a = CtlStream::window(5, 0, 3);
        let b = CtlStream::window(5, 2, 3);
        assert_eq!(a.and(&b).take(5), vec![false, false, true, false, false]);
        assert_eq!(a.negate().take(5), vec![false, false, false, true, true]);
        assert_eq!(a.or(&b).take(5), vec![true; 5]);
    }

    #[test]
    fn canonicalization_merges_runs() {
        let s = CtlStream::from_runs([(true, 1), (true, 2), (false, 0), (false, 3)]);
        assert_eq!(s.runs().len(), 2);
        assert_eq!(
            s.runs()[0],
            Run {
                value: true,
                count: 3
            }
        );
    }

    #[test]
    fn compress_selects_subsequence() {
        // Stream over 6 positions, mask selects positions 1..5.
        let cond = CtlStream::from_runs([(true, 2), (false, 2), (true, 2)]);
        let mask = CtlStream::window(6, 1, 4);
        let sub = cond.compress(&mask);
        assert_eq!(sub.wave_len(), 4);
        assert_eq!(sub.take(4), vec![true, false, false, true]);
    }

    #[test]
    fn all_but_first_k_and_last_k() {
        assert_eq!(
            CtlStream::all_but_first_k(5, 2).take(5),
            vec![false, false, true, true, true]
        );
        assert_eq!(
            CtlStream::all_but_last_k(5, 2).take(5),
            vec![true, true, true, false, false]
        );
    }

    #[test]
    #[should_panic]
    fn window_out_of_range_panics() {
        let _ = CtlStream::window(4, 3, 2);
    }
}
