//! Source-to-cell provenance: the side table that lets machine-level
//! diagnostics name the Val statement each instruction cell implements.
//!
//! The compiler stamps every cell it creates with a *provenance id* — an
//! index into a [`Provenance`] table whose entries carry the statement's
//! byte-range [`Span`], its role in the program ("forall body of block
//! 'B'", "input declaration 'A'", …) and the statement's source text.
//! Transformation passes (gate fusion, generator synthesis, loop and
//! global balancing, FIFO expansion) propagate the ids onto every cell
//! they create, so the mapping *machine cell → IR node → span* stays
//! total on compiled programs.
//!
//! Provenance is deliberately a **side table**: it is excluded from
//! [`crate::Graph::fingerprint`], from the JSON machine-code format and
//! from simulator snapshots, so adding it changes no machine state and
//! no on-disk format.

use std::fmt;

/// A byte range in a Val source file, with the 1-based line/column of its
/// start. Produced by the lexer; carried through parsing and type
/// checking into every IR node via the [`Provenance`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering `[start, end)` at the given position.
    pub fn new(start: u32, end: u32, line: u32, col: u32) -> Span {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// The smallest span covering both `self` and `other` (position taken
    /// from whichever starts first).
    pub fn merge(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One provenance table entry: a source statement a set of cells
/// implements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceInfo {
    /// The statement's role, e.g. `forall body of block 'B'` or
    /// `input declaration 'A'`.
    pub role: String,
    /// Where the statement lives in the source text.
    pub span: Span,
    /// The statement's source text (single line, trimmed).
    pub snippet: String,
}

/// The compiler's source map: every IR node's `src` field indexes into
/// [`Provenance::entries`]. Entry 0 is always the whole-program fallback,
/// so lookups are total even for cells created outside any statement
/// scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Name of the source file (or `<source>` for in-memory text).
    pub file: String,
    /// The statement table; nodes refer to entries by index.
    pub entries: Vec<SourceInfo>,
}

impl Provenance {
    /// Fresh table for `file`; installs the entry-0 whole-program
    /// fallback.
    pub fn new(file: impl Into<String>) -> Provenance {
        Provenance {
            file: file.into(),
            entries: vec![SourceInfo {
                role: "program".into(),
                span: Span::new(0, 0, 1, 1),
                snippet: String::new(),
            }],
        }
    }

    /// Record a statement; returns its provenance id.
    pub fn add(&mut self, role: impl Into<String>, span: Span, snippet: impl Into<String>) -> u32 {
        let id = self.entries.len() as u32;
        self.entries.push(SourceInfo {
            role: role.into(),
            span,
            snippet: normalize_snippet(&snippet.into()),
        });
        id
    }

    /// The entry a provenance id refers to; out-of-range ids fall back to
    /// entry 0 so rendering never panics on foreign graphs.
    pub fn entry(&self, src: u32) -> &SourceInfo {
        self.entries.get(src as usize).unwrap_or(&self.entries[0])
    }

    /// Whether `src` indexes a real statement entry (not the fallback and
    /// not out of range).
    pub fn is_resolved(&self, src: u32) -> bool {
        src != 0 && (src as usize) < self.entries.len()
    }

    /// Render a provenance id as
    /// `file:line:col: in <role> '<snippet>'`.
    pub fn describe(&self, src: u32) -> String {
        let e = self.entry(src);
        if e.snippet.is_empty() {
            format!("{}:{}: in {}", self.file, e.span, e.role)
        } else {
            format!("{}:{}: in {} '{}'", self.file, e.span, e.role, e.snippet)
        }
    }

    /// Render the provenance of a cell of `g`.
    pub fn describe_node(&self, g: &crate::Graph, node: usize) -> String {
        match g.nodes.get(node) {
            Some(n) => self.describe(n.src),
            None => format!("{}: in unknown cell {node}", self.file),
        }
    }
}

/// Collapse a (possibly multi-line) statement text to one trimmed line
/// with single spaces, capped to keep diagnostics readable.
fn normalize_snippet(s: &str) -> String {
    let mut out = String::with_capacity(s.len().min(96));
    let mut last_space = true;
    for ch in s.chars() {
        let ch = if ch.is_whitespace() { ' ' } else { ch };
        if ch == ' ' && last_space {
            continue;
        }
        last_space = ch == ' ';
        out.push(ch);
    }
    let trimmed = out.trim();
    if trimmed.len() > 90 {
        let mut cut = 87;
        while !trimmed.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}...", &trimmed[..cut])
    } else {
        trimmed.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_formats_location_and_snippet() {
        let mut p = Provenance::new("fig6.val");
        let id = p.add(
            "forall body of block 'B'",
            Span::new(10, 42, 3, 5),
            "B[i] := (A[i-1] + A[i] + A[i+1]) / 3.",
        );
        assert_eq!(
            p.describe(id),
            "fig6.val:3:5: in forall body of block 'B' 'B[i] := (A[i-1] + A[i] + A[i+1]) / 3.'"
        );
        assert!(p.is_resolved(id));
        assert!(!p.is_resolved(0));
    }

    #[test]
    fn out_of_range_falls_back_to_program_entry() {
        let p = Provenance::new("x.val");
        assert_eq!(p.describe(99), "x.val:1:1: in program");
        assert!(!p.is_resolved(99));
    }

    #[test]
    fn snippets_are_normalized_and_capped() {
        let mut p = Provenance::new("x.val");
        let id = p.add("def", Span::default(), "a :=\n    b +\n    c");
        assert_eq!(p.entry(id).snippet, "a := b + c");
        let long = "x".repeat(200);
        let id2 = p.add("def", Span::default(), &long);
        assert!(p.entry(id2).snippet.len() <= 90);
        assert!(p.entry(id2).snippet.ends_with("..."));
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(5, 10, 2, 1);
        let b = Span::new(8, 20, 2, 4);
        let m = a.merge(b);
        assert_eq!((m.start, m.end, m.line, m.col), (5, 20, 2, 1));
        assert_eq!(b.merge(a), m);
    }
}
