//! Scalar values carried by result packets.
//!
//! The static data flow machine of Dennis & Gao moves *result packets*, each
//! holding one scalar value, between instruction cells. The Val subset in the
//! paper uses three scalar types: `integer`, `real`, and `boolean`. Arrays
//! never exist as machine values — an array is a *sequence* of scalar result
//! packets (paper §3).

use std::fmt;

/// A scalar value carried by a single result packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Val `integer`.
    Int(i64),
    /// Val `real`.
    Real(f64),
    /// Val `boolean`.
    Bool(bool),
}

impl Value {
    /// The truth value, if this is a boolean packet.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The integer value, if this is an integer packet.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Numeric view: integers promote to reals, booleans are not numeric.
    pub fn as_real(self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(i as f64),
            Value::Real(r) => Some(r),
            Value::Bool(_) => None,
        }
    }

    /// Short type tag used in diagnostics.
    pub fn type_name(self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Real(_) => "real",
            Value::Bool(_) => "boolean",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Bool(b) => write!(f, "{}", if *b { "T" } else { "F" }),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// Error produced when an instruction receives operands of the wrong type
/// (or divides by zero, etc.). In a correct compilation these never occur;
/// the simulator surfaces them as hard faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation fault: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// Binary operators available as instruction-cell operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the operators themselves
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Min,
    Max,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// `true` for operators producing a boolean packet.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::And
                | BinOp::Or
        )
    }

    /// Mnemonic used in machine-code listings (matching the paper's figures:
    /// `ADD`, `MULT`, `SUB`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "ADD",
            BinOp::Sub => "SUB",
            BinOp::Mul => "MULT",
            BinOp::Div => "DIV",
            BinOp::Mod => "MOD",
            BinOp::Min => "MIN",
            BinOp::Max => "MAX",
            BinOp::Lt => "LT",
            BinOp::Le => "LE",
            BinOp::Gt => "GT",
            BinOp::Ge => "GE",
            BinOp::Eq => "EQ",
            BinOp::Ne => "NE",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Unary operators available as instruction-cell operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants are the operators themselves
pub enum UnOp {
    Neg,
    Not,
    Abs,
}

impl UnOp {
    /// Mnemonic used in machine-code listings.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "NEG",
            UnOp::Not => "NOT",
            UnOp::Abs => "ABS",
        }
    }
}

fn type_err(op: &str, a: Value, b: Option<Value>) -> EvalError {
    match b {
        Some(b) => EvalError(format!(
            "{op} applied to {}({a}) and {}({b})",
            a.type_name(),
            b.type_name()
        )),
        None => EvalError(format!("{op} applied to {}({a})", a.type_name())),
    }
}

/// Apply a binary operator with Val's promotion rule: mixing `integer` and
/// `real` promotes to `real`; comparison of numerics is allowed across the
/// two numeric types; logical operators require booleans.
pub fn apply_bin(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    use Value::*;
    match op {
        And | Or => match (a, b) {
            (Bool(x), Bool(y)) => Ok(Bool(if op == And { x && y } else { x || y })),
            _ => Err(type_err(op.mnemonic(), a, Some(b))),
        },
        Eq | Ne => {
            let eq = match (a, b) {
                (Int(x), Int(y)) => x == y,
                (Bool(x), Bool(y)) => x == y,
                (x, y) => match (x.as_real(), y.as_real()) {
                    (Some(x), Some(y)) => x == y,
                    _ => return Err(type_err(op.mnemonic(), a, Some(b))),
                },
            };
            Ok(Bool(if op == Eq { eq } else { !eq }))
        }
        Lt | Le | Gt | Ge => match (a, b) {
            (Int(x), Int(y)) => Ok(Bool(cmp_ok(op, x.cmp(&y)))),
            (x, y) => match (x.as_real(), y.as_real()) {
                (Some(x), Some(y)) => {
                    let ord = x
                        .partial_cmp(&y)
                        .ok_or_else(|| EvalError("NaN comparison".into()))?;
                    Ok(Bool(cmp_ok(op, ord)))
                }
                _ => Err(type_err(op.mnemonic(), a, Some(b))),
            },
        },
        Add | Sub | Mul | Div | Mod | Min | Max => match (a, b) {
            (Int(x), Int(y)) => int_arith(op, x, y),
            (x, y) => match (x.as_real(), y.as_real()) {
                (Some(x), Some(y)) => real_arith(op, x, y),
                _ => Err(type_err(op.mnemonic(), a, Some(b))),
            },
        },
    }
}

fn cmp_ok(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!("cmp_ok on non-comparison"),
    }
}

fn int_arith(op: BinOp, x: i64, y: i64) -> Result<Value, EvalError> {
    let v = match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(EvalError("integer division by zero".into()));
            }
            x / y
        }
        BinOp::Mod => {
            if y == 0 {
                return Err(EvalError("integer modulo by zero".into()));
            }
            x.rem_euclid(y)
        }
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        _ => unreachable!(),
    };
    Ok(Value::Int(v))
}

fn real_arith(op: BinOp, x: f64, y: f64) -> Result<Value, EvalError> {
    let v = match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Mod => x.rem_euclid(y),
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        _ => unreachable!(),
    };
    Ok(Value::Real(v))
}

/// Apply a unary operator.
pub fn apply_un(op: UnOp, a: Value) -> Result<Value, EvalError> {
    use UnOp::*;
    use Value::*;
    match (op, a) {
        (Neg, Int(x)) => Ok(Int(x.wrapping_neg())),
        (Neg, Real(x)) => Ok(Real(-x)),
        (Not, Bool(x)) => Ok(Bool(!x)),
        (Abs, Int(x)) => Ok(Int(x.wrapping_abs())),
        (Abs, Real(x)) => Ok(Real(x.abs())),
        _ => Err(type_err(op.mnemonic(), a, None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arith_basics() {
        assert_eq!(
            apply_bin(BinOp::Add, 2.into(), 3.into()).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            apply_bin(BinOp::Mul, 4.into(), (-2).into()).unwrap(),
            Value::Int(-8)
        );
        assert_eq!(
            apply_bin(BinOp::Div, 7.into(), 2.into()).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            apply_bin(BinOp::Min, 7.into(), 2.into()).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            apply_bin(BinOp::Max, 7.into(), 2.into()).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn mixed_promotes_to_real() {
        assert_eq!(
            apply_bin(BinOp::Add, Value::Int(2), Value::Real(0.5)).unwrap(),
            Value::Real(2.5)
        );
        assert_eq!(
            apply_bin(BinOp::Lt, Value::Int(2), Value::Real(2.5)).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn div_by_zero_int_faults() {
        assert!(apply_bin(BinOp::Div, 1.into(), 0.into()).is_err());
    }

    #[test]
    fn real_div_by_zero_is_inf() {
        assert_eq!(
            apply_bin(BinOp::Div, Value::Real(1.0), Value::Real(0.0)).unwrap(),
            Value::Real(f64::INFINITY)
        );
    }

    #[test]
    fn logic_requires_bools() {
        assert_eq!(
            apply_bin(BinOp::And, true.into(), false.into()).unwrap(),
            Value::Bool(false)
        );
        assert!(apply_bin(BinOp::And, 1.into(), false.into()).is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            apply_bin(BinOp::Le, 2.into(), 2.into()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            apply_bin(BinOp::Gt, 2.into(), 2.into()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            apply_bin(BinOp::Ne, 2.into(), 3.into()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            apply_bin(BinOp::Eq, Value::Bool(true), Value::Bool(true)).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn unary_ops() {
        assert_eq!(
            apply_un(UnOp::Neg, Value::Real(2.5)).unwrap(),
            Value::Real(-2.5)
        );
        assert_eq!(
            apply_un(UnOp::Not, true.into()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(apply_un(UnOp::Abs, (-3).into()).unwrap(), Value::Int(3));
        assert!(apply_un(UnOp::Not, 1.into()).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bool(true).to_string(), "T");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }
}
