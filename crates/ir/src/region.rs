//! Graph region deltas: the slice of a [`Graph`] one compilation unit
//! (one source block) contributed, captured so an incremental compiler
//! can splice it back verbatim instead of re-lowering the block.
//!
//! A delta is positional: it records the node/arc id bases it was
//! captured at and keeps every cross-reference **absolute**. Splicing is
//! therefore only legal onto a graph whose prefix is identical to the one
//! the delta was captured against and whose node/arc counts equal the
//! recorded bases — exactly the invariant a content-addressed cache key
//! over (upstream artifacts, bases) establishes. Under that invariant the
//! splice reproduces the original graph bit for bit.
//!
//! Besides its own nodes and arcs, a block's lowering pushes newly
//! created arc ids into the `outputs` lists of *earlier* nodes (its
//! external producers). Those side effects are recorded as
//! [`GraphDelta::ext_sources`] in arc order and replayed on splice.

use crate::graph::{ArcId, Edge, Graph, Node};
use crate::serialize::{
    as_arr, as_int, edge_from_json, edge_to_json, node_from_json, node_to_json, want,
};
use valpipe_util::Json;

/// The portion of a [`Graph`] appended after a recorded base point, plus
/// the arc-id pushes made into pre-base nodes' output lists.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphDelta {
    /// Node count of the graph when lowering of the unit began.
    pub node_base: u32,
    /// Arc count of the graph when lowering of the unit began.
    pub arc_base: u32,
    /// Nodes appended by the unit (absolute ids `node_base..`), with
    /// provenance (`src`) preserved.
    pub nodes: Vec<Node>,
    /// Arcs appended by the unit (absolute ids `arc_base..`).
    pub arcs: Vec<Edge>,
    /// `(pre-base node id, new arc id)` pairs: output-list pushes the
    /// unit made into nodes that existed before it, in push order.
    pub ext_sources: Vec<(u32, u32)>,
}

impl GraphDelta {
    /// Capture everything `g` gained since `(node_base, arc_base)`.
    ///
    /// Must be called immediately after the unit finishes lowering —
    /// before any later unit appends to `g` — so that the appended nodes'
    /// output lists contain only this unit's arcs.
    pub fn capture(g: &Graph, node_base: u32, arc_base: u32) -> GraphDelta {
        let mut ext_sources = Vec::new();
        for (off, e) in g.arcs[arc_base as usize..].iter().enumerate() {
            if e.src.0 < node_base {
                ext_sources.push((e.src.0, arc_base + off as u32));
            }
        }
        GraphDelta {
            node_base,
            arc_base,
            nodes: g.nodes[node_base as usize..].to_vec(),
            arcs: g.arcs[arc_base as usize..].to_vec(),
            ext_sources,
        }
    }

    /// Splice the delta onto `g`. Fails (without touching `g`) unless
    /// `g`'s node/arc counts equal the recorded bases and every external
    /// source node exists; under the cache-key invariant this reproduces
    /// the graph the delta was captured from exactly.
    pub fn splice(&self, g: &mut Graph) -> Result<(), String> {
        if g.nodes.len() != self.node_base as usize || g.arcs.len() != self.arc_base as usize {
            return Err(format!(
                "region splice at ({}, {}) onto graph with ({}, {}) nodes/arcs",
                self.node_base,
                self.arc_base,
                g.nodes.len(),
                g.arcs.len()
            ));
        }
        if let Some((n, _)) = self.ext_sources.iter().find(|(n, _)| *n >= self.node_base) {
            return Err(format!("region external source {n} is not pre-base"));
        }
        g.nodes.extend(self.nodes.iter().cloned());
        g.arcs.extend(self.arcs.iter().cloned());
        for &(n, a) in &self.ext_sources {
            g.nodes[n as usize].outputs.push(ArcId(a));
        }
        Ok(())
    }

    /// JSON encoding for the on-disk incremental cache. Unlike the
    /// snapshot graph codec, nodes keep their provenance (`src`) — the
    /// whole point of a cached region is replaying compiler-side state.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("node_base", Json::Int(self.node_base as i64)),
            ("arc_base", Json::Int(self.arc_base as i64)),
            (
                "nodes",
                Json::Arr(
                    self.nodes
                        .iter()
                        .map(|n| match node_to_json(n) {
                            Json::Obj(mut m) => {
                                m.push(("src".into(), Json::Int(n.src as i64)));
                                Json::Obj(m)
                            }
                            other => other,
                        })
                        .collect(),
                ),
            ),
            (
                "arcs",
                Json::Arr(self.arcs.iter().map(edge_to_json).collect()),
            ),
            (
                "ext",
                Json::Arr(
                    self.ext_sources
                        .iter()
                        .flat_map(|&(n, a)| [Json::Int(n as i64), Json::Int(a as i64)])
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode a delta previously produced by [`GraphDelta::to_json`].
    pub fn from_json(j: &Json) -> Result<GraphDelta, String> {
        let nodes = as_arr(want(j, "nodes", "region")?, "region.nodes")?
            .iter()
            .map(|nj| {
                let mut n = node_from_json(nj)?;
                n.src = as_int(want(nj, "src", "region node")?, "region node.src")? as u32;
                Ok::<Node, String>(n)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let arcs = as_arr(want(j, "arcs", "region")?, "region.arcs")?
            .iter()
            .map(edge_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let ext = as_arr(want(j, "ext", "region")?, "region.ext")?;
        if ext.len() % 2 != 0 {
            return Err("region.ext: odd pair list".into());
        }
        let ext_sources = ext
            .chunks(2)
            .map(|c| {
                Ok::<(u32, u32), String>((
                    as_int(&c[0], "region.ext")? as u32,
                    as_int(&c[1], "region.ext")? as u32,
                ))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GraphDelta {
            node_base: as_int(want(j, "node_base", "region")?, "region.node_base")? as u32,
            arc_base: as_int(want(j, "arc_base", "region")?, "region.arc_base")? as u32,
            nodes,
            arcs,
            ext_sources,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;
    use crate::value::{BinOp, Value};

    /// Two-stage graph: a "prefix" source node, then a "unit" that adds
    /// two cells and wires one of them from the prefix node.
    fn build() -> (Graph, u32, u32) {
        let mut g = Graph::new();
        let s = g.add_node(Opcode::Source("in".into()), "in");
        let node_base = g.nodes.len() as u32;
        let arc_base = g.arcs.len() as u32;
        g.set_provenance(7);
        let a = g.add_node(Opcode::Id, "unit.a");
        let b = g.add_node(Opcode::Bin(BinOp::Add), "unit.b");
        g.connect(s, a, 0);
        g.connect(a, b, 0);
        g.set_lit(b, 1, Value::Int(1));
        g.set_provenance(0);
        (g, node_base, arc_base)
    }

    #[test]
    fn capture_then_splice_reproduces_the_graph() {
        let (g, nb, ab) = build();
        let delta = GraphDelta::capture(&g, nb, ab);
        assert_eq!(delta.nodes.len(), 2);
        assert_eq!(delta.ext_sources.len(), 1);
        assert_eq!(delta.nodes[0].src, 7, "provenance travels with the delta");

        // Rebuild only the prefix, splice, compare everything.
        let mut h = Graph::new();
        h.add_node(Opcode::Source("in".into()), "in");
        delta.splice(&mut h).unwrap();
        assert_eq!(h.nodes, g.nodes);
        assert_eq!(h.arcs, g.arcs);
    }

    #[test]
    fn splice_rejects_wrong_bases() {
        let (g, nb, ab) = build();
        let delta = GraphDelta::capture(&g, nb, ab);
        let mut h = Graph::new(); // empty: bases don't match
        assert!(delta.splice(&mut h).is_err());
        assert!(h.nodes.is_empty(), "failed splice must not mutate");
    }

    #[test]
    fn json_round_trip_is_exact() {
        let (g, nb, ab) = build();
        let delta = GraphDelta::capture(&g, nb, ab);
        let j = delta.to_json();
        let text = j.to_string();
        let back = GraphDelta::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, delta);
    }

    #[test]
    fn from_json_rejects_malformed_payloads() {
        for bad in [
            "{}",
            r#"{"node_base":1,"arc_base":0,"nodes":[],"arcs":[],"ext":[1]}"#,
            r#"{"node_base":1,"arc_base":0,"nodes":[{"op":"bogus"}],"arcs":[],"ext":[]}"#,
        ] {
            let j = Json::parse(bad).unwrap();
            assert!(GraphDelta::from_json(&j).is_err(), "accepted: {bad}");
        }
    }
}
