//! # valpipe-ir — dataflow instruction-graph IR
//!
//! The machine-level program representation for the static data flow
//! architecture of Dennis & Gao, *Maximum Pipelining of Array Operations on
//! Static Data Flow Machine* (ICPP 1983). A program is a directed graph of
//! **instruction cells** connected by **destination links**; each link also
//! stands for the reverse acknowledge path that paces fully pipelined
//! execution at one firing per two instruction times.
//!
//! The IR provides:
//! * scalar [`Value`]s and the instruction-level arithmetic semantics,
//! * run-length-encoded periodic boolean [`CtlStream`]s (the `F T…T F`
//!   control sequences of the paper's figures),
//! * the cell [`Opcode`] set including gated identities, `MERGE`, symbolic
//!   `FIFO` buffers and control-stream generators,
//! * the [`Graph`] itself with builder, query, FIFO-lowering and
//!   FIFO-insertion operations,
//! * structural [`validate::validate`] checks, a machine-code
//!   [`pretty::listing`], and [`dot::to_dot`] export.

#![warn(missing_docs)]

pub mod ctl;
pub mod dot;
pub mod graph;
pub mod opcode;
pub mod pretty;
pub mod prov;
pub mod region;
mod serialize;
pub mod validate;
pub mod value;

pub use ctl::{CtlStream, Run};
pub use graph::{ArcId, Edge, Graph, In, Node, NodeId, PortBinding};
pub use opcode::{Opcode, GATE_CTL, GATE_DATA, MERGE_CTL, MERGE_FALSE, MERGE_TRUE};
pub use prov::{Provenance, SourceInfo, Span};
pub use region::GraphDelta;
pub use value::{apply_bin, apply_un, BinOp, EvalError, UnOp, Value};
