//! Instruction-cell operation codes.
//!
//! A machine-level data flow program is a collection of *instruction cells*,
//! each holding an operation code, operand fields, and destination fields
//! (paper §2). The opcodes here are exactly the cell kinds used by the
//! paper's constructions: ordinary arithmetic/relational cells, identity
//! buffers, the T/F **gated identities** that discard unselected packets,
//! the three-input **MERGE**, symbolic **FIFO** buffers, boolean
//! **control-sequence generators** (Todd's circuits), graph inputs/outputs,
//! and array-memory access cells.

use crate::ctl::CtlStream;
use crate::value::{BinOp, UnOp};
use std::fmt;

/// Input-port index of the boolean control operand on `TGate`/`FGate`.
pub const GATE_CTL: usize = 0;
/// Input-port index of the data operand on `TGate`/`FGate`.
pub const GATE_DATA: usize = 1;
/// Input-port index of the merge-control operand `M` on `Merge`.
pub const MERGE_CTL: usize = 0;
/// Input-port index of the `I1` operand (forwarded when `M` is true).
pub const MERGE_TRUE: usize = 1;
/// Input-port index of the `I2` operand (forwarded when `M` is false).
pub const MERGE_FALSE: usize = 2;

/// The operation held by one instruction cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Opcode {
    /// Two-operand arithmetic / relational / logical instruction.
    Bin(BinOp),
    /// One-operand instruction.
    Un(UnOp),
    /// Identity: forwards its operand unchanged. One identity cell is one
    /// pipeline stage; chains of identities realize FIFO buffers.
    Id,
    /// Gated identity forwarding its data operand only when the control
    /// operand is **true**; otherwise the data packet is *discarded* (the
    /// paper's mechanism for dropping unused array elements so they "do not
    /// cause jams"). Ports: [`GATE_CTL`], [`GATE_DATA`].
    TGate,
    /// Gated identity forwarding only when the control operand is **false**.
    FGate,
    /// The MERGE instruction (paper §5): fires when the merge control `M`
    /// and the *selected* data operand are present; forwards `I1` if `M` is
    /// true, else `I2`, leaving the other operand untouched.
    Merge,
    /// Symbolic FIFO buffer of the given depth. Semantically identical to a
    /// chain of `depth` identity cells; [`crate::graph::Graph::expand_fifos`]
    /// performs that lowering before the code is loaded into a machine.
    Fifo(u32),
    /// Boolean control-sequence generator emitting the given periodic
    /// stream, one packet per firing.
    CtlGen(CtlStream),
    /// Index-sequence generator emitting `lo, lo+1, …, hi` cyclically (one
    /// integer packet per firing). Realizable as a pair of interleaved
    /// counter loops built from ordinary cells (Todd's construction); kept
    /// primitive here like `CtlGen`.
    IdxGen {
        /// First index of each wave.
        lo: i64,
        /// Last index of each wave (inclusive).
        hi: i64,
    },
    /// Graph input: emits the packets bound (at run time) to the named
    /// input port, in order, one per firing.
    Source(String),
    /// Graph output: consumes packets and records them under the named
    /// output port.
    Sink(String),
    /// Array-memory *build* access: behaves as an identity, but executes in
    /// an array-memory unit (used for long-lived values such as state
    /// carried between simulation time steps; paper §2).
    AmWrite,
    /// Array-memory *read* access: identity executed in an array-memory unit.
    AmRead,
}

impl Opcode {
    /// Number of input operand ports.
    pub fn arity(&self) -> usize {
        match self {
            Opcode::Bin(_) => 2,
            Opcode::Un(_) | Opcode::Id | Opcode::Fifo(_) => 1,
            Opcode::TGate | Opcode::FGate => 2,
            Opcode::Merge => 3,
            Opcode::CtlGen(_) | Opcode::IdxGen { .. } | Opcode::Source(_) => 0,
            Opcode::Sink(_) | Opcode::AmWrite | Opcode::AmRead => 1,
        }
    }

    /// Whether the cell may produce a result packet when it fires.
    pub fn produces_output(&self) -> bool {
        !matches!(self, Opcode::Sink(_))
    }

    /// Whether this instruction executes in an array-memory unit (for the
    /// packet-traffic accounting of the paper's §2 claim).
    pub fn is_array_memory(&self) -> bool {
        matches!(self, Opcode::AmWrite | Opcode::AmRead)
    }

    /// Whether this is a floating-point-capable arithmetic instruction that
    /// a processing element would ship to a function unit.
    pub fn is_function_unit(&self) -> bool {
        matches!(
            self,
            Opcode::Bin(BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
                | Opcode::Un(UnOp::Neg | UnOp::Abs)
        )
    }

    /// Mnemonic used in machine-code listings, matching the paper's figures
    /// (`ADD`, `MULT`, `ID`, `MERG`, ...).
    pub fn mnemonic(&self) -> String {
        match self {
            Opcode::Bin(op) => op.mnemonic().to_string(),
            Opcode::Un(op) => op.mnemonic().to_string(),
            Opcode::Id => "ID".into(),
            Opcode::TGate => "TGATE".into(),
            Opcode::FGate => "FGATE".into(),
            Opcode::Merge => "MERG".into(),
            Opcode::Fifo(d) => format!("FIFO({d})"),
            Opcode::CtlGen(s) => format!("CTL{s}"),
            Opcode::IdxGen { lo, hi } => format!("IDX[{lo},{hi}]"),
            Opcode::Source(name) => format!("IN[{name}]"),
            Opcode::Sink(name) => format!("OUT[{name}]"),
            Opcode::AmWrite => "AMW".into(),
            Opcode::AmRead => "AMR".into(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(Opcode::Bin(BinOp::Add).arity(), 2);
        assert_eq!(Opcode::Merge.arity(), 3);
        assert_eq!(Opcode::TGate.arity(), 2);
        assert_eq!(Opcode::Source("a".into()).arity(), 0);
        assert_eq!(Opcode::CtlGen(CtlStream::constant(true, 3)).arity(), 0);
        assert_eq!(Opcode::Sink("x".into()).arity(), 1);
    }

    #[test]
    fn classification() {
        assert!(Opcode::AmWrite.is_array_memory());
        assert!(!Opcode::Id.is_array_memory());
        assert!(Opcode::Bin(BinOp::Mul).is_function_unit());
        assert!(!Opcode::Bin(BinOp::Lt).is_function_unit());
        assert!(!Opcode::Sink("x".into()).produces_output());
    }

    #[test]
    fn mnemonics_match_paper() {
        assert_eq!(Opcode::Bin(BinOp::Mul).mnemonic(), "MULT");
        assert_eq!(Opcode::Merge.mnemonic(), "MERG");
        assert_eq!(Opcode::Fifo(2).mnemonic(), "FIFO(2)");
    }
}
