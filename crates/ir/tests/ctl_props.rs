//! Randomized property tests for the control-stream algebra: the run-length
//! encoded representation must agree with materialized bit vectors under
//! every operation. Cases are generated with the workspace's deterministic
//! PRNG, so every run checks the same cases.

use valpipe_ir::CtlStream;
use valpipe_util::Rng;

const CASES: u64 = 256;

fn random_stream(r: &mut Rng) -> CtlStream {
    let n_runs = r.range(1, 8);
    CtlStream::from_runs((0..n_runs).map(|_| (r.flip(), r.range(1, 5) as u32)))
}

fn bits(s: &CtlStream, n: usize) -> Vec<bool> {
    s.take(n)
}

#[test]
fn negate_is_pointwise() {
    for case in 0..CASES {
        let mut r = Rng::seed(0x1001).fork(case);
        let s = random_stream(&mut r);
        let n = (s.wave_len() * 3) as usize;
        let neg = s.negate();
        assert_eq!(
            bits(&neg, n),
            bits(&s, n).into_iter().map(|b| !b).collect::<Vec<_>>()
        );
        // Involution.
        assert_eq!(neg.negate(), s);
    }
}

#[test]
fn and_or_pointwise() {
    for case in 0..CASES {
        let mut r = Rng::seed(0x1002).fork(case);
        let a = random_stream(&mut r);
        let b = random_stream(&mut r);
        // Align wave lengths by tiling to the LCM via explicit bits.
        let l = num_lcm(a.wave_len(), b.wave_len());
        let ae = CtlStream::from_runs(a.take(l as usize).into_iter().map(|v| (v, 1)));
        let be = CtlStream::from_runs(b.take(l as usize).into_iter().map(|v| (v, 1)));
        let n = (l * 2) as usize;
        assert_eq!(
            bits(&ae.and(&be), n),
            bits(&ae, n)
                .iter()
                .zip(bits(&be, n))
                .map(|(&x, y)| x && y)
                .collect::<Vec<_>>()
        );
        assert_eq!(
            bits(&ae.or(&be), n),
            bits(&ae, n)
                .iter()
                .zip(bits(&be, n))
                .map(|(&x, y)| x || y)
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn canonical_form_roundtrips() {
    for case in 0..CASES {
        let mut r = Rng::seed(0x1003).fork(case);
        let s = random_stream(&mut r);
        // Rebuilding from materialized single-bit runs yields the same
        // canonical pattern.
        let n = s.wave_len() as usize;
        let rebuilt = CtlStream::from_runs(s.take(n).into_iter().map(|v| (v, 1)));
        assert_eq!(rebuilt, s);
    }
}

#[test]
fn wave_len_and_trues_consistent() {
    for case in 0..CASES {
        let mut r = Rng::seed(0x1004).fork(case);
        let s = random_stream(&mut r);
        let n = s.wave_len() as usize;
        let b = s.take(n);
        assert_eq!(b.len(), n);
        assert_eq!(b.iter().filter(|&&x| x).count() as u32, s.trues_per_wave());
        // Periodicity.
        assert_eq!(s.take(2 * n)[n..].to_vec(), b);
    }
}

#[test]
fn compress_length_matches_mask() {
    let mut done = 0;
    let mut case = 0u64;
    while done < CASES {
        let mut r = Rng::seed(0x1005).fork(case);
        case += 1;
        let s = random_stream(&mut r);
        let mask_bits: Vec<bool> = (0..r.range(1, 16)).map(|_| r.flip()).collect();
        if !mask_bits.iter().any(|&b| b) {
            continue; // an all-false mask selects nothing; not a valid stream
        }
        done += 1;
        let l = mask_bits.len() as u32;
        let se = CtlStream::from_runs(s.take(l as usize).into_iter().map(|v| (v, 1)));
        let mask = CtlStream::from_runs(mask_bits.iter().map(|&b| (b, 1)));
        let sub = se.compress(&mask);
        assert_eq!(sub.wave_len(), mask.trues_per_wave());
        // Element-wise check of the first wave.
        let want: Vec<bool> = se
            .take(l as usize)
            .into_iter()
            .zip(&mask_bits)
            .filter(|&(_, &m)| m)
            .map(|(v, _)| v)
            .collect();
        assert_eq!(sub.take(want.len()), want);
    }
}

fn num_lcm(a: u32, b: u32) -> u32 {
    fn gcd(a: u32, b: u32) -> u32 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    a / gcd(a, b) * b
}
