//! Property tests for the control-stream algebra: the run-length encoded
//! representation must agree with materialized bit vectors under every
//! operation.

use proptest::prelude::*;
use valpipe_ir::CtlStream;

fn stream_strategy() -> impl Strategy<Value = CtlStream> {
    proptest::collection::vec((any::<bool>(), 1u32..5), 1..8)
        .prop_map(CtlStream::from_runs)
}

fn bits(s: &CtlStream, n: usize) -> Vec<bool> {
    s.take(n)
}

proptest! {
    #[test]
    fn negate_is_pointwise(s in stream_strategy()) {
        let n = (s.wave_len() * 3) as usize;
        let neg = s.negate();
        prop_assert_eq!(
            bits(&neg, n),
            bits(&s, n).into_iter().map(|b| !b).collect::<Vec<_>>()
        );
        // Involution.
        prop_assert_eq!(neg.negate(), s);
    }

    #[test]
    fn and_or_pointwise(a in stream_strategy(), b in stream_strategy()) {
        // Align wave lengths by tiling to the LCM via explicit bits.
        let la = a.wave_len();
        let lb = b.wave_len();
        let l = num_lcm(la, lb);
        let ae = CtlStream::from_runs(a.take(l as usize).into_iter().map(|v| (v, 1)));
        let be = CtlStream::from_runs(b.take(l as usize).into_iter().map(|v| (v, 1)));
        let n = (l * 2) as usize;
        prop_assert_eq!(
            bits(&ae.and(&be), n),
            bits(&ae, n).iter().zip(bits(&be, n)).map(|(&x, y)| x && y).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            bits(&ae.or(&be), n),
            bits(&ae, n).iter().zip(bits(&be, n)).map(|(&x, y)| x || y).collect::<Vec<_>>()
        );
    }

    #[test]
    fn canonical_form_roundtrips(s in stream_strategy()) {
        // Rebuilding from materialized single-bit runs yields the same
        // canonical pattern.
        let n = s.wave_len() as usize;
        let rebuilt = CtlStream::from_runs(s.take(n).into_iter().map(|v| (v, 1)));
        prop_assert_eq!(rebuilt, s);
    }

    #[test]
    fn wave_len_and_trues_consistent(s in stream_strategy()) {
        let n = s.wave_len() as usize;
        let b = s.take(n);
        prop_assert_eq!(b.len(), n);
        prop_assert_eq!(
            b.iter().filter(|&&x| x).count() as u32,
            s.trues_per_wave()
        );
        // Periodicity.
        prop_assert_eq!(s.take(2 * n)[n..].to_vec(), b);
    }

    #[test]
    fn compress_length_matches_mask(s in stream_strategy(), mask_bits in proptest::collection::vec(any::<bool>(), 1..16)) {
        prop_assume!(mask_bits.iter().any(|&b| b));
        let l = mask_bits.len() as u32;
        let se = CtlStream::from_runs(s.take(l as usize).into_iter().map(|v| (v, 1)));
        let mask = CtlStream::from_runs(mask_bits.iter().map(|&b| (b, 1)));
        let sub = se.compress(&mask);
        prop_assert_eq!(sub.wave_len(), mask.trues_per_wave());
        // Element-wise check of the first wave.
        let want: Vec<bool> = se
            .take(l as usize)
            .into_iter()
            .zip(&mask_bits)
            .filter(|&(_, &m)| m)
            .map(|(v, _)| v)
            .collect();
        prop_assert_eq!(sub.take(want.len()), want);
    }
}

fn num_lcm(a: u32, b: u32) -> u32 {
    fn gcd(a: u32, b: u32) -> u32 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    a / gcd(a, b) * b
}
