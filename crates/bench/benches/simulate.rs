//! Bench: simulator throughput (instruction times and packets per wall
//! second) on the paper's workloads.

use valpipe_bench::timing::{bench_throughput, iters};
use valpipe_bench::workloads::{example2_src, fig3_src, fig6_src, inputs_for_compiled};
use valpipe_core::verify::{run, stream_inputs};
use valpipe_core::{compile_source, CompileOptions, ForIterScheme};
use valpipe_machine::{SimConfig, Simulator};

fn main() {
    let waves = 10usize;
    for (name, src, opts) in [
        ("fig6", fig6_src(64), CompileOptions::paper()),
        ("fig3", fig3_src(64), CompileOptions::paper()),
        ("fig8_companion", example2_src(64), {
            let mut o = CompileOptions::paper();
            o.scheme = ForIterScheme::Companion;
            o
        }),
        ("fig7_todd", example2_src(64), {
            let mut o = CompileOptions::paper();
            o.scheme = ForIterScheme::Todd;
            o
        }),
    ] {
        let compiled = compile_source(&src, &opts).unwrap();
        let exe = compiled.executable();
        let arrays = inputs_for_compiled(&compiled);
        let inputs = stream_inputs(&compiled, &arrays, waves);
        // Packets processed per run (measure once for throughput units).
        let probe = run(&compiled, &arrays, waves, SimConfig::new()).unwrap();
        bench_throughput(
            &format!("simulate/{name}/64"),
            iters(10),
            probe.total_fires,
            || {
                Simulator::builder(&exe)
                    .inputs(inputs.clone())
                    .run()
                    .unwrap()
            },
        );
    }
}
