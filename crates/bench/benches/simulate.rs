//! Criterion bench: simulator throughput (instruction times and packets
//! per wall second) on the paper's workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use valpipe_bench::workloads::{example2_src, fig3_src, fig6_src, inputs_for_compiled};
use valpipe_core::verify::{run, stream_inputs};
use valpipe_core::{compile_source, CompileOptions, ForIterScheme};
use valpipe_machine::{SimOptions, Simulator};

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    let waves = 10usize;
    for (name, src, opts) in [
        ("fig6", fig6_src(64), CompileOptions::paper()),
        ("fig3", fig3_src(64), CompileOptions::paper()),
        ("fig8_companion", example2_src(64), {
            let mut o = CompileOptions::paper();
            o.scheme = ForIterScheme::Companion;
            o
        }),
        ("fig7_todd", example2_src(64), {
            let mut o = CompileOptions::paper();
            o.scheme = ForIterScheme::Todd;
            o
        }),
    ] {
        let compiled = compile_source(&src, &opts).unwrap();
        let exe = compiled.executable();
        let arrays = inputs_for_compiled(&compiled);
        let inputs = stream_inputs(&compiled, &arrays, waves);
        // Packets processed per run (measure once for throughput units).
        let probe = run(&compiled, &arrays, waves, SimOptions::default()).unwrap();
        group.throughput(Throughput::Elements(probe.total_fires));
        group.bench_with_input(BenchmarkId::new(name, 64), &(), |b, _| {
            b.iter(|| {
                Simulator::new(&exe, &inputs, SimOptions::default())
                    .unwrap()
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
