//! Bench: steady-state fast-forward vs exact event-driven execution.
//!
//! The acceptance workload is Fig. 6-class: the paper's Example 1
//! (boundary-aware smoothing) compiled and streamed for enough waves
//! that the run crosses 10⁶ instruction times in steady state. The
//! fast-forward engine must (a) produce the bit-identical `RunResult`,
//! (b) simulate at least 100× fewer steps than the run spans, and
//! (c) be dramatically faster in wall-clock — all asserted here, not
//! just printed. With `--json` the measurements land in the
//! `BENCH_machine.json` trajectory under bench `fast_forward`.

use std::time::Instant;

use valpipe_bench::timing::{iters, json_mode, smoke_mode, BenchLog};
use valpipe_bench::workloads::{fig6_src, inputs_for_compiled};
use valpipe_core::verify::stream_inputs;
use valpipe_core::{compile_source, CompileOptions};
use valpipe_ir::Graph;
use valpipe_machine::{Kernel, ProgramInputs, RunSpec, SimConfig, Simulator};

fn median_secs(n: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.total_cmp(y));
    times[times.len() / 2]
}

fn session<'g>(
    g: &'g Graph,
    inputs: &ProgramInputs,
    max_steps: u64,
) -> valpipe_machine::Session<'g> {
    Simulator::builder(g)
        .inputs(inputs.clone())
        .config(
            SimConfig::new()
                .max_steps(max_steps)
                .kernel(Kernel::EventDriven),
        )
        .build()
        .unwrap()
}

fn main() {
    let mut log = BenchLog::new();

    // Fig. 6-class steady-state workload. The wave is m+2 elements wide;
    // at rate 1/2 each wave costs ~2(m+2) instruction times, so the full
    // run spans over a million steps.
    let (m, waves) = if smoke_mode() {
        (24, 2_000)
    } else {
        (24, 20_000)
    };
    let compiled = compile_source(&fig6_src(m), &CompileOptions::paper()).unwrap();
    let exe = compiled.executable();
    let arrays = inputs_for_compiled(&compiled);
    let inputs = stream_inputs(&compiled, &arrays, waves);
    let max_steps = 16 * (m as u64 + 2) * waves as u64;

    let exact = session(&exe, &inputs, max_steps)
        .drive(RunSpec::new())
        .unwrap()
        .result();
    let driven = session(&exe, &inputs, max_steps)
        .drive(RunSpec::new().fast_forward(1))
        .unwrap();
    let stats = driven.fast_forward.clone();
    let ff = driven.result();
    assert_eq!(ff, exact, "fast-forward diverged from exact execution");
    let executed = ff.steps - stats.skipped_steps;
    if !smoke_mode() {
        assert!(
            ff.steps >= 1_000_000,
            "acceptance workload must span >= 1e6 steps, got {}",
            ff.steps
        );
        assert!(
            executed * 100 <= ff.steps,
            "fast-forward must simulate >= 100x fewer steps: executed {executed} of {}",
            ff.steps
        );
    }

    let n = iters(5);
    let t_exact = median_secs(n, || {
        let _ = session(&exe, &inputs, max_steps)
            .drive(RunSpec::new())
            .unwrap();
    });
    let t_ff = median_secs(n, || {
        let _ = session(&exe, &inputs, max_steps)
            .drive(RunSpec::new().fast_forward(1))
            .unwrap();
    });
    println!(
        "fastforward/fig6_steady m={m} waves={waves}   exact {:>10.3}ms   ff {:>10.3}ms   speedup {:>7.2}x",
        t_exact * 1e3,
        t_ff * 1e3,
        t_exact / t_ff,
    );
    println!(
        "fastforward/fig6_steady accounting: {} steps, {} skipped, {} executed, period {:?}, {} windows ({} verified)",
        ff.steps, stats.skipped_steps, executed, stats.period, stats.windows, stats.verified_windows,
    );

    log.record(
        "fig6_steady",
        exe.node_count(),
        exe.arc_count(),
        "event",
        1,
        exact.steps,
        t_exact,
    );
    log.record(
        "fig6_steady",
        exe.node_count(),
        exe.arc_count(),
        "event+fastforward",
        1,
        executed,
        t_ff,
    );

    if json_mode() {
        let path = log
            .write("fast_forward")
            .expect("bench trajectory must be writable");
        println!("fastforward: wrote bench trajectory to {path}");
    }
}
