//! Bench: compiler wall time — frontend + classification + graph
//! construction + balancing — across workloads and sizes, plus the
//! query engine's cold-vs-warm incremental recompile phases.
//!
//! The incremental rows land in the machine bench trajectory
//! (`BENCH_machine.json` under `--json`) with `steps` = source bytes, so
//! `steps_per_sec` reads as compile throughput in bytes/s and the
//! regression gate can watch both the cold pipeline and the warm
//! single-block-edit path. Per-pass wall times ride along as a nested
//! `passes` object (milliseconds).

use std::time::Instant;
use valpipe_bench::timing::{bench, iters, json_mode, smoke_mode, BenchLog};
use valpipe_bench::workloads::{chain_src, fig3_src, fig6_src};
use valpipe_core::{
    compile_source, CompileLimits, CompileOptions, ForIterScheme, PipelineOutput, QueryEngine,
};
use valpipe_util::Json;

/// Median wall time of `n` runs.
fn median_secs(n: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.total_cmp(y));
    times[times.len() / 2]
}

fn engine_compile(engine: &mut QueryEngine, src: &str) -> PipelineOutput {
    engine
        .run_source(
            &CompileOptions::paper(),
            &CompileLimits::unbounded(),
            &[],
            src,
            "bench.val",
        )
        .unwrap()
}

/// Per-pass wall times of one run, as a `{name: ms}` JSON object.
fn pass_millis(out: &PipelineOutput) -> Json {
    Json::Obj(
        out.pass_stats
            .iter()
            .map(|s| (s.name.to_string(), Json::Float(s.wall_s * 1e3)))
            .collect(),
    )
}

/// Cold compile, warm no-op recompile, and warm single-block-edit
/// recompile of one workload, recorded into the trajectory. The edit
/// swaps one block's literal for a fresh value each iteration, so every
/// timed run pays the true steady-state cost of one changed block.
///
/// Iteration counts deliberately ignore smoke mode (smoke already trims
/// the *workload* via `big`): these rows feed the bench_gate regression
/// comparison, and a single-sample median of a ~30 ms warm recompile is
/// too jittery for a 15% threshold. Warm phases are cheap, so they get
/// extra samples.
fn incremental_phases(log: &mut BenchLog, label: &str, src: &str, n: usize) {
    let n_warm = n.max(15);
    let bytes = src.len() as u64;
    let reference = engine_compile(&mut QueryEngine::new(), src);
    let (cells, arcs) = (
        reference.compiled.graph.node_count(),
        reference.compiled.graph.arcs.len(),
    );

    let t_cold = median_secs(n, || {
        engine_compile(&mut QueryEngine::new(), src);
    });
    println!("compile/{label}/cold: {:.3} ms", t_cold * 1e3);
    log.record_with(
        label,
        cells,
        arcs,
        "compile-cold",
        1,
        bytes,
        t_cold,
        [
            ("src_bytes", Json::Int(bytes as i64)),
            ("ns_per_byte", Json::Float(t_cold * 1e9 / bytes as f64)),
            ("passes", pass_millis(&reference)),
        ],
    );

    let mut engine = QueryEngine::new();
    engine_compile(&mut engine, src);
    let t_noop = median_secs(n_warm, || {
        engine_compile(&mut engine, src);
    });
    let noop_stats = (engine.stats().total(), engine.stats().executed());
    println!("compile/{label}/warm-noop: {:.3} ms", t_noop * 1e3);
    log.record_with(
        label,
        cells,
        arcs,
        "compile-warm-noop",
        1,
        bytes,
        t_noop,
        [
            ("src_bytes", Json::Int(bytes as i64)),
            ("ns_per_byte", Json::Float(t_noop * 1e9 / bytes as f64)),
            ("queries_total", Json::Int(noop_stats.0 as i64)),
            ("queries_executed", Json::Int(noop_stats.1 as i64)),
        ],
    );

    // One length-preserving literal edit per timed run, each with a fresh
    // value so the edited block's queries genuinely re-execute.
    assert!(
        src.contains("0.5"),
        "workload must carry an editable literal"
    );
    let mut serial = 0usize;
    let t_edit = median_secs(n_warm, || {
        serial += 1;
        let lit = format!("0.{}", 51 + (serial % 49)); // 0.51 ..= 0.99
        let edited = src.replacen("0.5", &lit, 1);
        engine_compile(&mut engine, &edited);
    });
    let edit_stats = (engine.stats().total(), engine.stats().executed());
    println!("compile/{label}/warm-edit: {:.3} ms", t_edit * 1e3);
    log.record_with(
        label,
        cells,
        arcs,
        "compile-warm-edit",
        1,
        bytes,
        t_edit,
        [
            ("src_bytes", Json::Int(bytes as i64)),
            ("ns_per_byte", Json::Float(t_edit * 1e9 / bytes as f64)),
            ("queries_total", Json::Int(edit_stats.0 as i64)),
            ("queries_executed", Json::Int(edit_stats.1 as i64)),
        ],
    );
}

fn main() {
    for m in [32usize, 256, 1024] {
        let src = fig6_src(m);
        bench(&format!("compile/fig6_forall/{m}"), iters(20), || {
            compile_source(&src, &CompileOptions::paper()).unwrap()
        });
        let src = fig3_src(m);
        bench(&format!("compile/fig3_program/{m}"), iters(20), || {
            compile_source(&src, &CompileOptions::paper()).unwrap()
        });
    }
    for blocks in [10usize, 40] {
        let src = chain_src(2 * blocks + 16, blocks);
        bench(&format!("compile/chain_blocks/{blocks}"), iters(20), || {
            compile_source(&src, &CompileOptions::paper()).unwrap()
        });
    }
    let mut todd = CompileOptions::paper();
    todd.scheme = ForIterScheme::Todd;
    let src = fig3_src(256);
    bench("compile/fig3_todd_m256", iters(20), || {
        compile_source(&src, &todd).unwrap()
    });

    // Incremental phases: small, medium, and the §4 "several hundred
    // blocks" shape (trimmed in smoke mode to keep CI fast).
    let mut log = BenchLog::new();
    let big = if smoke_mode() { 250 } else { 1000 };
    incremental_phases(&mut log, "incr_small_chain4", &chain_src(24, 4), 20);
    incremental_phases(
        &mut log,
        "incr_medium_chain40",
        &chain_src(96, 40),
        iters(10),
    );
    incremental_phases(
        &mut log,
        &format!("incr_large_chain{big}"),
        &chain_src(2 * big + 16, big),
        iters(3),
    );

    if json_mode() {
        let path = log
            .write("compile")
            .expect("bench trajectory must be writable");
        println!("compile: wrote bench trajectory to {path}");
    }
}
