//! Criterion bench: compiler wall time — frontend + classification +
//! graph construction + balancing — across workloads and sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valpipe_bench::workloads::{chain_src, fig3_src, fig6_src};
use valpipe_core::{compile_source, CompileOptions, ForIterScheme};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for m in [32usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("fig6_forall", m), &m, |b, &m| {
            let src = fig6_src(m);
            b.iter(|| compile_source(&src, &CompileOptions::paper()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fig3_program", m), &m, |b, &m| {
            let src = fig3_src(m);
            b.iter(|| compile_source(&src, &CompileOptions::paper()).unwrap())
        });
    }
    for blocks in [10usize, 40] {
        group.bench_with_input(BenchmarkId::new("chain_blocks", blocks), &blocks, |b, &blocks| {
            let src = chain_src(2 * blocks + 16, blocks);
            b.iter(|| compile_source(&src, &CompileOptions::paper()).unwrap())
        });
    }
    let mut todd = CompileOptions::paper();
    todd.scheme = ForIterScheme::Todd;
    group.bench_function("fig3_todd_m256", |b| {
        let src = fig3_src(256);
        b.iter(|| compile_source(&src, &todd).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
