//! Bench: compiler wall time — frontend + classification + graph
//! construction + balancing — across workloads and sizes.

use valpipe_bench::timing::{bench, iters};
use valpipe_bench::workloads::{chain_src, fig3_src, fig6_src};
use valpipe_core::{compile_source, CompileOptions, ForIterScheme};

fn main() {
    for m in [32usize, 256, 1024] {
        let src = fig6_src(m);
        bench(&format!("compile/fig6_forall/{m}"), iters(20), || {
            compile_source(&src, &CompileOptions::paper()).unwrap()
        });
        let src = fig3_src(m);
        bench(&format!("compile/fig3_program/{m}"), iters(20), || {
            compile_source(&src, &CompileOptions::paper()).unwrap()
        });
    }
    for blocks in [10usize, 40] {
        let src = chain_src(2 * blocks + 16, blocks);
        bench(&format!("compile/chain_blocks/{blocks}"), iters(20), || {
            compile_source(&src, &CompileOptions::paper()).unwrap()
        });
    }
    let mut todd = CompileOptions::paper();
    todd.scheme = ForIterScheme::Todd;
    let src = fig3_src(256);
    bench("compile/fig3_todd_m256", iters(20), || {
        compile_source(&src, &todd).unwrap()
    });
}
