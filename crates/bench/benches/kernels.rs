//! Bench: scan vs event-driven vs parallel step-loop kernels.
//!
//! The scan kernel pays O(cells) every instruction time; the event-driven
//! kernel pays O(fired + woken). On a dense, fully pipelined workload the
//! two are close (most cells fire most steps). The separation shows on
//! *sparse-activity* workloads — a long pipeline carrying a handful of
//! packets, where the scan kernel re-examines thousands of idle cells per
//! step. That is the acceptance workload: the event kernel must beat the
//! scan kernel by at least 3× there (asserted, not just printed).
//!
//! The parallel kernel's acceptance workload is the opposite regime: a
//! *wide* dense program (>4000 cells, hundreds fireable per tick) swept
//! across worker counts. On a ≥4-core host, 4 workers must beat the
//! event kernel by ≥2.5× and a single parallel worker must stay within
//! 15% of it (asserted when the host has the cores; printed regardless).
//!
//! All kernels must agree bit-for-bit on every workload; the bench
//! asserts that too, so a timing win can never hide a semantics drift.
//! With `--json`, every measurement is also written to
//! `BENCH_machine.json` (or `$BENCH_JSON_PATH`) as the machine-readable
//! bench trajectory.

use std::time::Instant;
use valpipe_bench::timing::{bench, iters, json_mode, smoke_mode, BenchLog};
use valpipe_bench::workloads::{fig6_src, inputs_for_compiled};
use valpipe_core::verify::stream_inputs;
use valpipe_core::{compile_source, CompileOptions};
use valpipe_ir::value::Value;
use valpipe_ir::{Graph, Opcode};
use valpipe_machine::{
    EpochStats, Kernel, ProgramInputs, RunOutcome, RunResult, RunSpec, ShardPolicy, SimConfig,
    Simulator, DEFAULT_EPOCH_CAP,
};
use valpipe_util::{Json, Rng};

/// An identity chain of `stages` cells: with only a few packets in
/// flight, almost every cell is idle at almost every step.
fn sparse_chain(stages: usize) -> Graph {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let mut prev = a;
    for k in 0..stages {
        prev = g.cell(Opcode::Id, format!("s{k}"), &[prev.into()]);
    }
    let _ = g.cell(Opcode::Sink("out".into()), "out", &[prev.into()]);
    g
}

/// A wide dense program — `chains` parallel arithmetic pipelines — so
/// hundreds of cells are fireable every tick: the regime the parallel
/// kernel is built for. Each chain's input stream splits off the one
/// root generator, so the workload is fully determined by the seed.
fn wide_grid(chains: usize, stages: usize, packets: usize) -> (Graph, ProgramInputs) {
    let mut g = Graph::new();
    let mut inputs = ProgramInputs::new();
    let mut root = Rng::seed(0xBEEF);
    for c in 0..chains {
        let mut r = root.split();
        let name = format!("a{c}");
        let a = g.add_node(Opcode::Source(name.clone()), &name);
        let mut prev = a;
        for k in 0..stages {
            prev = g.cell(
                Opcode::Bin(if (c + k) % 2 == 0 {
                    valpipe_ir::value::BinOp::Add
                } else {
                    valpipe_ir::value::BinOp::Mul
                }),
                format!("s{c}_{k}"),
                &[prev.into(), (0.5 + r.f64()).into()],
            );
        }
        let _ = g.cell(
            Opcode::Sink(format!("y{c}")),
            format!("y{c}"),
            &[prev.into()],
        );
        let vals: Vec<f64> = (0..packets).map(|_| r.f64()).collect();
        inputs = inputs.bind_reals(&name, &vals);
    }
    (g, inputs)
}

fn run_kernel(g: &Graph, inputs: &ProgramInputs, kernel: Kernel) -> RunResult {
    Simulator::builder(g)
        .inputs(inputs.clone())
        .kernel(kernel)
        .run()
        .unwrap()
}

/// Run under an explicit config through `Session::drive`, returning the
/// result plus what the epoch engine accomplished.
fn drive_config(g: &Graph, inputs: &ProgramInputs, cfg: SimConfig) -> (RunResult, EpochStats) {
    let driven = Simulator::builder(g)
        .inputs(inputs.clone())
        .config(cfg)
        .build()
        .unwrap()
        .drive(RunSpec::new())
        .unwrap();
    let RunOutcome::Done(result) = driven.outcome else {
        panic!("bench run must complete");
    };
    (*result, driven.epochs)
}

/// Epoch/shard record fields shared by every parallel-kernel bench row.
fn epoch_extras(cap: u64, policy: ShardPolicy, stats: &EpochStats) -> Vec<(&'static str, Json)> {
    vec![
        ("epoch_cap", Json::Int(cap as i64)),
        ("shard_policy", Json::Str(policy.as_str().to_string())),
        ("epochs", Json::Int(stats.epochs as i64)),
        ("batched_steps", Json::Int(stats.batched_steps as i64)),
        ("mean_horizon", Json::Float(stats.mean_horizon())),
        (
            "horizon_fallbacks",
            Json::Int(stats.horizon_fallbacks as i64),
        ),
        (
            "cross_wakes_deferred",
            Json::Int(stats.cross_wakes_deferred as i64),
        ),
        ("cross_arcs", Json::Int(stats.cross_arcs as i64)),
    ]
}

/// Median wall time of `n` runs.
fn median_secs(n: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.total_cmp(y));
    times[times.len() / 2]
}

fn kernel_tag(kernel: Kernel) -> (&'static str, usize) {
    match kernel {
        Kernel::Scan => ("scan", 1),
        Kernel::EventDriven => ("event", 1),
        Kernel::ParallelEvent(w) => ("parallel-event", w),
    }
}

fn main() {
    let mut log = BenchLog::new();

    // 1. Sparse-activity acceptance workload: a deep pipe, few packets.
    let stages = if smoke_mode() { 400 } else { 4000 };
    let g = sparse_chain(stages);
    let packets: Vec<f64> = (0..8).map(|i| i as f64).collect();
    let inputs = ProgramInputs::new().bind_reals("a", &packets);

    let scan = run_kernel(&g, &inputs, Kernel::Scan);
    let event = run_kernel(&g, &inputs, Kernel::EventDriven);
    assert_eq!(scan, event, "kernels disagree on the sparse chain");

    let n = iters(10);
    let t_scan = median_secs(n, || {
        let _ = run_kernel(&g, &inputs, Kernel::Scan);
    });
    let t_event = median_secs(n, || {
        let _ = run_kernel(&g, &inputs, Kernel::EventDriven);
    });
    let speedup = t_scan / t_event;
    println!(
        "kernels/sparse_chain/{stages}x8pkts       scan {:>10.3}ms   event {:>10.3}ms   speedup {speedup:>6.2}x",
        t_scan * 1e3,
        t_event * 1e3,
    );
    log.record(
        "sparse_chain",
        g.node_count(),
        g.arc_count(),
        "scan",
        1,
        scan.steps,
        t_scan,
    );
    log.record(
        "sparse_chain",
        g.node_count(),
        g.arc_count(),
        "event",
        1,
        event.steps,
        t_event,
    );
    if !smoke_mode() {
        assert!(
            speedup >= 3.0,
            "event kernel must be >= 3x faster than scan on the sparse workload, got {speedup:.2}x"
        );
    }

    // 2. A cyclic sparse workload: one token circulating a long ring.
    let ring_len = if smoke_mode() { 200 } else { 2000 };
    let mut rg = Graph::new();
    let first = rg.add_node(Opcode::Id, "r0");
    let mut prev = first;
    for k in 1..ring_len {
        prev = rg.cell(Opcode::Id, format!("r{k}"), &[prev.into()]);
    }
    rg.connect_init(prev, first, 0, Value::Int(1));
    let _ = rg.cell(Opcode::Sink("out".into()), "out", &[prev.into()]);
    let ring_run = |kernel: Kernel| {
        Simulator::builder(&rg)
            .max_steps(if smoke_mode() { 20_000 } else { 200_000 })
            .kernel(kernel)
            .run()
            .unwrap()
    };
    let ring_ref = ring_run(Kernel::Scan);
    assert_eq!(
        ring_ref,
        ring_run(Kernel::EventDriven),
        "kernels disagree on the ring"
    );
    let t_scan = median_secs(n, || {
        let _ = ring_run(Kernel::Scan);
    });
    let t_event = median_secs(n, || {
        let _ = ring_run(Kernel::EventDriven);
    });
    println!(
        "kernels/ring/{ring_len}x1token            scan {:>10.3}ms   event {:>10.3}ms   speedup {:>6.2}x",
        t_scan * 1e3,
        t_event * 1e3,
        t_scan / t_event,
    );
    log.record(
        "ring",
        rg.node_count(),
        rg.arc_count(),
        "scan",
        1,
        ring_ref.steps,
        t_scan,
    );
    log.record(
        "ring",
        rg.node_count(),
        rg.arc_count(),
        "event",
        1,
        ring_ref.steps,
        t_event,
    );

    // 3. Dense paper workload: both sequential kernels on fig6, for the
    // honest "what does it cost when everything fires" number.
    let compiled = compile_source(&fig6_src(64), &CompileOptions::paper()).unwrap();
    let exe = compiled.executable();
    let arrays = inputs_for_compiled(&compiled);
    let dense_inputs = stream_inputs(&compiled, &arrays, 10);
    let fig6_ref = run_kernel(&exe, &dense_inputs, Kernel::Scan);
    assert_eq!(
        fig6_ref,
        run_kernel(&exe, &dense_inputs, Kernel::EventDriven),
        "kernels disagree on fig6"
    );
    for kernel in [Kernel::Scan, Kernel::EventDriven] {
        bench(&format!("kernels/fig6_dense/{kernel:?}"), n, || {
            run_kernel(&exe, &dense_inputs, kernel)
        });
    }

    // 4. Worker sweep on the wide dense grid — the parallel kernel's
    // acceptance workload (>4000 cells, hundreds fireable per tick).
    let (chains, stages, pkts) = if smoke_mode() {
        (48, 8, 12)
    } else {
        (80, 50, 64)
    };
    let (wg, winputs) = wide_grid(chains, stages, pkts);
    if !smoke_mode() {
        assert!(
            wg.node_count() >= 4000,
            "acceptance grid must exceed 4000 cells"
        );
    }
    let reference = run_kernel(&wg, &winputs, Kernel::EventDriven);
    let mut t_of: Vec<(Kernel, f64)> = Vec::new();
    for kernel in [
        Kernel::Scan,
        Kernel::EventDriven,
        Kernel::ParallelEvent(1),
        Kernel::ParallelEvent(2),
        Kernel::ParallelEvent(4),
    ] {
        let (r, stats) = drive_config(&wg, &winputs, SimConfig::new().kernel(kernel));
        assert_eq!(r, reference, "{kernel:?} disagrees on the wide grid");
        let t = median_secs(n, || {
            let _ = run_kernel(&wg, &winputs, kernel);
        });
        let (tag, workers) = kernel_tag(kernel);
        println!(
            "kernels/wide_grid/{}cells/{tag}{workers}   {:>10.3}ms   {:>12.0} steps/s",
            wg.node_count(),
            t * 1e3,
            reference.steps as f64 / t,
        );
        let extras = if matches!(kernel, Kernel::ParallelEvent(_)) {
            epoch_extras(DEFAULT_EPOCH_CAP, ShardPolicy::Topology, &stats)
        } else {
            Vec::new()
        };
        log.record_with(
            "wide_grid",
            wg.node_count(),
            wg.arc_count(),
            tag,
            workers,
            reference.steps,
            t,
            extras,
        );
        t_of.push((kernel, t));
    }
    let t = |k: Kernel| t_of.iter().find(|(kk, _)| *kk == k).unwrap().1;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let par_speedup = t(Kernel::EventDriven) / t(Kernel::ParallelEvent(4));
    let par1_overhead = t(Kernel::ParallelEvent(1)) / t(Kernel::EventDriven);
    println!(
        "kernels/wide_grid summary: event/parallel4 {par_speedup:.2}x, parallel1 overhead {:.1}% ({cores} host cores)",
        (par1_overhead - 1.0) * 100.0,
    );
    if !smoke_mode() {
        assert!(
            par1_overhead <= 1.15,
            "single-worker parallel kernel must stay within 15% of the event kernel, got {:.1}% over",
            (par1_overhead - 1.0) * 100.0
        );
        if cores >= 4 {
            assert!(
                par_speedup >= 2.5,
                "parallel kernel at 4 workers must be >= 2.5x the event kernel on a {cores}-core host, got {par_speedup:.2}x"
            );
        } else {
            println!(
                "kernels/wide_grid: host has {cores} core(s); 4-worker speedup target needs >= 4 — recorded, not asserted"
            );
        }
    }

    // 5. Epoch/shard sweep on the same grid: how the barrier-amortizing
    // horizon cap and the sharding policy shape the 4-worker kernel.
    // cap=1 disables batching (the pre-epoch per-step kernel), and the
    // striped policy cuts chains across shards — both honest baselines.
    for policy in [ShardPolicy::Topology, ShardPolicy::Striped] {
        for cap in [1u64, 4, 16, 64] {
            let cfg = SimConfig::new()
                .kernel(Kernel::ParallelEvent(4))
                .epoch_cap(cap)
                .shard_policy(policy);
            let (r, stats) = drive_config(&wg, &winputs, cfg.clone());
            assert_eq!(
                r, reference,
                "epoch sweep (cap {cap}, {policy:?}) disagrees on the wide grid"
            );
            let t = median_secs(n, || {
                let _ = drive_config(&wg, &winputs, cfg.clone());
            });
            println!(
                "kernels/wide_grid/epoch_sweep/{}/cap{cap}   {:>10.3}ms   {:>12.0} steps/s   epochs {} (mean horizon {:.1}, {} fallbacks)",
                policy.as_str(),
                t * 1e3,
                reference.steps as f64 / t,
                stats.epochs,
                stats.mean_horizon(),
                stats.horizon_fallbacks,
            );
            log.record_with(
                "wide_grid",
                wg.node_count(),
                wg.arc_count(),
                "parallel-event",
                4,
                reference.steps,
                t,
                epoch_extras(cap, policy, &stats),
            );
        }
    }

    if json_mode() {
        let path = log
            .write("kernels")
            .expect("bench trajectory must be writable");
        println!("kernels: wrote bench trajectory to {path}");
    }
}
