//! Bench: scan vs event-driven step-loop kernels.
//!
//! The scan kernel pays O(cells) every instruction time; the event-driven
//! kernel pays O(fired + woken). On a dense, fully pipelined workload the
//! two are close (most cells fire most steps). The separation shows on
//! *sparse-activity* workloads — a long pipeline carrying a handful of
//! packets, where the scan kernel re-examines thousands of idle cells per
//! step. That is the acceptance workload: the event kernel must beat the
//! scan kernel by at least 3× there (asserted, not just printed).
//!
//! Both kernels must also agree bit-for-bit on every workload; the bench
//! asserts that too, so a timing win can never hide a semantics drift.

use std::time::Instant;
use valpipe_bench::timing::{bench, iters, smoke_mode};
use valpipe_bench::workloads::{fig6_src, inputs_for_compiled};
use valpipe_core::verify::stream_inputs;
use valpipe_core::{compile_source, CompileOptions};
use valpipe_ir::value::Value;
use valpipe_ir::{Graph, Opcode};
use valpipe_machine::{Kernel, ProgramInputs, RunResult, Simulator};

/// An identity chain of `stages` cells: with only a few packets in
/// flight, almost every cell is idle at almost every step.
fn sparse_chain(stages: usize) -> Graph {
    let mut g = Graph::new();
    let a = g.add_node(Opcode::Source("a".into()), "a");
    let mut prev = a;
    for k in 0..stages {
        prev = g.cell(Opcode::Id, format!("s{k}"), &[prev.into()]);
    }
    let _ = g.cell(Opcode::Sink("out".into()), "out", &[prev.into()]);
    g
}

fn run_kernel(g: &Graph, inputs: &ProgramInputs, kernel: Kernel) -> RunResult {
    Simulator::builder(g)
        .inputs(inputs.clone())
        .kernel(kernel)
        .run()
        .unwrap()
}

/// Median wall time of `n` runs.
fn median_secs(n: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.total_cmp(y));
    times[times.len() / 2]
}

fn main() {
    // 1. Sparse-activity acceptance workload: a deep pipe, few packets.
    let stages = if smoke_mode() { 400 } else { 4000 };
    let g = sparse_chain(stages);
    let packets: Vec<f64> = (0..8).map(|i| i as f64).collect();
    let inputs = ProgramInputs::new().bind_reals("a", &packets);

    let scan = run_kernel(&g, &inputs, Kernel::Scan);
    let event = run_kernel(&g, &inputs, Kernel::EventDriven);
    assert_eq!(scan, event, "kernels disagree on the sparse chain");

    let n = iters(10);
    let t_scan = median_secs(n, || {
        let _ = run_kernel(&g, &inputs, Kernel::Scan);
    });
    let t_event = median_secs(n, || {
        let _ = run_kernel(&g, &inputs, Kernel::EventDriven);
    });
    let speedup = t_scan / t_event;
    println!(
        "kernels/sparse_chain/{stages}x8pkts       scan {:>10.3}ms   event {:>10.3}ms   speedup {speedup:>6.2}x",
        t_scan * 1e3,
        t_event * 1e3,
    );
    if !smoke_mode() {
        assert!(
            speedup >= 3.0,
            "event kernel must be >= 3x faster than scan on the sparse workload, got {speedup:.2}x"
        );
    }

    // 2. A cyclic sparse workload: one token circulating a long ring.
    let ring_len = if smoke_mode() { 200 } else { 2000 };
    let mut rg = Graph::new();
    let first = rg.add_node(Opcode::Id, "r0");
    let mut prev = first;
    for k in 1..ring_len {
        prev = rg.cell(Opcode::Id, format!("r{k}"), &[prev.into()]);
    }
    rg.connect_init(prev, first, 0, Value::Int(1));
    let _ = rg.cell(Opcode::Sink("out".into()), "out", &[prev.into()]);
    let ring_run = |kernel: Kernel| {
        Simulator::builder(&rg)
            .max_steps(if smoke_mode() { 20_000 } else { 200_000 })
            .kernel(kernel)
            .run()
            .unwrap()
    };
    assert_eq!(
        ring_run(Kernel::Scan),
        ring_run(Kernel::EventDriven),
        "kernels disagree on the ring"
    );
    let t_scan = median_secs(n, || {
        let _ = ring_run(Kernel::Scan);
    });
    let t_event = median_secs(n, || {
        let _ = ring_run(Kernel::EventDriven);
    });
    println!(
        "kernels/ring/{ring_len}x1token            scan {:>10.3}ms   event {:>10.3}ms   speedup {:>6.2}x",
        t_scan * 1e3,
        t_event * 1e3,
        t_scan / t_event,
    );

    // 3. Dense paper workload: both kernels on fig6, for the honest
    // "what does it cost when everything fires" number.
    let compiled = compile_source(&fig6_src(64), &CompileOptions::paper()).unwrap();
    let exe = compiled.executable();
    let arrays = inputs_for_compiled(&compiled);
    let dense_inputs = stream_inputs(&compiled, &arrays, 10);
    assert_eq!(
        run_kernel(&exe, &dense_inputs, Kernel::Scan),
        run_kernel(&exe, &dense_inputs, Kernel::EventDriven),
        "kernels disagree on fig6"
    );
    for kernel in [Kernel::Scan, Kernel::EventDriven] {
        bench(&format!("kernels/fig6_dense/{kernel:?}"), n, || {
            run_kernel(&exe, &dense_inputs, kernel)
        });
    }
}
