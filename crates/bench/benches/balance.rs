//! Bench: balancing-solver scaling (§8's polynomial-time claim) — ASAP,
//! heuristic, and the min-cost-flow-dual optimum on growing random DAGs.

use valpipe_balance::{problem, solve};
use valpipe_bench::timing::{bench, iters};
use valpipe_ir::value::BinOp;
use valpipe_ir::{Graph, Opcode};
use valpipe_util::Rng;

fn random_dag(width: usize, layers: usize, seed: u64) -> Graph {
    let mut rng = Rng::seed(seed);
    let mut g = Graph::new();
    let mut pool: Vec<valpipe_ir::NodeId> = (0..width)
        .map(|k| g.add_node(Opcode::Source(format!("s{k}")), format!("s{k}")))
        .collect();
    for li in 0..layers {
        let mut next = Vec::new();
        for ni in 0..width {
            let a = pool[rng.below(pool.len())];
            let b = pool[rng.below(pool.len())];
            let node = if a == b || rng.chance(0.3) {
                g.cell(Opcode::Id, format!("n{li}_{ni}"), &[a.into()])
            } else {
                g.cell(
                    Opcode::Bin(BinOp::Add),
                    format!("n{li}_{ni}"),
                    &[a.into(), b.into()],
                )
            };
            next.push(node);
        }
        pool.extend(next);
    }
    for id in g.node_ids().collect::<Vec<_>>() {
        if g.nodes[id.idx()].op.produces_output() && g.nodes[id.idx()].outputs.is_empty() {
            let name = format!("out{}", id.idx());
            let s = g.add_node(Opcode::Sink(name.clone()), name);
            g.connect(id, s, 0);
        }
    }
    g
}

fn main() {
    for (width, layers) in [(4usize, 8usize), (8, 12), (12, 24)] {
        let g = random_dag(width, layers, 7);
        let p = problem::extract(&g).unwrap();
        let n = g.node_count();
        bench(&format!("balance/asap/{n}"), iters(10), || {
            solve::solve_asap(&p)
        });
        bench(&format!("balance/heuristic/{n}"), iters(10), || {
            solve::solve_heuristic(&p, 64)
        });
        // The MCMF optimum is the slow one — keep its instances modest.
        bench(&format!("balance/optimal_mcmf/{n}"), iters(10), || {
            solve::solve_optimal(&p)
        });
    }
    // Larger instances for the polynomial-scaling picture, cheap solvers only.
    for (width, layers) in [(16usize, 50usize), (24, 80)] {
        let g = random_dag(width, layers, 7);
        let p = problem::extract(&g).unwrap();
        let n = g.node_count();
        bench(&format!("balance/asap_large/{n}"), iters(10), || {
            solve::solve_asap(&p)
        });
        bench(&format!("balance/heuristic_large/{n}"), iters(10), || {
            solve::solve_heuristic(&p, 64)
        });
    }
}
