//! Minimal aligned-table reporting for the experiment binaries.

use crate::measure::Measurement;

/// Print a header banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("================================================================");
}

/// Print a table of measurements with the standard columns.
pub fn table(rows: &[Measurement]) {
    println!(
        "{:<22} {:>7} {:>8} {:>9} {:>8} {:>11} {:>8}",
        "config", "cells", "buffers", "interval", "rate", "max_rel_err", "am%"
    );
    for r in rows {
        println!(
            "{:<22} {:>7} {:>8} {:>9.3} {:>8.4} {:>11.2e} {:>8.2}",
            r.label,
            r.cells,
            r.buffers,
            r.interval,
            r.rate,
            r.max_rel_err,
            r.am_fraction * 100.0
        );
    }
}

/// Print a key/value observation line.
pub fn observe(name: &str, value: impl std::fmt::Display) {
    println!("  {name}: {value}");
}

/// Print the paper-vs-measured verdict line.
pub fn verdict(claim: &str, holds: bool) {
    println!("CLAIM [{}] {claim}", if holds { "HOLDS" } else { "FAILS" });
}

/// Emit rows as JSON lines (for EXPERIMENTS.md regeneration scripts).
pub fn json_lines(rows: &[Measurement]) {
    for r in rows {
        println!("{}", r.to_json());
    }
}
