//! Workload generators: the paper's figures as parameterized Val sources
//! plus the synthetic application-shaped programs used for the scaling and
//! traffic claims.

use std::collections::HashMap;
use valpipe_val::interp::ArrayVal;

/// Fig. 2's scalar pipeline wrapped as a (degenerate, window-free) forall:
/// `y = a·b; (y+2)(y−3)` elementwise.
pub fn fig2_src(m: usize) -> String {
    format!(
        "param m = {m};
input A : array[real] [0, m];
input B : array[real] [0, m];
Y : array[real] :=
  forall i in [0, m]
    y : real := A[i] * B[i];
  construct (y + 2.) * (y - 3.)
  endall;
output Y;"
    )
}

/// Fig. 4's array-selection expression standing alone.
pub fn fig4_src(m: usize) -> String {
    format!(
        "param m = {m};
input C : array[real] [0, m+1];
S : array[real] :=
  forall i in [1, m]
  construct 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
  endall;
output S;"
    )
}

/// Fig. 5's conditional expression (data-dependent condition).
pub fn fig5_src(m: usize) -> String {
    format!(
        "param m = {m};
input A : array[real] [0, m];
input B : array[real] [0, m];
input C : array[real] [0, m];
Y : array[real] :=
  forall i in [0, m]
  construct
    if C[i] > 0. then -(A[i] + B[i]) else 5.*(A[i]*B[i] + 2.) endif
  endall;
output Y;"
    )
}

/// The paper's Example 1 (Fig. 6) as a standalone program.
pub fn fig6_src(m: usize) -> String {
    format!(
        "param m = {m};
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real :=
      if (i = 0)|(i = m+1) then C[i]
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct B[i]*(P*P)
  endall;
output A;"
    )
}

/// The paper's Example 2 (Figs. 7–8) as a standalone program.
pub fn example2_src(m: usize) -> String {
    format!(
        "param m = {m};
input A : array[real] [0, m+1];
input B : array[real] [0, m+1];
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in
      if i < m then iter T := T[i: P]; i := i + 1 enditer else T endif
    endlet
  endfor;
output X;"
    )
}

/// The paper's Fig. 3 program (Example 1 feeding Example 2).
pub fn fig3_src(m: usize) -> String {
    valpipe_val::parser::FIG3_PROGRAM.replace("param m = 32;", &format!("param m = {m};"))
}

/// A chain of `blocks` stencil blocks — the "several hundred blocks" shape
/// of §4. Each block smooths its predecessor over a shrinking range.
pub fn chain_src(m: usize, blocks: usize) -> String {
    assert!(blocks >= 1);
    assert!(m > 2 * blocks + 2, "range must stay non-empty");
    let mut s = format!("param m = {m};\ninput S0 : array[real] [0, m+1];\n");
    for k in 1..=blocks {
        s.push_str(&format!(
            "S{k} : array[real] := forall i in [{k}, m+1-{k}] construct 0.5 * (S{}[i-1] + S{}[i+1]) endall;\n",
            k - 1,
            k - 1
        ));
    }
    s.push_str(&format!("output S{blocks};\n"));
    s
}

/// The application-shaped physics step used for the §2 traffic claim.
pub fn physics_src(m: usize) -> String {
    format!(
        "param m = {m};
input U : array[real] [0, m+1];
input K : array[real] [0, m+1];
F : array[real] :=
  forall i in [1, m] construct K[i] * (U[i+1] - U[i-1]) * 0.5 endall;
G : array[real] :=
  forall i in [1, m]
  construct
    if F[i] > 1. then 1. else if F[i] < -1. then -1. else F[i] endif endif
  endall;
V : array[real] :=
  forall i in [0, m+1]
  construct
    if (i = 0)|(i = m+1) then U[i] else U[i] + 0.1 * G[i] endif
  endall;
D : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    if i < m then iter T := T[i: 0.5*T[i-1] + V[i]]; i := i + 1 enditer else T endif
  endfor;
output V, D;"
    )
}

/// Deterministic pseudo-random input arrays for the named ranges.
pub fn inputs_for(names_ranges: &[(&str, i64, i64)]) -> HashMap<String, ArrayVal> {
    let mut h = HashMap::new();
    for (k, &(name, lo, hi)) in names_ranges.iter().enumerate() {
        let seed = (k as f64 + 1.0) * 0.37;
        let vals: Vec<f64> = (lo..=hi)
            .map(|i| 0.5 + 0.5 * ((i as f64) * seed + seed).sin())
            .collect();
        h.insert(name.to_string(), ArrayVal::from_reals(lo, &vals));
    }
    h
}

/// Inputs matching a compiled program's declared input ranges.
pub fn inputs_for_compiled(c: &valpipe_core::Compiled) -> HashMap<String, ArrayVal> {
    let spec: Vec<(&str, i64, i64)> = c
        .flow
        .inputs
        .iter()
        .map(|(n, (lo, hi))| (n.as_str(), *lo, *hi))
        .collect();
    inputs_for(&spec)
}
