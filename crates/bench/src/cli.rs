//! Shared command-line flags for the `exp_*` reporter binaries.
//!
//! Every reporter accepts:
//!
//! * `--fault-plan <spec>` — inject faults into the simulated machine;
//!   the spec grammar is [`FaultPlan::parse`]'s (e.g.
//!   `seed=42,drop_ack=0.001,freeze=5@100..200`);
//! * `--step-budget <n>` — bound the run with a watchdog that turns an
//!   unproductive run into a structured stall report instead of letting
//!   it spin to the hard step limit;
//! * `--checkpoint-every <n>` / `--checkpoint-path <file>` — write a
//!   periodic crash-recovery checkpoint during the run (see
//!   `valpipe_machine::snapshot`);
//! * `--restore-from <file>` — resume a run from a checkpoint instead of
//!   starting fresh (honoured by `exp_soak`);
//! * `--trials <n>` — how many crash/recover trials `exp_soak` runs, or
//!   how many generated programs `exp_fuzz` differentiates;
//! * `--seed <n>` / `--shrink` / `--corpus <dir>` — `exp_fuzz` campaign
//!   base seed (hex ok), delta-debug findings to minimal repros, and
//!   where to write them;
//! * `--workers <n>` — run the simulation on the parallel kernel with
//!   `n` worker threads (default 1 = the sequential event kernel);
//! * `--epoch-cap <k>` — cap the parallel kernel's epoch length at `k`
//!   steps per barrier handoff (see DESIGN.md §16; `1` disables epoch
//!   batching entirely);
//! * `--shard-policy <topology|striped>` — how the parallel kernel
//!   assigns cells to worker shards;
//! * `--emit=ast,typed,ir,balanced,machine` — dump compiler stage
//!   artifacts for every workload the reporter compiles (stdout,
//!   deterministic);
//! * `--pass-stats` — print the per-pass wall-time/growth table for
//!   every compile (stderr).

use crate::measure::{measure_compiled_with, Measurement};
use valpipe_core::{render_pass_stats, CompileOptions, PassManager, Stage};
use valpipe_machine::{FaultPlan, Kernel, ShardPolicy, SimConfig, WatchdogConfig};

/// Robustness flags parsed from the process arguments.
#[derive(Debug, Clone, Default)]
pub struct FaultArgs {
    /// Parsed `--fault-plan`, if given.
    pub fault_plan: Option<FaultPlan>,
    /// Parsed `--step-budget`, if given.
    pub step_budget: Option<u64>,
    /// Parsed `--checkpoint-every`, if given.
    pub checkpoint_every: Option<u64>,
    /// Parsed `--checkpoint-path`, if given.
    pub checkpoint_path: Option<String>,
    /// Parsed `--restore-from`, if given.
    pub restore_from: Option<String>,
    /// Parsed `--trials`, if given (crash/recover trial count for
    /// `exp_soak`; campaign size for `exp_fuzz`).
    pub trials: Option<u64>,
    /// Parsed `--seed`, if given (base seed for `exp_fuzz` campaigns;
    /// accepts `0x`-prefixed hex).
    pub seed: Option<u64>,
    /// `--shrink`: delta-debug `exp_fuzz` findings to minimal repros.
    pub shrink: bool,
    /// Parsed `--corpus <dir>`, if given: where `exp_fuzz --shrink`
    /// writes reduced repros.
    pub corpus: Option<String>,
    /// Parsed `--workers`, if given (worker threads for the parallel
    /// kernel; 1 keeps the sequential event kernel).
    pub workers: Option<usize>,
    /// Parsed `--epoch-cap`, if given (max steps per epoch barrier for
    /// the parallel kernel; `1` disables epoch batching).
    pub epoch_cap: Option<u64>,
    /// Parsed `--shard-policy`, if given (cell→shard assignment for the
    /// parallel kernel).
    pub shard_policy: Option<ShardPolicy>,
    /// Parsed `--blocks`, if given (workload size for `exp_incremental`:
    /// how many chained stencil blocks the edit experiment compiles).
    pub blocks: Option<usize>,
    /// Parsed `--emit=…`: compiler stages to dump for every workload.
    pub emit: Vec<Stage>,
    /// `--pass-stats`: print the per-pass compile table for every
    /// workload.
    pub pass_stats: bool,
}

impl FaultArgs {
    /// Parse the process arguments. Exits with a usage message on an
    /// unknown flag or a malformed value, so reporters fail loudly
    /// rather than silently measuring the wrong machine.
    pub fn parse_env() -> FaultArgs {
        let mut out = FaultArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--fault-plan" => {
                    let spec = args
                        .next()
                        .unwrap_or_else(|| usage("--fault-plan needs a spec"));
                    match FaultPlan::parse(&spec) {
                        Ok(p) => out.fault_plan = Some(p),
                        Err(e) => usage(&e),
                    }
                }
                "--step-budget" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--step-budget needs a number"));
                    match v.parse::<u64>() {
                        Ok(n) if n > 0 => out.step_budget = Some(n),
                        _ => usage(&format!("bad step budget '{v}'")),
                    }
                }
                "--checkpoint-every" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--checkpoint-every needs a number"));
                    match v.parse::<u64>() {
                        Ok(n) if n > 0 => out.checkpoint_every = Some(n),
                        _ => usage(&format!("bad checkpoint interval '{v}'")),
                    }
                }
                "--checkpoint-path" => {
                    out.checkpoint_path = Some(
                        args.next()
                            .unwrap_or_else(|| usage("--checkpoint-path needs a file")),
                    );
                }
                "--restore-from" => {
                    out.restore_from = Some(
                        args.next()
                            .unwrap_or_else(|| usage("--restore-from needs a file")),
                    );
                }
                "--trials" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--trials needs a number"));
                    match v.parse::<u64>() {
                        Ok(n) if n > 0 => out.trials = Some(n),
                        _ => usage(&format!("bad trial count '{v}'")),
                    }
                }
                "--seed" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--seed needs a number"));
                    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                        Some(hex) => u64::from_str_radix(hex, 16),
                        None => v.parse(),
                    };
                    match parsed {
                        Ok(n) => out.seed = Some(n),
                        _ => usage(&format!("bad seed '{v}'")),
                    }
                }
                "--shrink" => out.shrink = true,
                "--corpus" => {
                    out.corpus = Some(
                        args.next()
                            .unwrap_or_else(|| usage("--corpus needs a directory")),
                    );
                }
                "--workers" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--workers needs a number"));
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => out.workers = Some(n),
                        _ => usage(&format!("bad worker count '{v}'")),
                    }
                }
                "--epoch-cap" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--epoch-cap needs a number"));
                    match v.parse::<u64>() {
                        Ok(k) if k > 0 => out.epoch_cap = Some(k),
                        _ => usage(&format!("bad epoch cap '{v}'")),
                    }
                }
                "--shard-policy" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--shard-policy needs topology|striped"));
                    match ShardPolicy::parse(&v) {
                        Some(p) => out.shard_policy = Some(p),
                        None => usage(&format!("bad shard policy '{v}'")),
                    }
                }
                "--blocks" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--blocks needs a number"));
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => out.blocks = Some(n),
                        _ => usage(&format!("bad block count '{v}'")),
                    }
                }
                "--pass-stats" => out.pass_stats = true,
                s if s.starts_with("--emit=") => match Stage::parse_list(&s["--emit=".len()..]) {
                    Ok(v) => out.emit = v,
                    Err(e) => usage(&e),
                },
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        out
    }

    /// Whether any robustness flag was given.
    pub fn active(&self) -> bool {
        self.fault_plan.is_some() || self.step_budget.is_some()
    }

    /// Apply the flags to a simulator config: install the fault plan,
    /// a watchdog if a budget was given, and periodic checkpointing if
    /// requested.
    pub fn apply(&self, cfg: SimConfig) -> SimConfig {
        let mut cfg = match &self.fault_plan {
            Some(p) => cfg.fault_plan(p.clone()),
            None => cfg,
        };
        if let Some(budget) = self.step_budget {
            cfg = cfg.watchdog(WatchdogConfig {
                step_budget: budget,
                ..Default::default()
            });
        }
        if let Some(every) = self.checkpoint_every {
            cfg = cfg.checkpoint_every(every);
        }
        if let Some(path) = &self.checkpoint_path {
            cfg = cfg.checkpoint_path(path.clone());
        }
        if let Some(w) = self.workers {
            if w >= 2 {
                cfg = cfg.kernel(Kernel::ParallelEvent(w));
            }
        }
        if let Some(k) = self.epoch_cap {
            cfg = cfg.epoch_cap(k);
        }
        if let Some(p) = self.shard_policy {
            cfg = cfg.shard_policy(p);
        }
        cfg
    }

    /// The default simulator config with the flags applied.
    pub fn sim_config(&self) -> SimConfig {
        self.apply(SimConfig::new())
    }

    /// Oracle-checked measurement under the active flags. A stalled run
    /// prints the machine's stall diagnosis and returns `None`, so
    /// reporters degrade to a partial table instead of panicking.
    pub fn measure(
        &self,
        label: &str,
        src: &str,
        opts: &CompileOptions,
        output: &str,
        waves: usize,
    ) -> Option<Measurement> {
        let out = match PassManager::new(opts)
            .emit_all(&self.emit)
            .run_source(src, label)
        {
            Ok(o) => o,
            Err(e) => {
                println!("{label}: compile error: {e}");
                return None;
            }
        };
        if self.pass_stats {
            eprintln!("{label}:");
            eprint!("{}", render_pass_stats(&out.pass_stats));
        }
        for (stage, dump) in &out.dumps {
            println!("==== {label}: {stage} ====");
            print!("{dump}");
        }
        match measure_compiled_with(label, &out.compiled, output, waves, self.sim_config()) {
            Ok(m) => Some(m),
            Err(e) => {
                println!("{label}: {e}");
                None
            }
        }
    }

    /// When a fault plan is active the paper's clean-machine claims do
    /// not apply; print a note and return true so the reporter skips its
    /// claim lines.
    pub fn claims_skipped(&self) -> bool {
        if self.active() {
            println!("(fault plan active: claims skipped)");
        }
        self.active()
    }
}

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: exp_* [--fault-plan <spec>] [--step-budget <n>]");
    eprintln!("             [--checkpoint-every <n>] [--checkpoint-path <file>]");
    eprintln!("             [--restore-from <file>] [--trials <n>] [--workers <n>]");
    eprintln!("             [--epoch-cap <k>] [--shard-policy <topology|striped>]");
    eprintln!("             [--seed <n>] [--shrink] [--corpus <dir>] [--blocks <n>]");
    eprintln!("             [--emit=ast,typed,ir,balanced,machine] [--pass-stats]");
    eprintln!("  spec: comma-separated key=value, e.g. seed=42,drop_ack=0.001,\\");
    eprintln!("        delay_result=0.05:4,freeze=7@100..200,link=1.3@50..60");
    std::process::exit(2)
}
