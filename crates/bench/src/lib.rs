//! # valpipe-bench — experiment harness
//!
//! Workload generators, reporting helpers, and the measurement routines
//! shared by the `exp_*` reporter binaries (one per paper figure/claim —
//! see EXPERIMENTS.md) and the Criterion benches.

#![warn(missing_docs)]

pub mod measure;
pub mod report;
pub mod workloads;

pub use measure::{measure_program, Measurement};
