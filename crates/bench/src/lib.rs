//! # valpipe-bench — experiment harness
//!
//! Workload generators, reporting helpers, and the measurement routines
//! shared by the `exp_*` reporter binaries (one per paper figure/claim —
//! see EXPERIMENTS.md) and the wall-clock benches.

#![warn(missing_docs)]

pub mod cli;
pub mod measure;
pub mod report;
pub mod timing;
pub mod workloads;

pub use cli::FaultArgs;
pub use measure::{measure_program, Measurement};
