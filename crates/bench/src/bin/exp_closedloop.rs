//! CLOSED — the whole Fig. 1 machine, closed loop: result packets AND
//! acknowledge packets routed through router-level omega networks, with
//! network contention feeding back into instruction timing through the
//! enabling rule.
//!
//! Claims:
//! * values are identical to the idealized machine under every placement
//!   and buffering (data-driven execution is timing-independent);
//! * with one-token operand slots, remote acknowledge round trips through
//!   a real network throttle the pipeline;
//! * deeper operand slots (the machine's buffering) win the rate back —
//!   §2's packet-pipelined-network story, now measured end to end.

use valpipe_bench::workloads::{fig6_src, inputs_for_compiled};
use valpipe_bench::FaultArgs;
use valpipe_core::verify::stream_inputs;
use valpipe_core::{compile_source, CompileOptions};
use valpipe_machine::{run_closed_loop, ClosedLoopOptions, Placement, Simulator};

fn main() {
    let fault_args = FaultArgs::parse_env();
    if let Some(plan) = &fault_args.fault_plan {
        if plan.has_cell_faults() {
            println!("(closed-loop machine models only `link=` faults; other knobs ignored)");
        }
    }
    println!("================================================================");
    println!("CLOSED: closed-loop machine — cells + both network planes");
    println!("reproduces: §2 / Fig. 1 end to end");
    println!("================================================================");

    let compiled = compile_source(&fig6_src(32), &CompileOptions::paper()).expect("compiles");
    let exe = compiled.executable();
    let arrays = inputs_for_compiled(&compiled);
    let inputs = stream_inputs(&compiled, &arrays, 12);
    let ideal_exe = compiled.executable();
    let ideal = Simulator::builder(&ideal_exe)
        .inputs(inputs.clone())
        .run()
        .expect("idealized run");
    let ideal_vals = ideal.values("A");

    println!(
        "{:>5} {:>9} {:>10} {:>12} {:>12} {:>10}",
        "PEs", "slots/arc", "interval", "net latency", "remote pkts", "values"
    );
    let mut slow_cap1 = 0.0f64;
    let mut fast_cap4 = f64::MAX;
    for pes in [4usize, 16] {
        for cap in [1u32, 4] {
            let placement = Placement::round_robin(
                &exe,
                valpipe_machine::MachineConfig {
                    pes,
                    ..Default::default()
                },
            );
            let opts = ClosedLoopOptions {
                pes,
                arc_capacity: cap,
                net_queue: 4,
                pe_issue_width: 8,
                max_cycles: fault_args.step_budget.unwrap_or(3_000_000),
                link_faults: fault_args
                    .fault_plan
                    .as_ref()
                    .map(|p| p.link_faults.clone())
                    .unwrap_or_default(),
            };
            let r = run_closed_loop(&exe, &inputs, &placement.pe_of, &opts).expect("runs");
            if !r.sources_exhausted {
                println!("pes={pes} cap={cap}: stalled after {} cycles", r.steps);
                continue;
            }
            let iv = r.timing("A").interval().expect("steady");
            let same = r.values("A") == ideal_vals;
            println!(
                "{pes:>5} {cap:>9} {iv:>10.3} {:>12.2} {:>12} {:>10}",
                r.mean_result_latency,
                r.remote_results + r.remote_acks,
                if same { "identical" } else { "DIFFER" }
            );
            assert!(same, "values must not depend on timing");
            if pes == 16 && cap == 1 {
                slow_cap1 = iv;
            }
            if pes == 16 && cap == 4 {
                fast_cap4 = iv;
            }
        }
    }
    println!();
    if fault_args.claims_skipped() {
        return;
    }
    println!("CLAIM [HOLDS] values identical to the idealized machine under every configuration");
    println!(
        "CLAIM [{}] capacity-1 slots + real network round trips throttle the pipeline (interval {slow_cap1:.2})",
        if slow_cap1 > 3.0 { "HOLDS" } else { "FAILS" }
    );
    println!(
        "CLAIM [{}] operand-slot buffering recovers most of the rate (interval {fast_cap4:.2})",
        if fast_cap4 < slow_cap1 - 1.0 {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
}
