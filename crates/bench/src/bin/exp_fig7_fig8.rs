//! FIG7 / FIG8 — §7 / Theorem 3: Todd's scheme vs the companion-pipeline
//! scheme on the paper's Example 2 recurrence.
//!
//! Claims reproduced:
//! * Todd's scheme is limited to `1 / cycle-length` (the paper measures
//!   1/3 on a 3-stage loop; this implementation's loop has 4 cells because
//!   the output switch is a separate gated identity, so the bound is 1/4);
//! * the companion scheme restores the maximum rate 1/2 (Theorem 3);
//! * the even-cycle requirement: the companion loop has 4 (even) cells
//!   holding 2 values;
//! * both schemes compute the same array (within float reassociation).

use valpipe_bench::report;
use valpipe_bench::workloads::example2_src;
use valpipe_bench::{FaultArgs, Measurement};
use valpipe_core::{CompileOptions, ForIterScheme};

fn main() {
    report::banner(
        "FIG7 vs FIG8: for-iter recurrence schemes",
        "Figs. 7–8, Theorem 3 (§7)",
    );
    let fault_args = FaultArgs::parse_env();
    let mut rows: Vec<Measurement> = Vec::new();
    for m in [8usize, 32, 128] {
        for (name, scheme) in [
            ("todd", ForIterScheme::Todd),
            ("companion", ForIterScheme::Companion),
        ] {
            let mut opts = CompileOptions::paper();
            opts.scheme = scheme;
            rows.extend(fault_args.measure(
                &format!("{name} m={m}"),
                &example2_src(m),
                &opts,
                "X",
                30,
            ));
        }
    }
    report::table(&rows);
    if fault_args.claims_skipped() {
        return;
    }

    // Per-size speedups.
    println!();
    for k in (0..rows.len()).step_by(2) {
        let speed = rows[k].interval / rows[k + 1].interval;
        report::observe(
            &format!("companion speedup over Todd ({})", rows[k].label),
            format!("{speed:.2}×"),
        );
    }

    let todd_bounded = rows
        .iter()
        .step_by(2)
        .all(|r| (r.interval - 4.0).abs() < 0.35);
    let comp_max = rows
        .iter()
        .skip(1)
        .step_by(2)
        .zip([8.0f64, 32.0, 128.0])
        .all(|(r, m)| (r.interval - 2.0 * (m + 2.0) / m).abs() < 0.25);
    report::verdict(
        "Todd's scheme limited to 1/cycle-length (1/4 here; paper: 1/3 with gated destinations)",
        todd_bounded,
    );
    report::verdict(
        "companion scheme reaches the maximum rate (Theorem 3)",
        comp_max,
    );
    report::verdict(
        "schemes agree with the interpreter (reassociation-tolerant)",
        rows.iter().all(|r| r.max_rel_err < 1e-8),
    );
}
