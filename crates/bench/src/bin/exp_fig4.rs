//! FIG4 — §5 / Fig. 4: pipelined mapping of array selection operations.
//!
//! Claims reproduced:
//! * the window-gated stencil `0.25·(C[i-1] + 2·C[i] + C[i+1])` runs fully
//!   pipelined once skew FIFOs balance the taps;
//! * the compiler inserts the FIFO(2)-shaped skew buffers of Fig. 4;
//! * ablation: disabling balancing costs throughput but not correctness.

use valpipe_balance::BalanceMode;
use valpipe_bench::report;
use valpipe_bench::workloads::fig4_src;
use valpipe_bench::{FaultArgs, Measurement};
use valpipe_core::{compile_source, CompileOptions};

fn main() {
    report::banner(
        "FIG4: array selection with window gates and skew FIFOs",
        "Fig. 4 + Theorem 1 (§5)",
    );
    let fault_args = FaultArgs::parse_env();
    let mut rows: Vec<Measurement> = Vec::new();
    for m in [8usize, 64, 512] {
        rows.extend(fault_args.measure(
            &format!("balanced m={m}"),
            &fig4_src(m),
            &CompileOptions::paper(),
            "S",
            24,
        ));
    }
    let mut ablate = CompileOptions::paper();
    ablate.balance = BalanceMode::None;
    {
        let m = 64usize;
        rows.extend(fault_args.measure(
            &format!("UNBALANCED m={m}"),
            &fig4_src(m),
            &ablate,
            "S",
            24,
        ));
    }
    report::table(&rows);

    // Show the generated code carries the paper's skew FIFOs.
    let compiled = compile_source(&fig4_src(8), &CompileOptions::paper()).unwrap();
    println!(
        "\ncompiled cell mix (m=8): {}",
        valpipe_ir::pretty::summary(&compiled.graph)
    );

    if fault_args.claims_skipped() {
        return;
    }
    let expected = |m: f64| 2.0 * (m + 2.0) / m; // m outputs per m+2 inputs
    let ok = rows[..3]
        .iter()
        .zip([8.0f64, 64.0, 512.0])
        .all(|(r, m)| (r.interval - expected(m)).abs() < 0.15);
    report::verdict("window-gated stencil is fully pipelined", ok);
    report::verdict(
        "removing skew buffers degrades throughput (jam ablation)",
        rows[3].interval > rows[1].interval + 0.3,
    );
    report::verdict(
        "unbalanced pipeline still computes correct values",
        rows[3].max_rel_err < 1e-8,
    );
}
