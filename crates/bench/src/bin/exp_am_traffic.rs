//! AMTRAF — §2: "In the case of application codes we have analyzed, one
//! eighth or less of the operation packets would be sent to the array
//! memories."
//!
//! Arrays are streamed between blocks as result packets; only the
//! long-lived state crossing time-step boundaries touches the array
//! memories. Measured on the application-shaped physics step at several
//! sizes.

use valpipe_bench::report;
use valpipe_bench::workloads::{fig3_src, physics_src};
use valpipe_bench::{FaultArgs, Measurement};
use valpipe_core::CompileOptions;

fn main() {
    report::banner(
        "AMTRAF: operation-packet traffic to the array memories",
        "§2 (\"one eighth or less of the operation packets\")",
    );
    let fault_args = FaultArgs::parse_env();
    let mut opts = CompileOptions::paper();
    opts.am_boundary = true;
    let mut rows: Vec<Measurement> = Vec::new();
    for m in [16usize, 64, 256] {
        rows.extend(fault_args.measure(
            &format!("physics V m={m}"),
            &physics_src(m),
            &opts,
            "V",
            20,
        ));
    }
    {
        let m = 64usize;
        rows.extend(fault_args.measure(&format!("fig3 A m={m}"), &fig3_src(m), &opts, "A", 20));
    }
    report::table(&rows);
    println!();
    for r in &rows {
        report::observe(
            &format!("{}: packets to AM", r.label),
            format!("{:.2}% of {}", r.am_fraction * 100.0, r.total_fires),
        );
    }
    if fault_args.claims_skipped() {
        return;
    }
    report::verdict(
        "≤ 1/8 of operation packets go to the array memories",
        rows.iter().all(|r| r.am_fraction <= 0.125),
    );
}
