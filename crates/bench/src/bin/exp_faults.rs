//! FLT — robustness: graceful degradation and stall diagnosis under
//! injected faults.
//!
//! The static architecture's acknowledge protocol is what guarantees the
//! paper's rates — and it is also the failure surface: a delayed packet
//! only slows the pipe, but a *lost* packet (result or acknowledge)
//! permanently wedges its arc, and the wedge spreads backwards through
//! the acknowledge chain until the whole pipeline is quiet. This
//! experiment measures both regimes on the Fig. 6 workload:
//!
//! 1. **delay faults** — rate degrades smoothly with the delay
//!    probability, and values are never corrupted (data-driven execution
//!    is timing-independent);
//! 2. **freeze faults** — a cell frozen for a window stalls the pipe and
//!    then recovers, again with identical values;
//! 3. **loss faults** — a single lost acknowledge deadlocks the run, and
//!    the watchdog names the blocked cells, the arcs holding
//!    unacknowledged tokens, and the wait cycle.
//!
//! `--fault-plan <spec>` replaces the built-in sweep with one run of the
//! given plan; `--step-budget <n>` bounds it.

use valpipe_bench::workloads::{fig6_src, inputs_for_compiled};
use valpipe_bench::FaultArgs;
use valpipe_core::verify::stream_inputs;
use valpipe_core::{compile_source_named, CompileOptions};
use valpipe_ir::Graph;
use valpipe_machine::{
    render_stall, FaultPlan, ProgramInputs, RunResult, SimConfig, Simulator, WatchdogConfig,
};

fn run_plan(exe: &Graph, inputs: &ProgramInputs, plan: Option<FaultPlan>) -> RunResult {
    let cfg = SimConfig::new()
        .max_steps(3_000_000)
        .fault_plan_opt(plan)
        .watchdog(WatchdogConfig {
            step_budget: 2_000_000,
            ..Default::default()
        })
        .check_invariants(true);
    Simulator::builder(exe)
        .inputs(inputs.clone())
        .config(cfg)
        .run()
        .unwrap()
}

fn main() {
    let fault_args = FaultArgs::parse_env();
    println!("================================================================");
    println!("FLT: fault injection — degradation curves and stall diagnosis");
    println!("================================================================");
    let src = fig6_src(64);
    let compiled =
        compile_source_named(&src, "fig6.val", &CompileOptions::paper()).expect("compiles");
    let exe = compiled.executable();
    let arrays = inputs_for_compiled(&compiled);
    let inputs = stream_inputs(&compiled, &arrays, 20);

    let clean = run_plan(&exe, &inputs, None);
    assert!(clean.sources_exhausted, "clean run must drain");
    let clean_vals = clean.values("A");
    let clean_iv = clean.timing("A").interval().expect("steady");

    if fault_args.active() {
        // User-specified plan: one diagnostic run.
        let cfg = fault_args
            .apply(SimConfig::new().max_steps(3_000_000))
            .check_invariants(true);
        let r = Simulator::builder(&exe)
            .inputs(inputs.clone())
            .config(cfg)
            .run()
            .unwrap();
        println!(
            "steps {}   packets on A: {}   sources drained: {}",
            r.steps,
            r.values("A").len(),
            r.sources_exhausted
        );
        match &r.stall_report {
            Some(report) => print!("{}", render_stall(report, &exe, &compiled.prov)),
            None => println!(
                "run completed; interval {:.3} (clean {:.3}), values {}",
                r.timing("A").interval().unwrap_or(f64::NAN),
                clean_iv,
                if r.values("A") == clean_vals {
                    "identical"
                } else {
                    "DIFFER"
                },
            ),
        }
        return;
    }

    // 1. Delay faults: the degradation curve.
    println!();
    println!("-- result-packet delay faults (max extra = 4 instruction times) --");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "probability", "interval", "rate", "values"
    );
    let mut last_iv = 0.0f64;
    let mut monotone = true;
    let mut all_identical = true;
    for prob in [0.0, 0.01, 0.05, 0.1, 0.25, 0.5] {
        let plan = FaultPlan {
            seed: 7,
            delay_result: prob,
            delay_result_max: 4,
            ..Default::default()
        };
        let r = run_plan(&exe, &inputs, Some(plan));
        assert!(
            r.sources_exhausted,
            "delays must never wedge the pipe (p={prob})"
        );
        let iv = r.timing("A").interval().expect("steady");
        let same = r.values("A") == clean_vals;
        println!(
            "{prob:<12} {iv:>10.3} {:>10.4} {:>10}",
            1.0 / iv,
            if same { "identical" } else { "DIFFER" }
        );
        // Small tolerance: position-keyed draws are not nested across
        // probabilities, so tiny non-monotonicities are sampling noise.
        if iv + 0.05 < last_iv {
            monotone = false;
        }
        last_iv = iv.max(last_iv);
        all_identical &= same;
    }
    println!(
        "CLAIM [{}] delayed packets only slow the pipe: values bit-identical at every probability",
        if all_identical { "HOLDS" } else { "FAILS" }
    );
    println!(
        "CLAIM [{}] rate degrades gracefully (interval grows with delay probability)",
        if monotone && last_iv > clean_iv {
            "HOLDS"
        } else {
            "FAILS"
        }
    );

    // 2. Freeze fault: stall and recover.
    println!();
    println!("-- cell freeze (cell 0 frozen for 300 instruction times) --");
    let plan = FaultPlan {
        freezes: vec![valpipe_machine::CellFreeze {
            node: 0,
            from: 100,
            until: 400,
        }],
        ..Default::default()
    };
    let r = run_plan(&exe, &inputs, Some(plan));
    let frozen_ok = r.sources_exhausted && r.values("A") == clean_vals && r.steps > clean.steps;
    println!(
        "steps {} (clean {}), values {}",
        r.steps,
        clean.steps,
        if r.values("A") == clean_vals {
            "identical"
        } else {
            "DIFFER"
        }
    );
    println!(
        "CLAIM [{}] a frozen cell stalls the pipe, which recovers with identical values",
        if frozen_ok { "HOLDS" } else { "FAILS" }
    );

    // 3. Loss faults: the wedge, diagnosed.
    println!();
    println!("-- lost acknowledges (p = 0.002) --");
    let plan = FaultPlan {
        seed: 11,
        drop_ack: 0.002,
        ..Default::default()
    };
    let r = run_plan(&exe, &inputs, Some(plan));
    match &r.stall_report {
        Some(report) => {
            println!(
                "stalled after {} steps; {} packets of {} delivered on A",
                r.steps,
                r.values("A").len(),
                clean_vals.len()
            );
            print!("{}", render_stall(report, &exe, &compiled.prov));
            let diagnosed = !report.blocked_cells.is_empty() && !report.held_arcs.is_empty();
            println!(
                "CLAIM [{}] one lost acknowledge wedges the pipe; the watchdog names blocked cells and held arcs",
                if diagnosed { "HOLDS" } else { "FAILS" }
            );
        }
        None => {
            println!("CLAIM [FAILS] run with lost acknowledges did not stall");
        }
    }

    // 4. Empty plan is bit-identical to no plan.
    let empty = run_plan(&exe, &inputs, Some(FaultPlan::default()));
    let identical = empty.steps == clean.steps
        && empty.values("A") == clean_vals
        && empty.total_fires == clean.total_fires;
    println!();
    println!(
        "CLAIM [{}] the empty fault plan is bit-identical to the fault-free machine",
        if identical { "HOLDS" } else { "FAILS" }
    );
}
