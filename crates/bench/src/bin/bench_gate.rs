//! Perf-regression gate over the machine bench trajectory.
//!
//! Compares the newest document of a candidate `BENCH_machine.json`
//! trajectory against the newest *comparable* entries of a committed
//! baseline trajectory and fails (exit 1) when any workload's
//! `steps_per_sec` regressed by more than the allowed fraction.
//!
//! Two rows are comparable only when their whole identity tuple matches:
//! bench name, smoke flag, `host_cores`, graph, cell count, kernel,
//! workers, step count, and (when present) the epoch/shard sweep
//! dimensions `epoch_cap`/`shard_policy`. Changing the workload or the
//! host therefore never produces a false regression — the row simply has
//! no baseline and is reported as uncompared. Rows faster than the noise
//! floor (`wall_s < 0.01`) are skipped: sub-10ms medians on a shared CI
//! box jitter far beyond any useful threshold.
//!
//! ```text
//! bench_gate [--baseline <file>] [--candidate <file>] [--max-regress <frac>]
//! ```
//!
//! Defaults: baseline `BENCH_machine.json`, candidate = baseline (the
//! newest doc of the committed trajectory is then gated against its own
//! history), threshold 0.15.

use valpipe_util::Json;

/// Noise floor: medians under this many seconds are too jittery to gate.
const NOISE_FLOOR_WALL_S: f64 = 0.01;

struct Row {
    key: String,
    steps_per_sec: f64,
    wall_s: f64,
}

/// The identity tuple of one result row, as a display-friendly string.
fn row_key(doc: &Json, row: &Json) -> Option<String> {
    let s = |j: &Json, k: &str| j.get(k).and_then(|v| v.as_str()).map(str::to_string);
    let i = |j: &Json, k: &str| j.get(k).and_then(|v| v.as_i64());
    let b = |j: &Json, k: &str| j.get(k).and_then(|v| v.as_bool());
    let mut key = format!(
        "{}/{}/{}cores {} {}cells {} w{} {}steps",
        s(doc, "bench")?,
        if b(doc, "smoke")? { "smoke" } else { "full" },
        i(doc, "host_cores")?,
        s(row, "graph")?,
        i(row, "cells")?,
        s(row, "kernel")?,
        i(row, "workers")?,
        i(row, "steps")?,
    );
    if let Some(cap) = i(row, "epoch_cap") {
        key.push_str(&format!(" cap{cap}"));
    }
    if let Some(policy) = s(row, "shard_policy") {
        key.push_str(&format!(" {policy}"));
    }
    Some(key)
}

fn rows_of(doc: &Json) -> Vec<Row> {
    let Some(results) = doc.get("results").and_then(|r| r.as_arr()) else {
        return Vec::new();
    };
    results
        .iter()
        .filter_map(|row| {
            Some(Row {
                key: row_key(doc, row)?,
                steps_per_sec: row.get("steps_per_sec")?.as_f64()?,
                wall_s: row.get("wall_s")?.as_f64()?,
            })
        })
        .collect()
}

fn load_trajectory(path: &str) -> Vec<Json> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read '{path}': {e}")));
    match Json::parse(&text) {
        Ok(Json::Arr(docs)) => docs,
        Ok(doc @ Json::Obj(_)) => vec![doc],
        _ => fail(&format!("'{path}' is not a bench trajectory")),
    }
}

fn fail(message: &str) -> ! {
    eprintln!("bench_gate: {message}");
    std::process::exit(2)
}

fn main() {
    let mut baseline_path = "BENCH_machine.json".to_string();
    let mut candidate_path: Option<String> = None;
    let mut max_regress = 0.15f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline_path = args
                    .next()
                    .unwrap_or_else(|| fail("--baseline needs a file"));
            }
            "--candidate" => {
                candidate_path = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--candidate needs a file")),
                );
            }
            "--max-regress" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| fail("--max-regress needs a fraction"));
                max_regress = match v.parse::<f64>() {
                    Ok(f) if f > 0.0 && f < 1.0 => f,
                    _ => fail(&format!("bad regression fraction '{v}'")),
                };
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    let candidate_path = candidate_path.unwrap_or_else(|| baseline_path.clone());
    let self_compare = candidate_path == baseline_path;

    let mut baseline_docs = load_trajectory(&baseline_path);
    let candidate_docs = load_trajectory(&candidate_path);
    let Some(candidate) = candidate_docs.last() else {
        fail(&format!("'{candidate_path}' holds no bench documents"));
    };
    if self_compare {
        // The newest doc is the candidate; it must not be its own baseline.
        baseline_docs.pop();
    }

    // Newest comparable row per identity tuple, oldest-to-newest so later
    // docs override earlier ones. Within one doc, keep the best rate (a
    // tuple measured twice — e.g. the default config appearing in both
    // the worker sweep and the epoch sweep — is represented by its best).
    let mut baseline: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for doc in &baseline_docs {
        let mut doc_best: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        for row in rows_of(doc) {
            let best = doc_best.entry(row.key).or_insert(f64::MIN);
            *best = best.max(row.steps_per_sec);
        }
        baseline.extend(doc_best);
    }

    let mut compared = 0u32;
    let mut skipped = 0u32;
    let mut uncompared = 0u32;
    let mut regressions = Vec::new();
    for row in rows_of(candidate) {
        let Some(&base) = baseline.get(&row.key) else {
            uncompared += 1;
            continue;
        };
        if row.wall_s < NOISE_FLOOR_WALL_S {
            println!(
                "bench_gate: SKIP  {} ({}ms median is below the {}ms noise floor)",
                row.key,
                (row.wall_s * 1e3).round(),
                NOISE_FLOOR_WALL_S * 1e3,
            );
            skipped += 1;
            continue;
        }
        compared += 1;
        let ratio = row.steps_per_sec / base;
        let verdict = if ratio < 1.0 - max_regress {
            regressions.push(format!(
                "{}: {:.0} -> {:.0} steps/s ({:+.1}%)",
                row.key,
                base,
                row.steps_per_sec,
                (ratio - 1.0) * 100.0
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "bench_gate: {verdict:<4}  {}  {:.0} -> {:.0} steps/s ({:+.1}%)",
            row.key,
            base,
            row.steps_per_sec,
            (ratio - 1.0) * 100.0,
        );
    }

    println!(
        "bench_gate: {compared} compared, {skipped} below noise floor, {uncompared} without a baseline (threshold {:.0}%)",
        max_regress * 100.0
    );
    if !regressions.is_empty() {
        eprintln!("bench_gate: steps_per_sec regressions beyond the threshold:");
        for r in &regressions {
            eprintln!("bench_gate:   {r}");
        }
        std::process::exit(1);
    }
}
