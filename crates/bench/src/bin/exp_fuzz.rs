//! FUZZ — differential fuzzing: random well-typed pipe programs through
//! the interpreter oracle and the full machine matrix (3 kernels ×
//! {Exact, FastForward} × kill-and-restore-from-snapshot), plus corrupted
//! mutants through the never-panic check, plus byte-exact replay of the
//! committed regression corpus in `tests/corpus/`.
//!
//! Claims checked:
//!
//! 1. every valid generated program agrees across the oracle and every
//!    machine leg — zero divergences, zero panics;
//! 2. corrupted sources always answer with typed errors, never panics or
//!    bit-identity breaks;
//! 3. no generated program is rejected at all (the historical gating
//!    phantom-deadlock class is fixed; see `tests/corpus/fixed-*.val`);
//! 4. every committed corpus repro replays byte-identically.
//!
//! Flags: `--trials <n>` (default 500), `--seed <n>` (default 0xD1FF,
//! hex ok), `--shrink` (delta-debug findings), `--corpus <dir>` (where
//! shrunk repros go; default `tests/corpus` for replay, findings are
//! only written when `--shrink` and `--corpus` are both given).

use std::path::{Path, PathBuf};

use valpipe_bench::report::{banner, observe, verdict};
use valpipe_bench::FaultArgs;
use valpipe_fuzz::{replay_dir, run_campaign, with_quiet_panics, CampaignConfig};

fn committed_corpus() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn main() {
    let args = FaultArgs::parse_env();
    banner(
        "FUZZ: differential fuzzing — oracle vs. machine matrix vs. corpus",
        "robustness suite (no paper figure); Dennis–Gao pipelinable class",
    );

    let cfg = CampaignConfig {
        trials: args.trials.unwrap_or(500) as usize,
        seed: args.seed.unwrap_or(0xD1FF),
        mutants_per_trial: 2,
        shrink: args.shrink,
        corpus_dir: args.corpus.as_ref().map(PathBuf::from),
    };
    println!();
    println!(
        "campaign: {} trials from seed {:#x}, {} mutants/trial{}",
        cfg.trials,
        cfg.seed,
        cfg.mutants_per_trial,
        if cfg.shrink {
            ", shrinking findings"
        } else {
            ""
        }
    );

    let report = with_quiet_panics(|| run_campaign(&cfg, |line| println!("{line}")));

    println!();
    observe("generated programs", report.trials);
    observe("full-matrix passes", report.passes);
    observe("output packets compared", report.packets);
    observe(
        "typed rejections (expected zero)",
        report.generated_rejections,
    );
    observe("mutants run", report.mutant_runs);
    observe(
        "mutants rejected with typed errors",
        report.mutant_rejections,
    );
    observe("mutants passing (benign damage)", report.mutant_passes);
    observe("mutant budget blowups (not defects)", report.mutant_stalls);
    observe("findings", report.findings.len());
    for f in &report.findings {
        println!("  finding ({}, seed {}): {}", f.origin, f.seed, f.line);
    }

    let generated_findings = report
        .findings
        .iter()
        .filter(|f| f.origin == "generated")
        .count();
    let mutant_findings = report
        .findings
        .iter()
        .filter(|f| f.origin == "mutant")
        .count();

    // Corpus replay: every committed repro must reproduce its recorded
    // outcome line byte-for-byte under the pinned replay profile.
    let corpus = committed_corpus();
    let (replayed, replay_ok) = if corpus.is_dir() {
        match with_quiet_panics(|| replay_dir(&corpus)) {
            Ok(results) => {
                println!();
                for r in &results {
                    let name = r
                        .path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    if r.ok {
                        observe(&format!("corpus {name}"), &r.expect);
                    } else {
                        observe(
                            &format!("corpus {name} MISMATCH"),
                            format!("expect '{}', actual '{}'", r.expect, r.actual),
                        );
                    }
                }
                let ok = results.iter().all(|r| r.ok);
                (results.len(), ok)
            }
            Err(e) => {
                observe("corpus replay error", e);
                (0, false)
            }
        }
    } else {
        observe("corpus", "tests/corpus/ not found; replay skipped");
        (0, false)
    };

    println!();
    verdict(
        &format!(
            "every valid generated program agrees across oracle, 6 machine legs, \
             and kill-restore ({}/{} pass, 0 divergences, 0 panics)",
            report.passes, report.trials
        ),
        generated_findings == 0 && report.passes + report.generated_rejections == report.trials,
    );
    verdict(
        &format!(
            "corrupted sources answer with typed errors, never panics \
             ({} mutants, {} typed rejections)",
            report.mutant_runs, report.mutant_rejections
        ),
        mutant_findings == 0,
    );
    verdict(
        &format!(
            "no generated program is rejected — the reconvergent-gating class \
             compiles since the fusion fix ({}/{} trials rejected)",
            report.generated_rejections, report.trials
        ),
        report.acceptable_rejection_rate(),
    );
    verdict(
        &format!("all {replayed} committed corpus repros replay byte-identically"),
        replay_ok && replayed > 0,
    );
}
