//! FASTFORWARD — steady-state fast-forward as an unobservable
//! optimization.
//!
//! §4's maximally pipelined steady state is *periodic*: once the pipe is
//! full, the machine repeats the same configuration every hyperperiod
//! (shifted in time, with fresh operands). The fast-forward engine
//! proves that periodicity from two consecutive matching state
//! fingerprints and then advances whole hyperperiods analytically
//! instead of simulating them. This reporter regenerates the claims on
//! the paper's Example 1 (Fig. 6) streamed deep into steady state:
//!
//!   1. the fast-forwarded `RunResult` is bit-identical to exact
//!      execution on every kernel;
//!   2. a snapshot taken *after* skipped windows is byte-identical to
//!      the exact kernel's snapshot at the same instruction time;
//!   3. the engine simulates >= 100x fewer instruction times than the
//!      run spans.
//!
//! Flags: `--smoke` (short stream — the CI gate), `--waves <n>`.

use std::time::Instant;

use valpipe_bench::report;
use valpipe_bench::workloads::{fig6_src, inputs_for_compiled};
use valpipe_core::verify::stream_inputs;
use valpipe_core::{compile_source, CompileOptions};
use valpipe_ir::Graph;
use valpipe_machine::{
    Kernel, ProgramInputs, RunOutcome, RunResult, RunSpec, Session, SimConfig, Simulator,
};

const M: usize = 24;

fn session<'g>(
    g: &'g Graph,
    inputs: &ProgramInputs,
    kernel: Kernel,
    max_steps: u64,
) -> Session<'g> {
    Simulator::builder(g)
        .inputs(inputs.clone())
        .config(SimConfig::new().max_steps(max_steps).kernel(kernel))
        .build()
        .unwrap()
}

fn pause_bytes(session: Session<'_>, spec: RunSpec, at: u64) -> Vec<u8> {
    match session.drive(spec.pause_at(at)).unwrap().outcome {
        RunOutcome::Paused(s) => {
            assert_eq!(s.now(), at, "pause must land exactly at t={at}");
            s.checkpoint().as_bytes().to_vec()
        }
        RunOutcome::Done(_) => panic!("run finished before the t={at} pause"),
    }
}

fn main() {
    let mut waves: usize = 20_000;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => waves = 2_000,
            "--waves" => {
                waves = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--waves takes a positive integer");
            }
            other => {
                eprintln!("unknown flag {other:?}\nusage: exp_fastforward [--smoke] [--waves N]");
                std::process::exit(2);
            }
        }
    }

    report::banner(
        "FASTFORWARD: skipping steady-state hyperperiods analytically",
        "§4 steady state (rate 1/2) + Fig. 6",
    );

    let compiled = compile_source(&fig6_src(M), &CompileOptions::paper()).unwrap();
    let exe = compiled.executable();
    let arrays = inputs_for_compiled(&compiled);
    let inputs = stream_inputs(&compiled, &arrays, waves);
    let max_steps = 16 * (M as u64 + 2) * waves as u64;

    // Claim 1: bit-identical RunResult on every kernel.
    let mut identical = true;
    let mut reference: Option<(RunResult, valpipe_machine::FastForwardStats, f64, f64)> = None;
    for kernel in [Kernel::Scan, Kernel::EventDriven, Kernel::ParallelEvent(2)] {
        let t0 = Instant::now();
        let exact = session(&exe, &inputs, kernel, max_steps)
            .drive(RunSpec::new())
            .unwrap()
            .result();
        let t_exact = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let driven = session(&exe, &inputs, kernel, max_steps)
            .drive(RunSpec::new().fast_forward(1))
            .unwrap();
        let t_ff = t0.elapsed().as_secs_f64();
        let stats = driven.fast_forward.clone();
        let ff = driven.result();
        let same = ff == exact;
        identical &= same;
        let executed = ff.steps - stats.skipped_steps;
        println!(
            "{kernel:?}: {} steps, {} executed, {} skipped, period {:?}, exact {:.1}ms vs ff {:.1}ms ({})",
            ff.steps,
            executed,
            stats.skipped_steps,
            stats.period,
            t_exact * 1e3,
            t_ff * 1e3,
            if same { "identical" } else { "DIVERGED" },
        );
        if kernel == Kernel::EventDriven {
            reference = Some((ff, stats, t_exact, t_ff));
        }
    }
    let (ff, stats, t_exact, t_ff) = reference.unwrap();
    report::verdict(
        "fast-forwarded results are bit-identical to exact execution on every kernel",
        identical,
    );

    // Claim 2: a post-skip snapshot is byte-identical to the exact
    // kernel's snapshot at the same instruction time (mid steady state,
    // far past the point where windows were skipped).
    let pause = ff.steps / 2;
    let exact_bytes = pause_bytes(
        session(&exe, &inputs, Kernel::EventDriven, max_steps),
        RunSpec::new(),
        pause,
    );
    let ff_bytes = pause_bytes(
        session(&exe, &inputs, Kernel::EventDriven, max_steps),
        RunSpec::new().fast_forward(0),
        pause,
    );
    report::verdict(
        "the post-skip snapshot is byte-identical to the exact snapshot",
        exact_bytes == ff_bytes,
    );

    // Claim 3: the engine simulates >= 100x fewer instruction times.
    let executed = ff.steps - stats.skipped_steps;
    println!(
        "\nsteady-state accounting: {} of {} instruction times simulated ({} hyperperiods of {:?} skipped, {} verified), wall speedup {:.1}x",
        executed,
        ff.steps,
        stats.windows - stats.verified_windows,
        stats.period,
        stats.verified_windows,
        t_exact / t_ff,
    );
    report::verdict(
        "fast-forward simulates >= 100x fewer instruction times than the run spans",
        executed * 100 <= ff.steps,
    );
}
