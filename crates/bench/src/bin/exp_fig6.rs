//! FIG6 — §6 / Fig. 6 / Theorem 2: the paper's Example 1 primitive forall
//! (boundary-aware smoothing), fully pipelined.
//!
//! Also reports the boundary/interior merge structure: the boundary arm's
//! elements (i = 0 and i = m+1) and the interior stencil are reassembled
//! in index order by a MERGE under a static control stream — exactly the
//! construction of Fig. 6.

use valpipe_bench::report;
use valpipe_bench::workloads::fig6_src;
use valpipe_bench::{FaultArgs, Measurement};
use valpipe_core::{compile_source, CompileOptions};

fn main() {
    report::banner(
        "FIG6: primitive forall (the paper's Example 1)",
        "Fig. 6 + Theorem 2 (§6)",
    );
    let fault_args = FaultArgs::parse_env();
    let mut rows: Vec<Measurement> = Vec::new();
    for m in [8usize, 32, 128, 512] {
        rows.extend(fault_args.measure(
            &format!("example1 m={m}"),
            &fig6_src(m),
            &CompileOptions::paper(),
            "A",
            20,
        ));
    }
    report::table(&rows);

    let compiled = compile_source(&fig6_src(8), &CompileOptions::paper()).unwrap();
    println!(
        "\ncompiled cell mix (m=8): {}",
        valpipe_ir::pretty::summary(&compiled.graph)
    );
    println!("\nmachine-code listing (m=8):");
    print!("{}", valpipe_ir::pretty::listing(&compiled.graph));

    if fault_args.claims_skipped() {
        return;
    }
    report::verdict(
        "Example 1 runs fully pipelined at rate 1/2 for every size",
        rows.iter().all(|r| (r.interval - 2.0).abs() < 0.1),
    );
    report::verdict(
        "every packet matches the interpreter exactly",
        rows.iter().all(|r| r.max_rel_err == 0.0),
    );
}
