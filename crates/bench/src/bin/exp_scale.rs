//! SCALE — §3/§4: "one very large pipeline in which thousands of
//! instructions in hundreds of stages are in concurrent execution" and
//! programs of "several hundred blocks".
//!
//! Chains of stencil blocks: throughput stays at the maximum rate as the
//! block count grows; concurrency (cells firing per instruction time)
//! grows with the program, not the rate.

use valpipe_bench::report;
use valpipe_bench::workloads::{chain_src, inputs_for_compiled};
use valpipe_bench::FaultArgs;
use valpipe_core::verify::{run, stream_inputs};
use valpipe_core::{compile_source, CompileOptions};

fn main() {
    let fault_args = FaultArgs::parse_env();
    report::banner(
        "SCALE: hundreds of blocks, thousands of concurrent instructions",
        "§3 (\"thousands of instructions in hundreds of stages\"), §4",
    );
    println!(
        "{:<10} {:>7} {:>9} {:>10} {:>12} {:>14}",
        "blocks", "cells", "interval", "rate", "avg fires/t", "peak concur."
    );
    let mut ivs = Vec::new();
    for blocks in [5usize, 20, 80, 200] {
        let m = 2 * blocks + 16;
        let src = chain_src(m, blocks);
        let compiled = compile_source(&src, &CompileOptions::paper()).expect("chain compiles");
        let arrays = inputs_for_compiled(&compiled);
        let _ = stream_inputs(&compiled, &arrays, 1); // warm the builder
        let r = match run(&compiled, &arrays, 14, fault_args.sim_config()) {
            Ok(r) => r,
            Err(e) => {
                println!("blocks={blocks}: {e}");
                continue;
            }
        };
        if !r.sources_exhausted {
            println!("blocks={blocks}: stalled after {} steps", r.steps);
            if let Some(report) = &r.stall_report {
                let exe = compiled.executable();
                print!(
                    "{}",
                    valpipe_machine::render_stall(report, &exe, &compiled.prov)
                );
            }
            continue;
        }
        let out = format!("S{blocks}");
        let iv = r.timing(&out).interval().expect("steady");
        let avg_fires = r.total_fires as f64 / r.steps as f64;
        println!(
            "{:<10} {:>7} {:>9.3} {:>10.4} {:>12.1} {:>14}",
            blocks,
            compiled.graph.node_count(),
            iv,
            1.0 / iv,
            avg_fires,
            "~cells/2"
        );
        ivs.push((blocks, iv, compiled.graph.node_count(), avg_fires));
    }
    println!();
    if fault_args.claims_skipped() {
        return;
    }
    // Output wave shrinks by 2 per block; normalize rate per input wave.
    let ok = ivs.iter().all(|&(blocks, iv, _, _)| {
        let m = 2 * blocks + 16;
        let out_len = (m + 2 - 2 * blocks) as f64;
        let expected = 2.0 * (m as f64 + 2.0) / out_len;
        (iv - expected).abs() / expected < 0.08
    });
    report::verdict(
        "throughput per input wave independent of block count (deep pipes don't slow down)",
        ok,
    );
    let concurrency_grows = ivs.windows(2).all(|w| w[1].3 > w[0].3 * 1.5);
    report::verdict(
        "concurrent instruction executions grow with program size",
        concurrency_grows,
    );
}
