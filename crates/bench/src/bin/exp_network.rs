//! NET — §2: the routing networks "built as packet switched networks so
//! the necessary throughput capacity may be obtained at low cost".
//!
//! Two measurements on the router-level omega-network model:
//!
//! 1. the classic latency/load curve under uniform random traffic —
//!    near-`log2 N` latency at light load, saturation at high load;
//! 2. a **trace-driven replay**: the actual inter-PE result packets of a
//!    fully pipelined program (Fig. 6 workload, round-robin placement on
//!    16 PEs) pushed through the network — showing that full-pipelining
//!    traffic loads the network lightly enough to keep latency near the
//!    unloaded minimum, which is what justifies modeling the network as a
//!    constant latency in the detailed machine model.

use std::collections::VecDeque;
use valpipe_bench::workloads::{fig6_src, inputs_for_compiled};
use valpipe_bench::FaultArgs;
use valpipe_core::verify::stream_inputs;
use valpipe_core::{compile_source, CompileOptions};
use valpipe_machine::network::{uniform_load, OmegaNetwork, Packet};
use valpipe_machine::{MachineConfig, Placement, Simulator};

fn main() {
    let fault_args = FaultArgs::parse_env();
    println!("================================================================");
    println!("NET: packet-switched routing network (2x2 routers, omega)");
    println!("reproduces: §2 + [2] (packet networks at low cost)");
    println!("================================================================");

    // 1. Latency/load curve.
    println!("uniform random traffic, 16 ports, queue depth 4:");
    println!(
        "{:>8} {:>12} {:>8} {:>12}",
        "offered", "mean lat", "p99", "throughput"
    );
    let mut sat_ok = false;
    for rate in [0.05, 0.1, 0.2, 0.4, 0.6, 0.9] {
        let p = uniform_load(16, 4, rate, 6000);
        println!(
            "{:>8.2} {:>12.2} {:>8} {:>12.3}",
            p.offered, p.mean_latency, p.p99_latency, p.throughput
        );
        if rate >= 0.9 && p.mean_latency > 8.0 {
            sat_ok = true;
        }
    }

    // 2. Trace-driven replay of a fully pipelined program on two machine
    // sizings: packed (2 cells/PE — oversubscribed) and spread (1 cell/PE).
    let compiled = compile_source(&fig6_src(64), &CompileOptions::paper()).expect("compiles");
    let exe = compiled.executable();
    let arrays = inputs_for_compiled(&compiled);
    let inputs = stream_inputs(&compiled, &arrays, 12);
    let run = Simulator::builder(&exe)
        .inputs(inputs.clone())
        .config(fault_args.sim_config().record_fire_times(true))
        .run()
        .unwrap();
    if let Some(report) = &run.stall_report {
        println!(
            "\ntrace run stalled after {} steps; no replay possible",
            run.steps
        );
        print!(
            "{}",
            valpipe_machine::render_stall(report, &exe, &compiled.prov)
        );
        return;
    }
    let fire_times = run.fire_times.clone().unwrap();
    let horizon = run.steps;

    // The idealized trace is OPEN LOOP: every cell fires at the maximum
    // rate with no network backpressure, and fan-out makes persistent
    // flows pile onto shared internal links (measured below: some links
    // are offered 2.5 packets/cycle — 2.5× capacity). The real machine is
    // closed-loop: late acknowledges throttle the cells. We emulate that
    // here by time-dilating the trace (the program running slower by a
    // factor D) and watching queueing vanish once links are under
    // capacity.
    let pes = 64usize;
    let cfg = MachineConfig {
        pes,
        ..Default::default()
    };
    let placement = Placement::round_robin(&exe, cfg);
    let mut base_schedule: Vec<(u64, usize, usize)> = Vec::new();
    for (i, times) in fire_times.iter().enumerate() {
        for &a in &exe.nodes[i].outputs {
            let dst = exe.arcs[a.idx()].dst.idx();
            let (sp, dp) = (placement.pe_of[i], placement.pe_of[dst]);
            if sp != dp {
                for &t in times {
                    base_schedule.push((t, sp, dp));
                }
            }
        }
    }
    base_schedule.sort_unstable();
    println!(
        "\ntrace replay: fig6 m=64 ({} cells) on {pes} PEs, {} remote packets",
        exe.node_count(),
        base_schedule.len()
    );
    println!(
        "{:>10} {:>10} {:>12} {:>10}",
        "dilation", "offered", "mean lat", "max lat"
    );
    let mut congested_at_1 = false;
    let mut clean_when_under = false;
    for dilation in [1u64, 2, 4] {
        let mut net = OmegaNetwork::new(pes, 4);
        // `link=` faults from the plan apply to the replay network.
        if let Some(plan) = &fault_args.fault_plan {
            for lf in &plan.link_faults {
                net.fail_link(lf.stage, lf.port, lf.from, lf.until)
                    .expect("link fault out of range for the replay network");
            }
        }
        let mut pending: Vec<VecDeque<Packet>> = vec![VecDeque::new(); pes];
        let (mut idx, mut seq) = (0usize, 0u64);
        let dilated_horizon = horizon * dilation;
        for cycle in 0..dilated_horizon {
            while idx < base_schedule.len() && base_schedule[idx].0 * dilation <= cycle {
                let (_, sp, dp) = base_schedule[idx];
                pending[sp].push_back(Packet {
                    dest: dp,
                    injected_at: 0,
                    seq,
                });
                seq += 1;
                idx += 1;
            }
            for (port, q) in pending.iter_mut().enumerate() {
                if let Some(&p) = q.front() {
                    if net.inject(port, p) {
                        q.pop_front();
                    }
                }
            }
            net.step();
        }
        net.drain(300_000);
        let lat: Vec<u64> = net
            .delivered()
            .iter()
            .map(|&(t, p)| t - p.injected_at)
            .collect();
        let mean = lat.iter().sum::<u64>() as f64 / lat.len().max(1) as f64;
        let max = lat.iter().copied().max().unwrap_or(0);
        let offered = base_schedule.len() as f64 / (dilated_horizon as f64 * pes as f64);
        println!(
            "{:>10} {:>10.3} {:>12.2} {:>10}",
            dilation, offered, mean, max
        );
        if dilation == 1 && mean > net.stages() as f64 + 4.0 {
            congested_at_1 = true;
        }
        if dilation == 4 && mean < net.stages() as f64 + 2.0 {
            clean_when_under = true;
        }
    }
    println!();
    if fault_args.claims_skipped() {
        return;
    }
    println!(
        "CLAIM [{}] random traffic saturates the network at high load (packet switching is doing real work)",
        if sat_ok { "HOLDS" } else { "FAILS" }
    );
    println!(
        "CLAIM [{}] open-loop full-rate traffic with fan-out oversubscribes shared links (up to 2.5×",
        if congested_at_1 { "HOLDS" } else { "FAILS" }
    );
    println!("        capacity here) — the acknowledge discipline's backpressure is load-bearing");
    println!(
        "CLAIM [{}] once links are under capacity the network delivers near its unloaded log2(N)",
        if clean_when_under { "HOLDS" } else { "FAILS" }
    );
    println!("        latency — packet switching provides the throughput cheaply (§2, [2])");
}
