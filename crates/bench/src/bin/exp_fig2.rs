//! FIG2 — §3 / Fig. 2: pipelined execution of `(y+2)*(y-3)`, `y = a*b`.
//!
//! Claims reproduced:
//! * a balanced expression pipeline runs at the maximum rate (one result
//!   per two instruction times);
//! * "the computation rate of a pipeline is not dependent on the number
//!   of stages" — deeper expressions keep the same rate.

use valpipe_bench::report;
use valpipe_bench::workloads::fig2_src;
use valpipe_bench::{FaultArgs, Measurement};
use valpipe_core::CompileOptions;

fn deep_src(m: usize, depth: usize) -> String {
    // ((…((a·b)+1)+1…)+1): `depth` extra stages.
    let mut e = "A[i] * B[i]".to_string();
    for _ in 0..depth {
        e = format!("({e} + 1.)");
    }
    format!(
        "param m = {m};
input A : array[real] [0, m];
input B : array[real] [0, m];
Y : array[real] := forall i in [0, m] construct {e} endall;
output Y;"
    )
}

fn main() {
    report::banner(
        "FIG2: pipelined expression execution",
        "Fig. 2 + §3 (maximum rate 1/2; rate independent of stage count)",
    );
    let fault_args = FaultArgs::parse_env();
    let opts = CompileOptions::paper();
    let mut rows: Vec<Measurement> = Vec::new();
    for m in [16usize, 64, 256] {
        rows.extend(fault_args.measure(&format!("fig2 m={m}"), &fig2_src(m), &opts, "Y", 30));
    }
    for depth in [1usize, 8, 32, 96] {
        rows.extend(fault_args.measure(
            &format!("depth={depth} m=64"),
            &deep_src(64, depth),
            &opts,
            "Y",
            30,
        ));
    }
    report::table(&rows);
    if fault_args.claims_skipped() {
        return;
    }
    let all_max_rate = rows.iter().all(|r| (r.interval - 2.0).abs() < 0.1);
    report::verdict(
        "balanced expression pipelines run at rate 1/2",
        all_max_rate,
    );
    let (lo, hi) = rows[3..].iter().fold((f64::MAX, f64::MIN), |(lo, hi), r| {
        (lo.min(r.interval), hi.max(r.interval))
    });
    report::verdict(
        "rate independent of the number of stages (§3)",
        hi - lo < 0.05,
    );
}
