//! DELAY — §9: trading delay for rate on a cyclic dependence.
//!
//! > "a recurrence having a cyclic dependence of four operators may be
//! > implemented at the maximum rate by introducing a delay (via a FIFO
//! > buffer) of length equal to the number of elements in the array being
//! > generated."
//!
//! A time-stepping loop (`x_i ← a·x_i + b`, four operator cells) circulates
//! the whole array through a delay line. With the one-token-per-arc
//! acknowledge discipline, the ring peaks at 50% occupancy, so the delay
//! line is sized to make the cycle twice the array length — the paper's
//! delay-for-rate tradeoff, quantified.

use valpipe_bench::FaultArgs;
use valpipe_core::timestep::build_timestep_loop;
use valpipe_ir::Value;
use valpipe_machine::Simulator;

fn run(n: usize, delay: usize, fault_args: &FaultArgs) -> Option<(f64, usize)> {
    let initial: Vec<Value> = (0..n).map(|i| Value::Real(i as f64 * 0.1)).collect();
    let g = build_timestep_loop(&initial, 0.5, 1.0, 2, delay);
    let cells = g.node_count() - 1; // minus the sink
    let r = Simulator::builder(&g)
        .config(fault_args.sim_config().max_steps(40_000))
        .run()
        .unwrap();
    if let Some(report) = &r.stall_report {
        println!("n={n} delay={delay}: stalled after {} steps", r.steps);
        print!("{report}");
        return None;
    }
    Some((r.timing("x").interval()?, cells))
}

fn main() {
    let fault_args = FaultArgs::parse_env();
    println!("================================================================");
    println!("DELAY: cyclic dependence at maximum rate via a full-array delay");
    println!("reproduces: §9 (delay-for-rate tradeoff)");
    println!("================================================================");
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>10} {:>12}",
        "array n", "delay", "cycle L", "tokens m", "interval", "predicted"
    );
    let mut all_ok = true;
    for (n, delay) in [
        (1usize, 1usize), // minimal: rate 1/5
        (4, 4),           // paper's literal reading: delay = n
        (8, 8),
        (8, 12),  // cycle 2n: maximum rate
        (16, 28), // cycle 2n: maximum rate
        (16, 16),
    ] {
        let Some((iv, cells)) = run(n, delay, &fault_args) else {
            all_ok = false;
            continue;
        };
        let cycle = 4 + delay; // MULT + ADD + 2 pads + delay stages
        let m = n as f64;
        let predicted = cycle as f64 / m.min(cycle as f64 - m).max(1.0);
        let predicted = predicted.max(2.0);
        println!(
            "{:<10} {:>8} {:>8} {:>10} {:>10.3} {:>12.3}",
            n, delay, cycle, n, iv, predicted
        );
        if (iv - predicted).abs() > 0.25 {
            all_ok = false;
        }
        let _ = cells;
    }
    println!();
    if fault_args.claims_skipped() {
        return;
    }
    println!(
        "CLAIM [{}] ring rate = min(m, L−m)/L; sizing the delay to L = 2n",
        if all_ok { "HOLDS" } else { "FAILS" }
    );
    println!("        restores the maximum rate 1/2 — delay traded for rate (§9)");
}
