//! INCR — query-based incremental recompilation: fingerprint-keyed
//! per-block queries across the whole pass pipeline, measured on the §4
//! "several hundred blocks" pipe-structure shape.
//!
//! Claims checked:
//!
//! 1. editing one block of a 1000-block program re-executes fewer than
//!    5% of the compile queries (parse, typecheck, lower-region,
//!    balance, machine listing);
//! 2. the warm recompile after that edit is at least 10× faster than a
//!    cold compile of the same source;
//! 3. the engine's cold output is bit-identical to the legacy
//!    whole-program pipeline — same graph fingerprint, same stage
//!    dumps, same diagnostics — across the workload suite and every
//!    committed corpus repro.
//!
//! Flags: `--blocks <n>` (default 1000) sizes the edit workload.

use std::path::{Path, PathBuf};
use std::time::Instant;

use valpipe_bench::report::{banner, observe, verdict};
use valpipe_bench::workloads::{chain_src, fig3_src, fig6_src, physics_src};
use valpipe_bench::FaultArgs;
use valpipe_core::{
    CompileError, CompileLimits, CompileOptions, LimitBreach, PassManager, QueryEngine, Stage,
};
use valpipe_val::parser::{
    parse_program_mapped_limited, ParseErrorKind, DEFAULT_MAX_NESTING_DEPTH,
};

fn committed_corpus() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Deterministic digest of one compile outcome: every stage dump plus
/// the graph fingerprint on success, the rendered diagnostic on failure.
fn digest(result: Result<valpipe_core::PipelineOutput, CompileError>) -> String {
    match result {
        Ok(out) => {
            let mut s = format!("fingerprint {:016x}\n", out.compiled.graph.fingerprint());
            for (stage, dump) in &out.dumps {
                s.push_str(&format!("==== {stage} ====\n{dump}"));
            }
            s
        }
        Err(e) => format!("error: {e}\n"),
    }
}

/// The pre-engine monolithic pipeline: whole-file parse, then
/// [`PassManager::run`] over the complete program. This is the reference
/// the engine must match byte-for-byte.
fn legacy_compile(
    src: &str,
    file: &str,
    opts: &CompileOptions,
    limits: &CompileLimits,
    emit: &[Stage],
) -> Result<valpipe_core::PipelineOutput, CompileError> {
    if src.len() > limits.max_source_bytes {
        return Err(CompileError::Limit(LimitBreach::SourceBytes {
            got: src.len(),
            limit: limits.max_source_bytes,
        }));
    }
    let (prog, map) =
        parse_program_mapped_limited(src, file, limits.max_nesting_depth).map_err(|e| {
            match e.kind {
                ParseErrorKind::DepthLimit => CompileError::Limit(LimitBreach::NestingDepth {
                    limit: limits.max_nesting_depth.min(DEFAULT_MAX_NESTING_DEPTH),
                }),
                ParseErrorKind::Syntax => CompileError::Parse(e),
            }
        })?;
    PassManager::new(opts)
        .limits(*limits)
        .emit_all(emit)
        .run(&prog, &map)
}

fn engine_compile(
    engine: &mut QueryEngine,
    src: &str,
    file: &str,
    limits: &CompileLimits,
    emit: &[Stage],
) -> Result<valpipe_core::PipelineOutput, CompileError> {
    engine.run_source(&CompileOptions::paper(), limits, emit, src, file)
}

/// Replace the first `0.5` literal inside block `S<k>`'s statement with
/// `0.7` — a length-preserving single-block edit.
fn edit_block(src: &str, k: usize) -> String {
    let needle = format!("S{k} : array[real]");
    let at = src.find(&needle).expect("workload block present");
    let lit = src[at..].find("0.5").expect("editable literal") + at;
    let mut s = src.to_string();
    s.replace_range(lit..lit + 3, "0.7");
    s
}

fn main() {
    let args = FaultArgs::parse_env();
    banner(
        "INCR: query-based incremental recompilation",
        "engineering suite (no paper figure); §4 pipe structures of several hundred blocks",
    );

    let blocks = args.blocks.unwrap_or(1000);
    let m = 2 * blocks + 16;
    let src = chain_src(m, blocks);
    let limits = CompileLimits::unbounded();
    println!();
    println!(
        "workload: {blocks}-block stencil chain over [0, {}] ({} bytes of Val)",
        m + 1,
        src.len()
    );

    // ---- cold compile --------------------------------------------------
    let mut engine = QueryEngine::new();
    let t0 = Instant::now();
    let cold = engine_compile(&mut engine, &src, "chain.val", &limits, &[]).unwrap();
    let t_cold = t0.elapsed().as_secs_f64();
    let cold_queries = engine.stats().total();
    observe("cells", cold.compiled.graph.node_count());
    observe("arcs", cold.compiled.graph.arcs.len());
    observe("cold compile", format!("{:.1} ms", t_cold * 1e3));
    observe("queries (cold)", engine.stats().render());

    // ---- one-block edit, warm recompile --------------------------------
    let edited = edit_block(&src, blocks / 2);
    assert_eq!(edited.len(), src.len(), "edit must preserve length");
    let t0 = Instant::now();
    let warm = engine_compile(&mut engine, &edited, "chain.val", &limits, &[]).unwrap();
    let t_warm = t0.elapsed().as_secs_f64();
    let executed = engine.stats().executed();
    let total = engine.stats().total();
    let frac = executed as f64 / total as f64;
    observe(
        "warm recompile after 1-block edit",
        format!("{:.1} ms", t_warm * 1e3),
    );
    observe("queries (warm)", engine.stats().render());
    observe(
        "re-executed fraction",
        format!("{executed}/{total} = {:.3}%", frac * 100.0),
    );
    observe("speedup (cold/warm)", format!("{:.1}x", t_cold / t_warm));

    // The warm artifact must equal a cold compile of the edited source.
    let cold_edited =
        engine_compile(&mut QueryEngine::new(), &edited, "chain.val", &limits, &[]).unwrap();
    let warm_identical =
        warm.compiled.graph.fingerprint() == cold_edited.compiled.graph.fingerprint();
    observe(
        "warm output vs cold-of-edited",
        if warm_identical {
            "identical fingerprints"
        } else {
            "MISMATCH"
        },
    );

    // ---- engine vs legacy pipeline, bit for bit ------------------------
    let mut suite: Vec<(String, String)> = vec![
        ("fig3/m32".into(), fig3_src(32)),
        ("fig3/m256".into(), fig3_src(256)),
        ("fig6/m64".into(), fig6_src(64)),
        ("physics/m48".into(), physics_src(48)),
        ("chain/8".into(), chain_src(40, 8)),
        ("chain/8-edited".into(), edit_block(&chain_src(40, 8), 4)),
    ];
    let corpus = committed_corpus();
    if corpus.is_dir() {
        let mut files: Vec<_> = std::fs::read_dir(&corpus)
            .unwrap()
            .filter_map(|f| f.ok().map(|f| f.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "val"))
            .collect();
        files.sort();
        for p in files {
            let name = format!("corpus/{}", p.file_name().unwrap().to_string_lossy());
            suite.push((name, std::fs::read_to_string(&p).unwrap()));
        }
    }

    println!();
    let opts = CompileOptions::paper();
    let default_limits = CompileLimits::default();
    let mut mismatches = 0usize;
    for (name, text) in &suite {
        let legacy = digest(legacy_compile(
            text,
            name,
            &opts,
            &default_limits,
            &Stage::ALL,
        ));
        let via_engine = digest(engine_compile(
            &mut QueryEngine::new(),
            text,
            name,
            &default_limits,
            &Stage::ALL,
        ));
        // And warm: a second engine run over the same source must also
        // match (the memo path replays, it does not approximate).
        let mut e2 = QueryEngine::new();
        let _ = engine_compile(&mut e2, text, name, &default_limits, &Stage::ALL);
        let via_warm = digest(engine_compile(
            &mut e2,
            text,
            name,
            &default_limits,
            &Stage::ALL,
        ));
        let ok = legacy == via_engine && legacy == via_warm;
        if !ok {
            mismatches += 1;
        }
        observe(
            name,
            if ok {
                "cold+warm bit-identical to legacy pipeline"
            } else {
                "MISMATCH"
            },
        );
    }

    println!();
    verdict(
        &format!(
            "a single-block edit of a {blocks}-block program re-executes <5% of \
             compile queries ({executed}/{total} = {:.3}%)",
            frac * 100.0
        ),
        frac < 0.05 && cold_queries > 0,
    );
    verdict(
        &format!(
            "the warm recompile is >=10x faster than cold ({:.1} ms vs {:.1} ms, {:.1}x)",
            t_warm * 1e3,
            t_cold * 1e3,
            t_cold / t_warm
        ),
        t_cold / t_warm >= 10.0 && warm_identical,
    );
    verdict(
        &format!(
            "cold and warm engine output is bit-identical to the legacy pipeline \
             across {} workloads and corpus repros",
            suite.len()
        ),
        mismatches == 0 && !suite.is_empty(),
    );
}
