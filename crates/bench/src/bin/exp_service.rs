//! SERVICE — chaos soak for the multi-tenant simulation service.
//!
//! Spawns the real `valpipe-serve` binary as a child process, drives it
//! with concurrent clients, and `kill -9`s the whole server at random
//! moments, restarting it each time on a fresh port against the same
//! hibernation directory. The claims under test:
//!
//! 1. every client's final result is *bit-identical* to an in-process
//!    oracle run of the same session spec, despite crashes, retries,
//!    hibernation/eviction, and budget-bounded jobs along the way;
//! 2. a restarted server recovers every hibernated session from disk;
//! 3. a pipelined burst against a tiny queue is answered with structured
//!    `overloaded` rejections, not blocking or collapse;
//! 4. graceful shutdown drains and acknowledges; and
//! 5. no server generation ever panics (stderr is scanned).
//!
//! Flags: `--smoke` (1 kill, 2 clients — the CI gate), `--kills <n>`,
//! `--clients <n>`, `--seed <n>`.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use valpipe_machine::Kernel;
use valpipe_serve::{Advance, Client, JobLimits, SessionCore, SessionSpec};
use valpipe_util::{Json, Rng};

fn kernel_str(k: Kernel) -> &'static str {
    match k {
        Kernel::Scan => "scan",
        Kernel::EventDriven => "event",
        Kernel::ParallelEvent(_) => "parallel:2",
    }
}

/// The per-client workload: the paper's Fig. 6 stencil at a small size,
/// with per-client wave counts so every session has distinct state.
fn client_spec(i: usize, waves: usize, kernel: Kernel) -> SessionSpec {
    SessionSpec {
        name: format!("chaos-{i}"),
        source: "param m = 4;\n\
                 input B : array[real] [0, m+1];\n\
                 input C : array[real] [0, m+1];\n\
                 A : array[real] :=\n\
                 forall i in [0, m+1]\n\
                 P : real :=\n\
                 if (i = 0)|(i = m+1) then C[i]\n\
                 else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])\n\
                 endif;\n\
                 construct B[i]*(P*P)\n\
                 endall;\n\
                 output A;"
            .to_string(),
        arrays: Json::parse(r#"{"B":[0.5,1.5,2.5,3.5,4.5,5.5],"C":[1.0,2.0,3.0,2.0,1.0,0.5]}"#)
            .unwrap(),
        waves,
        kernel,
        max_steps: 2_000_000,
    }
}

fn open_request(spec: &SessionSpec) -> Json {
    Json::Obj(vec![
        ("op".to_string(), Json::Str("open".to_string())),
        ("session".to_string(), Json::Str(spec.name.clone())),
        ("source".to_string(), Json::Str(spec.source.clone())),
        ("arrays".to_string(), spec.arrays.clone()),
        ("waves".to_string(), Json::Int(spec.waves as i64)),
        (
            "kernel".to_string(),
            Json::Str(kernel_str(spec.kernel).to_string()),
        ),
        ("max_steps".to_string(), Json::Int(spec.max_steps as i64)),
    ])
}

/// Locate the `valpipe-serve` binary next to this experiment binary.
fn server_bin() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("exe dir").to_path_buf();
    for cand in [dir.join("valpipe-serve"), dir.join("../valpipe-serve")] {
        if cand.exists() {
            return cand;
        }
    }
    eprintln!(
        "error: valpipe-serve binary not found next to {}",
        exe.display()
    );
    eprintln!("build it first: cargo build --bin valpipe-serve");
    std::process::exit(1);
}

/// One server generation: the child process, its address, and a thread
/// draining stderr into a buffer scanned for panics at the end.
struct Generation {
    child: Child,
    addr: String,
    stderr: Arc<Mutex<String>>,
    drain: std::thread::JoinHandle<()>,
}

fn start_server(bin: &PathBuf, dir: &Path, seed: u64) -> Generation {
    let mut child = Command::new(bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--dir",
            dir.to_str().unwrap(),
            "--workers",
            "2",
            "--queue",
            "3",
            "--max-live",
            "2",
            "--seed",
            &seed.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn valpipe-serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();
    let stderr_pipe = child.stderr.take().expect("child stderr");
    let stderr = Arc::new(Mutex::new(String::new()));
    let sink = Arc::clone(&stderr);
    let drain = std::thread::spawn(move || {
        let mut buf = String::new();
        let mut r = BufReader::new(stderr_pipe);
        let _ = r.read_to_string(&mut buf);
        sink.lock().unwrap().push_str(&buf);
    });
    Generation {
        child,
        addr,
        stderr,
        drain,
    }
}

/// Finish a generation: reap the child, join the drain, return stderr.
fn reap(mut gen: Generation) -> String {
    let _ = gen.child.wait();
    let _ = gen.drain.join();
    let s = gen.stderr.lock().unwrap().clone();
    s
}

/// A client's view of the (moving) server address.
type AddrCell = Arc<Mutex<String>>;

/// Issue one request with reconnect-and-retry against transient
/// failures; returns the first definitive response. Panics on permanent
/// errors — in this soak every permanent error is a harness bug.
fn request_retry(addr: &AddrCell, req: &Json, rng: &mut Rng, tag: &str) -> Json {
    let mut client: Option<Client> = None;
    for _attempt in 0..4000 {
        let addr_now = addr.lock().unwrap().clone();
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(&addr_now, Duration::from_secs(20)) {
                Ok(c) => {
                    client = Some(c);
                    client.as_mut().unwrap()
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(5 + rng.below(20) as u64));
                    continue;
                }
            },
        };
        match c.request(req) {
            Err(_) => {
                // Server died or address rotated mid-request: reconnect.
                client = None;
                std::thread::sleep(Duration::from_millis(5 + rng.below(20) as u64));
            }
            Ok(resp) => {
                if resp.get("ok").and_then(|v| v.as_bool()) == Some(true) {
                    return resp;
                }
                let err = resp.get("error").cloned().unwrap_or(Json::Null);
                let kind = err.get("kind").and_then(|v| v.as_str()).unwrap_or("?");
                let retryable = err
                    .get("retryable")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false);
                if retryable {
                    let after = err
                        .get("retry_after_ms")
                        .and_then(|v| v.as_i64())
                        .unwrap_or(10) as u64;
                    std::thread::sleep(Duration::from_millis(after + rng.below(10) as u64));
                } else if kind == "no_such_session" {
                    // A kill can land between admission and the open's
                    // container write; the caller re-opens idempotently.
                    return resp;
                } else {
                    panic!("{tag}: permanent failure {kind}: {}", err.to_compact());
                }
            }
        }
    }
    panic!("{tag}: no definitive response after 4000 attempts");
}

/// Drive one session to completion through the chaos: open (idempotent),
/// then budgeted and paused jobs with random absolute targets, retrying
/// through crashes, until `done`. Returns the result's compact JSON.
fn run_client(addr: &AddrCell, spec: &SessionSpec, seed: u64, stop_chaos: &AtomicBool) -> String {
    let mut rng = Rng::seed(seed);
    let tag = spec.name.clone();
    let open = open_request(spec);
    loop {
        let resp = request_retry(addr, &open, &mut rng, &tag);
        if resp.get("ok").and_then(|v| v.as_bool()) != Some(true) {
            continue; // no_such_session race: re-open
        }
        let mut now = resp.get("now").and_then(|v| v.as_i64()).unwrap_or(0) as u64;
        loop {
            let hop = 20 + rng.below(120) as u64;
            let mut req = vec![
                ("op".to_string(), Json::Str("run".to_string())),
                ("session".to_string(), Json::Str(spec.name.clone())),
                ("until".to_string(), Json::Int((now + hop) as i64)),
            ];
            // Some jobs also carry a tight step budget, exercising the
            // budget-exhaustion → retry path under chaos.
            if rng.below(4) == 0 {
                req.push((
                    "step_budget".to_string(),
                    Json::Int(40 + rng.below(150) as i64),
                ));
            }
            let resp = request_retry(addr, &Json::Obj(req), &mut rng, &tag);
            if resp.get("ok").and_then(|v| v.as_bool()) != Some(true) {
                break; // no_such_session: restart from open
            }
            if resp.get("done").and_then(|v| v.as_bool()) == Some(true) {
                stop_chaos.store(true, Ordering::SeqCst);
                return resp
                    .get("result")
                    .expect("done response carries result")
                    .to_compact();
            }
            now = resp
                .get("now")
                .and_then(|v| v.as_i64())
                .unwrap_or(now as i64) as u64;
            // Interactive pacing: keep each session alive long enough
            // for kills to land mid-stream.
            std::thread::sleep(Duration::from_millis(3 + rng.below(12) as u64));
        }
    }
}

/// In-process oracle: the same spec run uninterrupted through the same
/// encoder the server uses.
fn oracle(spec: &SessionSpec) -> String {
    let mut core = SessionCore::open(spec.clone()).expect("oracle spec opens");
    match core
        .advance(&JobLimits::default(), 1 << 40)
        .expect("oracle runs")
    {
        Advance::Done { .. } => {}
        _ => panic!("oracle must complete"),
    }
    Json::parse(&core.final_result.unwrap())
        .unwrap()
        .to_compact()
}

fn stat(addr: &AddrCell, key: &str, rng: &mut Rng) -> i64 {
    let resp = request_retry(
        addr,
        &Json::parse(r#"{"op":"stats"}"#).unwrap(),
        rng,
        "stats",
    );
    resp.get(key).and_then(|v| v.as_i64()).unwrap_or(-1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kills = 3usize;
    let mut clients = 4usize;
    let mut seed = 0xC8A05u64;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--smoke" => {
                kills = 1;
                clients = 2;
            }
            "--kills" => {
                k += 1;
                kills = args.get(k).and_then(|s| s.parse().ok()).unwrap_or(kills);
            }
            "--clients" => {
                k += 1;
                clients = args.get(k).and_then(|s| s.parse().ok()).unwrap_or(clients);
            }
            "--seed" => {
                k += 1;
                seed = args.get(k).and_then(|s| s.parse().ok()).unwrap_or(seed);
            }
            other => {
                eprintln!("unknown flag '{other}'");
                eprintln!("usage: exp_service [--smoke] [--kills N] [--clients N] [--seed N]");
                std::process::exit(2);
            }
        }
        k += 1;
    }

    println!("================================================================");
    println!("SERVICE: chaos soak — kill -9, restart, retry, compare bitwise");
    println!("================================================================");
    println!();
    println!("{clients} clients, {kills} random server kills");

    let bin = server_bin();
    let dir = std::env::temp_dir().join(format!("valpipe_service_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("chaos dir");

    // Oracles first: the ground truth each client must reproduce.
    let kernels = [Kernel::EventDriven, Kernel::Scan, Kernel::ParallelEvent(2)];
    let specs: Vec<SessionSpec> = (0..clients)
        .map(|i| client_spec(i, 300 + 120 * i, kernels[i % kernels.len()]))
        .collect();
    let oracles: Vec<String> = specs.iter().map(oracle).collect();

    let gen0 = start_server(&bin, &dir, seed);
    let addr: AddrCell = Arc::new(Mutex::new(gen0.addr.clone()));
    let mut generations = vec![gen0];
    let stop_chaos = Arc::new(AtomicBool::new(false));

    // Clients race the chaos controller.
    let mut joins = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let addr = Arc::clone(&addr);
        let spec = spec.clone();
        let stop = Arc::clone(&stop_chaos);
        joins.push(std::thread::spawn(move || {
            run_client(&addr, &spec, 0x11AD + i as u64, &stop)
        }));
    }

    // Chaos controller: kill -9 the whole server at random moments, then
    // restart against the same hibernation directory on a fresh port.
    let mut rng = Rng::seed(seed ^ 0xDEAD);
    let mut stderr_logs = Vec::new();
    for kill_no in 0..kills {
        std::thread::sleep(Duration::from_millis(150 + rng.below(350) as u64));
        if stop_chaos.load(Ordering::SeqCst) {
            println!("kill {kill_no}: skipped (a client already finished)");
            break;
        }
        let mut old = generations.pop().unwrap();
        let pid = old.child.id();
        old.child.kill().expect("kill -9 server"); // SIGKILL on unix
        stderr_logs.push(reap(old));
        let next = start_server(&bin, &dir, seed + 1 + kill_no as u64);
        *addr.lock().unwrap() = next.addr.clone();
        println!(
            "kill {kill_no}: SIGKILL pid {pid}, restarted at {}",
            next.addr
        );
        generations.push(next);
    }

    let results: Vec<String> = joins
        .into_iter()
        .map(|j| j.join().expect("client"))
        .collect();

    // Claim 1: bitwise identity with the oracle, per client.
    let mut identical = true;
    for (i, (got, want)) in results.iter().zip(oracles.iter()).enumerate() {
        let same = got == want;
        identical &= same;
        println!(
            "client {i} ({}, {} waves): {}",
            kernel_str(specs[i].kernel),
            specs[i].waves,
            if same { "identical" } else { "DIFFERS" }
        );
    }

    // Claim 2: one final deterministic crash after every client is done,
    // so the restarted registry can only come from the hibernation
    // directory — no client ever re-opens on this generation.
    let mut rng2 = Rng::seed(seed ^ 0xF00D);
    {
        let mut old = generations.pop().unwrap();
        old.child.kill().expect("final kill");
        stderr_logs.push(reap(old));
        let next = start_server(&bin, &dir, seed + 0x9999);
        *addr.lock().unwrap() = next.addr.clone();
        generations.push(next);
    }
    let sessions_after = stat(&addr, "sessions", &mut rng2);
    let recovered_ok = sessions_after == clients as i64;
    println!("sessions recovered from disk after final kill: {sessions_after}/{clients}");

    // Claim 3: a pipelined burst against the 3-deep queue is rejected
    // with structured overload responses.
    let rejected_before = stat(&addr, "rejected_overload", &mut rng2);
    {
        let heavy = client_spec(900, 4000, Kernel::EventDriven);
        let mut heavy = SessionSpec {
            name: "burst".to_string(),
            ..heavy
        };
        heavy.max_steps = 10_000_000;
        request_retry(&addr, &open_request(&heavy), &mut rng2, "burst-open");
        let addr_now = addr.lock().unwrap().clone();
        let mut stream = std::net::TcpStream::connect(&addr_now).expect("burst connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        let mut burst = String::new();
        for i in 0..10 {
            burst.push_str(&format!(
                "{{\"op\":\"run\",\"session\":\"burst\",\"until\":1000000,\"id\":{i}}}\n"
            ));
        }
        stream.write_all(burst.as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        for _ in 0..10 {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
        }
    }
    let rejected_after = stat(&addr, "rejected_overload", &mut rng2);
    let overload_ok = rejected_after > rejected_before;
    println!("overload rejections: {rejected_before} -> {rejected_after}");
    let hibernations = stat(&addr, "hibernations", &mut rng2);
    let resumes = stat(&addr, "resumes", &mut rng2);
    println!("hibernations: {hibernations}, resumes: {resumes}");

    // Claim 4: graceful shutdown drains and acknowledges.
    let addr_now = addr.lock().unwrap().clone();
    let mut c = Client::connect(&addr_now, Duration::from_secs(120)).expect("shutdown connect");
    let resp = c
        .request(&Json::parse(r#"{"op":"shutdown"}"#).unwrap())
        .expect("shutdown reply");
    let graceful_ok = resp.get("drained").and_then(|v| v.as_bool()) == Some(true);
    println!(
        "graceful shutdown: drained={graceful_ok}, hibernated={}",
        resp.get("hibernated")
            .and_then(|v| v.as_i64())
            .unwrap_or(-1)
    );
    for gen in generations {
        stderr_logs.push(reap(gen));
    }

    // Claim 5: no generation panicked.
    let mut panicked = false;
    for (i, log) in stderr_logs.iter().enumerate() {
        if log.contains("panicked") {
            panicked = true;
            println!("--- generation {i} stderr ---\n{log}");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);

    println!();
    println!(
        "CLAIM [{}] results served across kill -9, restart, retry, and \
         hibernation are bit-identical to the uninterrupted oracle",
        if identical { "HOLDS" } else { "FAILS" }
    );
    println!(
        "CLAIM [{}] a restarted server recovers every hibernated session \
         from its container directory",
        if recovered_ok { "HOLDS" } else { "FAILS" }
    );
    println!(
        "CLAIM [{}] a burst beyond the bounded queue is rejected with \
         structured overload responses",
        if overload_ok { "HOLDS" } else { "FAILS" }
    );
    println!(
        "CLAIM [{}] graceful shutdown drains the queue and hibernates \
         every live session",
        if graceful_ok { "HOLDS" } else { "FAILS" }
    );
    println!(
        "CLAIM [{}] no server generation panicked",
        if !panicked { "HOLDS" } else { "FAILS" }
    );
    if !(identical && recovered_ok && overload_ok && graceful_ok && !panicked) {
        std::process::exit(1);
    }
}
