//! LAT — §2 / Fig. 1: the detailed machine model (PEs, FUs, AMs, routing
//! networks).
//!
//! The idealized analysis assumes one instruction time per hop. This
//! experiment maps the Fig. 6 workload onto the detailed machine and
//! measures how routing-network latency stretches the acknowledge round
//! trip — and how per-link buffering (arc capacity) wins the rate back,
//! the architectural reason the machine's networks are built as packet
//! pipelines.

use valpipe_bench::workloads::{fig6_src, inputs_for_compiled};
use valpipe_bench::FaultArgs;
use valpipe_core::verify::stream_inputs;
use valpipe_core::{compile_source, CompileOptions};
use valpipe_machine::{MachineConfig, Placement, Simulator};

fn main() {
    let fault_args = FaultArgs::parse_env();
    println!("================================================================");
    println!("LAT: detailed machine (PE/FU/AM/RN) — latency vs buffering");
    println!("reproduces: §2 / Fig. 1 architecture behaviour");
    println!("================================================================");
    let src = fig6_src(64);
    let compiled = compile_source(&src, &CompileOptions::paper()).expect("compiles");
    let exe = compiled.executable();
    let arrays = inputs_for_compiled(&compiled);
    let inputs = stream_inputs(&compiled, &arrays, 20);

    println!(
        "{:<12} {:>12} {:>10} {:>10}",
        "net latency", "arc capacity", "interval", "rate"
    );
    let mut results = Vec::new();
    for net in [0u64, 1, 2, 4] {
        for cap in [1usize, 2, 4, 8] {
            let cfg = MachineConfig {
                pes: 16,
                network_latency: net,
                fu_latency: 1,
                am_latency: 2,
                pe_issue_width: 64,
                ..Default::default()
            };
            let placement = Placement::round_robin(&exe, cfg);
            let cfg = fault_args.apply(placement.sim_config(&exe, cap).max_steps(3_000_000));
            let r = Simulator::builder(&exe)
                .inputs(inputs.clone())
                .config(cfg)
                .run()
                .unwrap();
            if let Some(report) = &r.stall_report {
                println!("net={net} cap={cap}: stalled after {} steps", r.steps);
                print!(
                    "{}",
                    valpipe_machine::render_stall(report, &exe, &compiled.prov)
                );
                continue;
            }
            assert!(r.sources_exhausted, "net={net} cap={cap} must drain");
            let iv = r.timing("A").interval().expect("steady");
            println!("{:<12} {:>12} {:>10.3} {:>10.4}", net, cap, iv, 1.0 / iv);
            results.push((net, cap, iv));
        }
    }
    println!();
    if fault_args.active() {
        // Under injected faults the paper's clean-machine claims do not
        // apply; the table and stall reports above are the deliverable.
        println!("(fault plan active: claims skipped)");
        return;
    }
    let base = results
        .iter()
        .find(|&&(n, c, _)| n == 1 && c == 1)
        .unwrap()
        .2;
    let buffered = results
        .iter()
        .find(|&&(n, c, _)| n == 1 && c == 4)
        .unwrap()
        .2;
    println!(
        "CLAIM [{}] capacity-1 links lose rate to the longer ack round trip",
        if base > 2.5 { "HOLDS" } else { "FAILS" }
    );
    println!(
        "CLAIM [{}] per-link buffering recovers most of the rate (packet-pipelined networks, §2)",
        if buffered < base - 0.5 {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
}
