//! PREDICT — the paper's rate arguments as a static analysis.
//!
//! The paper derives every rate analytically (balanced pipe → 1/2, cycle
//! of `L` holding `k` → `k/L`, windows scale by selected fraction). The
//! compiler's `predict` module computes those bounds from the compiled
//! graph alone; this experiment pits the prediction against the measured
//! steady-state interval for every workload in the suite.

use valpipe_bench::workloads::*;
use valpipe_bench::FaultArgs;
use valpipe_core::predict::predict_compiled;
use valpipe_core::verify::check_against_oracle_with;
use valpipe_core::{compile_source, CompileOptions, ForIterScheme};

fn main() {
    let fault_args = FaultArgs::parse_env();
    println!("================================================================");
    println!("PREDICT: static rate analysis vs measured rates");
    println!("reproduces: the paper's analytical rate arguments (§3, §5–§7)");
    println!("================================================================");
    println!(
        "{:<28} {:>10} {:>10} {:>8}",
        "workload/output", "predicted", "measured", "err%"
    );

    let todd = {
        let mut o = CompileOptions::paper();
        o.scheme = ForIterScheme::Todd;
        o
    };
    let companion = {
        let mut o = CompileOptions::paper();
        o.scheme = ForIterScheme::Companion;
        o
    };
    let synth = {
        let mut o = CompileOptions::paper();
        o.synthesize_generators = true;
        o
    };
    let cases: Vec<(String, String, CompileOptions, &str)> = vec![
        (
            "fig2 m=64".into(),
            fig2_src(64),
            CompileOptions::paper(),
            "Y",
        ),
        (
            "fig4 m=64".into(),
            fig4_src(64),
            CompileOptions::paper(),
            "S",
        ),
        (
            "fig5 m=63".into(),
            fig5_src(63),
            CompileOptions::paper(),
            "Y",
        ),
        (
            "fig6 m=32".into(),
            fig6_src(32),
            CompileOptions::paper(),
            "A",
        ),
        ("ex2 todd m=32".into(), example2_src(32), todd, "X"),
        (
            "ex2 companion m=32".into(),
            example2_src(32),
            companion,
            "X",
        ),
        (
            "fig3 m=64 (A)".into(),
            fig3_src(64),
            CompileOptions::paper(),
            "A",
        ),
        (
            "physics m=64 (V)".into(),
            physics_src(64),
            CompileOptions::paper(),
            "V",
        ),
        (
            "chain 20 blocks".into(),
            chain_src(56, 20),
            CompileOptions::paper(),
            "S20",
        ),
        ("fig6 synth m=32".into(), fig6_src(32), synth, "A"),
    ];

    let mut worst: f64 = 0.0;
    for (label, src, opts, out) in cases {
        let compiled = compile_source(&src, &opts).expect("compiles");
        let predicted = predict_compiled(&compiled)[out];
        let inputs = inputs_for_compiled(&compiled);
        let report = match check_against_oracle_with(
            &compiled,
            &inputs,
            30,
            1e-8,
            fault_args.sim_config(),
        ) {
            Ok(r) => r,
            Err(e) => {
                println!("{label:<28} {e}");
                continue;
            }
        };
        let measured = report.run.timing(out).interval().expect("steady");
        let err = (predicted - measured).abs() / measured * 100.0;
        worst = worst.max(err);
        println!("{label:<28} {predicted:>10.3} {measured:>10.3} {err:>7.2}%");
    }
    println!();
    if fault_args.claims_skipped() {
        return;
    }
    println!(
        "CLAIM [{}] the static rate model matches simulation within 5% on every workload",
        if worst < 5.0 { "HOLDS" } else { "FAILS" }
    );
}
