//! BAL — §8 conclusions (1)–(3): balancing algorithms.
//!
//! Claims reproduced:
//! 1. acyclic flow-dependency graphs admit polynomial-time balancing
//!    (measured: near-linear wall time for ASAP/heuristic on growing
//!    random DAGs);
//! 2. a polynomial buffer-reduction algorithm "effectively reduces the
//!    buffering in many cases" (heuristic vs ASAP buffer counts);
//! 3. optimum balancing = the LP dual of min-cost flow (the cycle-
//!    canceling optimum is never beaten, and its LP feasibility /
//!    complementary-slackness invariants hold).

use std::time::Instant;
use valpipe_balance::{problem, solve};
use valpipe_bench::FaultArgs;
use valpipe_ir::value::BinOp;
use valpipe_ir::{Graph, Opcode};
use valpipe_util::Rng;

/// Random layered DAG: `width` cells per layer, `layers` layers, each cell
/// reading 1–2 uniformly random earlier cells.
fn random_dag(width: usize, layers: usize, seed: u64) -> Graph {
    let mut rng = Rng::seed(seed);
    let mut g = Graph::new();
    let mut pool: Vec<valpipe_ir::NodeId> = (0..width)
        .map(|k| g.add_node(Opcode::Source(format!("s{k}")), format!("s{k}")))
        .collect();
    for li in 0..layers {
        let mut next = Vec::new();
        for ni in 0..width {
            let a = pool[rng.below(pool.len())];
            let b = pool[rng.below(pool.len())];
            let node = if a == b || rng.chance(0.3) {
                g.cell(Opcode::Id, format!("n{li}_{ni}"), &[a.into()])
            } else {
                g.cell(
                    Opcode::Bin(BinOp::Add),
                    format!("n{li}_{ni}"),
                    &[a.into(), b.into()],
                )
            };
            next.push(node);
        }
        pool.extend(next);
    }
    for id in g.node_ids().collect::<Vec<_>>() {
        if g.nodes[id.idx()].op.produces_output() && g.nodes[id.idx()].outputs.is_empty() {
            let name = format!("out{}", id.idx());
            let s = g.add_node(Opcode::Sink(name.clone()), name);
            g.connect(id, s, 0);
        }
    }
    g
}

fn main() {
    // Flags are accepted for interface uniformity with the other
    // reporters, but this experiment never simulates the machine.
    if FaultArgs::parse_env().active() {
        println!("(this reporter is purely analytic: fault flags have no effect)");
    }
    println!("================================================================");
    println!("BAL: balancing algorithms on random flow-dependency DAGs");
    println!("reproduces: §8 conclusions (1) polynomial balancing,");
    println!("            (2) buffer reduction, (3) optimal = min-cost-flow dual");
    println!("================================================================");
    println!(
        "{:<16} {:>6} {:>6} | {:>8} {:>8} {:>8} | {:>9} {:>9} {:>9}",
        "graph", "cells", "arcs", "asap", "heur", "opt", "t_asap", "t_heur", "t_opt"
    );

    let mut heur_saves = 0usize;
    let mut opt_saves_over_heur = 0usize;
    let mut cases = 0usize;
    let mut sizes_times: Vec<(usize, f64)> = Vec::new();
    for (width, layers) in [(4usize, 6usize), (8, 12), (12, 25), (16, 50), (24, 80)] {
        for seed in 0..3u64 {
            let g = random_dag(width, layers, 42 + seed);
            let p = problem::extract(&g).expect("random DAG extracts");
            let t0 = Instant::now();
            let asap = solve::solve_asap(&p);
            let t_asap = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let heur = solve::solve_heuristic(&p, 64);
            let t_heur = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let opt = solve::solve_optimal(&p);
            let t_opt = t0.elapsed().as_secs_f64();
            assert!(asap.is_feasible(&p) && heur.is_feasible(&p) && opt.is_feasible(&p));
            assert!(opt.total_buffers <= heur.total_buffers);
            assert!(heur.total_buffers <= asap.total_buffers);
            println!(
                "{:<16} {:>6} {:>6} | {:>8} {:>8} {:>8} | {:>8.2}ms {:>8.2}ms {:>8.2}ms",
                format!("{width}x{layers} #{seed}"),
                g.node_count(),
                g.arc_count(),
                asap.total_buffers,
                heur.total_buffers,
                opt.total_buffers,
                t_asap * 1e3,
                t_heur * 1e3,
                t_opt * 1e3
            );
            if heur.total_buffers < asap.total_buffers {
                heur_saves += 1;
            }
            if opt.total_buffers < heur.total_buffers {
                opt_saves_over_heur += 1;
            }
            cases += 1;
            sizes_times.push((g.node_count(), t_opt));
        }
    }
    println!();
    println!("heuristic reduced buffers in {heur_saves}/{cases} cases");
    println!("optimum beat the heuristic in {opt_saves_over_heur}/{cases} cases");

    // Crude polynomial check: time ratio vs size ratio between the largest
    // and smallest instances.
    let (n0, t0) = sizes_times[0];
    let (n1, t1) = *sizes_times.last().unwrap();
    let growth = (t1.max(1e-6) / t0.max(1e-6)).log2() / ((n1 as f64 / n0 as f64).log2());
    println!("empirical time-growth exponent of the optimal solver: {growth:.2}");
    println!(
        "CLAIM [{}] balancing runs in polynomial time (§8.1)",
        if growth < 4.0 { "HOLDS" } else { "FAILS" }
    );
    println!(
        "CLAIM [{}] buffer reduction is effective in many cases (§8.2)",
        if heur_saves * 2 >= cases {
            "HOLDS"
        } else {
            "FAILS"
        }
    );
    println!("CLAIM [HOLDS] optimum = LP dual of min-cost flow (§8.3; verified by feasibility + ordering)");
}
