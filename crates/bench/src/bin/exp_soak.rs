//! SOAK — crash recovery: kill a long fault-injected run at a random
//! step, restore from the latest on-disk checkpoint, and demand the
//! recovered run be *bit-identical* to an uninterrupted one.
//!
//! Each trial drives the Fig. 6 workload under a seeded fault plan
//! (packet delays and duplicates — the regimes a machine survives),
//! writing a checkpoint file every few hundred instruction times. At a
//! randomly chosen kill step the session is dropped on the floor — the
//! simulated crash — and a fresh process-worth of state is rebuilt from
//! the file alone. Trials rotate through all four (run kernel, resume
//! kernel) pairs, so a checkpoint taken under the scan kernel must
//! resume exactly under the event-driven kernel and vice versa.
//!
//! Flags (see `valpipe_bench::FaultArgs`):
//!
//! * `--trials <n>` — crash/recover trials (default 4);
//! * `--fault-plan <spec>` — replace the per-trial seeded plans;
//! * `--checkpoint-every <n>` — checkpoint interval (default 250);
//! * `--checkpoint-path <file>` — where the checkpoint lives (default: a
//!   file in the system temp directory);
//! * `--restore-from <file>` — skip the soak: restore this checkpoint of
//!   the soak workload and run it to completion.

use valpipe_bench::workloads::{fig6_src, inputs_for_compiled};
use valpipe_bench::FaultArgs;
use valpipe_core::verify::stream_inputs;
use valpipe_core::{compile_source, CompileOptions};
use valpipe_ir::Graph;
use valpipe_machine::{
    FaultPlan, Kernel, ProgramInputs, RunResult, RunSpec, Session, SimConfig, Simulator, Snapshot,
};
use valpipe_util::Rng;

const KERNEL_PAIRS: [(Kernel, Kernel); 7] = [
    (Kernel::EventDriven, Kernel::EventDriven),
    (Kernel::EventDriven, Kernel::Scan),
    (Kernel::Scan, Kernel::EventDriven),
    (Kernel::Scan, Kernel::Scan),
    (Kernel::EventDriven, Kernel::ParallelEvent(2)),
    (Kernel::ParallelEvent(2), Kernel::Scan),
    (Kernel::ParallelEvent(2), Kernel::ParallelEvent(2)),
];

fn kernel_name(k: Kernel) -> &'static str {
    match k {
        Kernel::Scan => "scan",
        Kernel::EventDriven => "event",
        Kernel::ParallelEvent(_) => "parallel-event",
    }
}

fn straight_run(exe: &Graph, inputs: &ProgramInputs, cfg: &SimConfig, kernel: Kernel) -> RunResult {
    Simulator::builder(exe)
        .inputs(inputs.clone())
        .config(cfg.clone().kernel(kernel))
        .run()
        .expect("soak workload must run")
}

fn main() {
    let args = FaultArgs::parse_env();
    println!("================================================================");
    println!("SOAK: crash recovery — kill, restore, replay bit-identically");
    println!("================================================================");

    let src = fig6_src(64);
    let compiled = compile_source(&src, &CompileOptions::paper()).expect("compiles");
    let exe = compiled.executable();
    let arrays = inputs_for_compiled(&compiled);
    // 45 waves ≈ 11k instruction times uninterrupted — long enough that
    // a random kill lands deep inside the pipeline's steady state.
    let inputs = stream_inputs(&compiled, &arrays, 45);

    if let Some(path) = &args.restore_from {
        // Manual recovery: resume a previously written checkpoint of this
        // workload and run it out.
        let snap = match Snapshot::read_from(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot load '{path}': {e}");
                std::process::exit(1);
            }
        };
        println!("restoring '{path}' at step {}", snap.step());
        match Session::restore(&exe, &snap) {
            Ok(session) => {
                let r = session.drive(RunSpec::new()).expect("resumed run").result();
                println!(
                    "resumed to step {}, stop: {}, packets on A: {}",
                    r.steps,
                    r.stop,
                    r.values("A").len()
                );
                if let Some(report) = &r.stall_report {
                    print!(
                        "{}",
                        valpipe_machine::render_stall(report, &exe, &compiled.prov)
                    );
                }
            }
            Err(e) => {
                eprintln!("error: checkpoint does not fit the soak workload: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let trials = args.trials.unwrap_or(4);
    let every = args.checkpoint_every.unwrap_or(250);
    let path = args.checkpoint_path.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("valpipe_soak_{}.snap", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });

    println!();
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>14} {:>10}",
        "trial", "steps", "kill@", "restore@", "kernels", "replay"
    );

    let rng = Rng::seed(0x50AC);
    let mut all_identical = true;
    let mut cross_kernel_seen = false;
    for trial in 0..trials {
        let mut r = rng.fork(trial);
        // Delays and duplicates only: a *lost* packet wedges the pipe
        // permanently (that regime is exp_faults' subject), while these
        // plans finish — which is what a recovery soak needs.
        let plan = args.fault_plan.clone().unwrap_or_else(|| FaultPlan {
            seed: r.next_u64(),
            delay_result: 0.1,
            delay_result_max: 3,
            delay_ack: 0.05,
            delay_ack_max: 2,
            dup_result: 0.02,
            ..Default::default()
        });
        let cfg = SimConfig::new().max_steps(3_000_000).fault_plan(plan);
        let (run_kernel, resume_kernel) = KERNEL_PAIRS[(trial % 4) as usize];
        cross_kernel_seen |= run_kernel != resume_kernel;

        let reference = straight_run(&exe, &inputs, &cfg, resume_kernel);
        assert!(
            reference.steps >= 10_000,
            "soak workload too short ({} steps) to be a meaningful recovery test",
            reference.steps
        );

        // The victim: step under `run_kernel`, checkpointing to disk,
        // until the randomly drawn kill step — then drop it mid-flight.
        let kill = every + 1 + r.below((reference.steps - every - 1) as usize) as u64;
        let mut victim = Simulator::builder(&exe)
            .inputs(inputs.clone())
            .config(cfg.clone().kernel(run_kernel))
            .build()
            .expect("soak workload must build");
        while victim.now() < kill {
            victim.step().expect("victim step");
            if victim.now() % every == 0 {
                victim
                    .checkpoint()
                    .write_to(&path)
                    .expect("checkpoint write");
            }
        }
        drop(victim); // the crash

        let snap = Snapshot::read_from(&path).expect("checkpoint must be readable");
        let recovered = Session::restore_with_kernel(&exe, &snap, resume_kernel)
            .expect("checkpoint must restore")
            .drive(RunSpec::new())
            .expect("recovered run")
            .result();
        let identical = recovered == reference;
        all_identical &= identical;
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>14} {:>10}",
            trial,
            reference.steps,
            kill,
            snap.step(),
            format!(
                "{}->{}",
                kernel_name(run_kernel),
                kernel_name(resume_kernel)
            ),
            if identical { "identical" } else { "DIFFER" }
        );
        if trial == 0 {
            println!(
                "       (uninterrupted stop: {}; {} packets on A)",
                reference.stop,
                reference.values("A").len()
            );
        }
    }
    if args.checkpoint_path.is_none() {
        std::fs::remove_file(&path).ok(); // only our own temp file
    }

    println!();
    println!(
        "CLAIM [{}] a run killed at a random step and restored from its latest \
         on-disk checkpoint replays bit-identically",
        if all_identical { "HOLDS" } else { "FAILS" }
    );
    println!(
        "CLAIM [{}] checkpoints are kernel-neutral: recovery crossed the \
         scan/event-driven boundary",
        if cross_kernel_seen && all_identical {
            "HOLDS"
        } else if !cross_kernel_seen {
            "SKIPPED (fewer than 2 trials)"
        } else {
            "FAILS"
        }
    );
}
