//! FIG5 — §5 / Fig. 5: fully pipelined if-then-else with data-dependent
//! conditions.
//!
//! Claims reproduced:
//! * the gate/MERGE mapping keeps the conditional fully pipelined;
//! * the merge-control path receives its FIFO automatically (the paper:
//!   "the path over which control values flow to the merge instruction
//!   cell must include a FIFO of correct length");
//! * output order is exactly index order regardless of which arm computes
//!   each element.

use valpipe_bench::report;
use valpipe_bench::workloads::fig5_src;
use valpipe_bench::{FaultArgs, Measurement};
use valpipe_core::{compile_source, CompileOptions};
use valpipe_ir::Opcode;

fn main() {
    report::banner(
        "FIG5: pipelined conditional (dynamic gating + MERGE)",
        "Fig. 5 + Theorem 1 (§5)",
    );
    let fault_args = FaultArgs::parse_env();
    let mut rows: Vec<Measurement> = Vec::new();
    for m in [15usize, 63, 255] {
        rows.extend(fault_args.measure(
            &format!("fig5 m={m}"),
            &fig5_src(m),
            &CompileOptions::paper(),
            "Y",
            24,
        ));
    }
    report::table(&rows);

    let compiled = compile_source(&fig5_src(15), &CompileOptions::paper()).unwrap();
    let hist = compiled.graph.opcode_histogram();
    println!(
        "\ncompiled cell mix (m=15): {}",
        valpipe_ir::pretty::summary(&compiled.graph)
    );
    report::observe(
        "TGATE cells (then-arm steering)",
        hist.get("TGATE").copied().unwrap_or(0),
    );
    report::observe(
        "FGATE cells (else-arm steering)",
        hist.get("FGATE").copied().unwrap_or(0),
    );
    report::observe("MERG cells", hist.get("MERG").copied().unwrap_or(0));
    // The merge-control FIFO: a buffer on some arc into the MERGE cell.
    let merge_has_fifo_upstream = compiled.graph.node_ids().any(|n| {
        matches!(compiled.graph.nodes[n.idx()].op, Opcode::Merge)
            && compiled.graph.in_arcs(n).any(|a| {
                matches!(
                    compiled.graph.nodes[compiled.graph.arcs[a.idx()].src.idx()].op,
                    Opcode::Fifo(_)
                )
            })
    });
    if fault_args.claims_skipped() {
        return;
    }
    report::verdict(
        "conditional runs fully pipelined at rate 1/2",
        rows.iter().all(|r| (r.interval - 2.0).abs() < 0.1),
    );
    report::verdict(
        "merge control path carries a balancing FIFO",
        merge_has_fifo_upstream,
    );
}
