//! FIG3 — §4 / §8 / Theorem 4: the complete pipe-structured program
//! (Example 1 feeding Example 2) compiled as one fully pipelined machine
//! program.

use valpipe_bench::report;
use valpipe_bench::workloads::fig3_src;
use valpipe_bench::{FaultArgs, Measurement};
use valpipe_core::{compile_source, CompileOptions, ForIterScheme};

fn main() {
    report::banner(
        "FIG3: whole pipe-structured program",
        "Fig. 3 + Theorem 4 (§4, §8)",
    );
    let fault_args = FaultArgs::parse_env();
    let mut rows: Vec<Measurement> = Vec::new();
    for m in [16usize, 64, 256] {
        rows.extend(fault_args.measure(
            &format!("fig3 A m={m}"),
            &fig3_src(m),
            &CompileOptions::paper(),
            "A",
            24,
        ));
        rows.extend(fault_args.measure(
            &format!("fig3 X m={m}"),
            &fig3_src(m),
            &CompileOptions::paper(),
            "X",
            24,
        ));
    }
    // Ablation: force Todd to show the loop throttling the whole pipe.
    let mut todd = CompileOptions::paper();
    todd.scheme = ForIterScheme::Todd;
    rows.extend(fault_args.measure("fig3 A m=64 (todd)", &fig3_src(64), &todd, "A", 24));
    report::table(&rows);

    let compiled = compile_source(&fig3_src(64), &CompileOptions::paper()).unwrap();
    println!();
    report::observe(
        "flow dependency edges",
        format!("{:?}", compiled.flow.edges),
    );
    report::observe("global balancing buffers", compiled.stats.global_buffers);

    if fault_args.claims_skipped() {
        return;
    }
    let a_ok = rows
        .iter()
        .filter(|r| r.label.contains("A m=") && !r.label.contains("todd"))
        .all(|r| (r.interval - 2.0).abs() < 0.1);
    report::verdict("whole program fully pipelined (Theorem 4)", a_ok);
    report::verdict(
        "an unpipelined recurrence throttles the entire program (back-pressure)",
        rows.last().unwrap().interval > 3.0,
    );
}
