//! Measurement routines: compile a workload, verify it against the
//! oracle, and extract rate / size / traffic numbers.

use crate::workloads::inputs_for_compiled;
use serde::Serialize;
use valpipe_core::verify::check_against_oracle;
use valpipe_core::{compile_source, CompileOptions, Compiled};

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Label (scheme, size, …).
    pub label: String,
    /// Instruction cells in the compiled program (before FIFO expansion).
    pub cells: usize,
    /// Buffer stages inserted by balancing (loop + global).
    pub buffers: u64,
    /// Steady-state initiation interval of the primary output.
    pub interval: f64,
    /// Computation rate (packets per instruction time) = 1 / interval.
    pub rate: f64,
    /// Maximum relative error vs the interpreter.
    pub max_rel_err: f64,
    /// Total operation packets processed.
    pub total_fires: u64,
    /// Fraction of operation packets sent to array memories.
    pub am_fraction: f64,
    /// Instruction times simulated.
    pub steps: u64,
}

/// Compile `src`, run `waves` waves against the oracle, measure the
/// interval on `output`.
pub fn measure_program(
    label: impl Into<String>,
    src: &str,
    opts: &CompileOptions,
    output: &str,
    waves: usize,
) -> Measurement {
    let compiled = compile_source(src, opts).expect("workload compiles");
    measure_compiled(label, &compiled, output, waves)
}

/// Measure an already-compiled program.
pub fn measure_compiled(
    label: impl Into<String>,
    compiled: &Compiled,
    output: &str,
    waves: usize,
) -> Measurement {
    let inputs = inputs_for_compiled(compiled);
    let report = check_against_oracle(compiled, &inputs, waves, 1e-8).expect("oracle check");
    let interval = report
        .run
        .steady_interval(output)
        .expect("enough packets for a steady-state measurement");
    Measurement {
        label: label.into(),
        cells: compiled.graph.node_count(),
        buffers: compiled.stats.loop_buffers + compiled.stats.global_buffers,
        interval,
        rate: 1.0 / interval,
        max_rel_err: report.max_rel_err,
        total_fires: report.run.total_fires,
        am_fraction: report.run.am_traffic_fraction(),
        steps: report.run.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::fig4_src;

    #[test]
    fn measure_produces_sane_numbers() {
        let m = measure_program(
            "fig4",
            &fig4_src(16),
            &CompileOptions::paper(),
            "S",
            20,
        );
        assert!(m.cells > 5);
        assert!(m.interval > 1.9 && m.interval < 3.0);
        assert!(m.max_rel_err < 1e-8);
        assert!(m.am_fraction == 0.0);
    }
}
