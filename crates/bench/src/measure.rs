//! Measurement routines: compile a workload, verify it against the
//! oracle, and extract rate / size / traffic numbers.

use crate::workloads::inputs_for_compiled;
use valpipe_core::verify::{check_against_oracle_with, VerifyError};
use valpipe_core::{compile_source, CompileOptions, Compiled};
use valpipe_machine::SimConfig;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Label (scheme, size, …).
    pub label: String,
    /// Instruction cells in the compiled program (before FIFO expansion).
    pub cells: usize,
    /// Buffer stages inserted by balancing (loop + global).
    pub buffers: u64,
    /// Steady-state initiation interval of the primary output.
    pub interval: f64,
    /// Computation rate (packets per instruction time) = 1 / interval.
    pub rate: f64,
    /// Maximum relative error vs the interpreter.
    pub max_rel_err: f64,
    /// Total operation packets processed.
    pub total_fires: u64,
    /// Fraction of operation packets sent to array memories.
    pub am_fraction: f64,
    /// Instruction times simulated.
    pub steps: u64,
}

/// Compile `src`, run `waves` waves against the oracle, measure the
/// interval on `output`.
pub fn measure_program(
    label: impl Into<String>,
    src: &str,
    opts: &CompileOptions,
    output: &str,
    waves: usize,
) -> Measurement {
    measure_program_with(label, src, opts, output, waves, SimConfig::new()).expect("oracle check")
}

/// [`measure_program`] on a caller-supplied simulator config; a stalled
/// or mismatched run comes back as an error instead of a panic, so
/// reporters can print the stall diagnosis under an active fault plan.
pub fn measure_program_with(
    label: impl Into<String>,
    src: &str,
    opts: &CompileOptions,
    output: &str,
    waves: usize,
    sim: SimConfig,
) -> Result<Measurement, VerifyError> {
    let compiled = compile_source(src, opts).expect("workload compiles");
    measure_compiled_with(label, &compiled, output, waves, sim)
}

/// Measure an already-compiled program.
pub fn measure_compiled(
    label: impl Into<String>,
    compiled: &Compiled,
    output: &str,
    waves: usize,
) -> Measurement {
    measure_compiled_with(label, compiled, output, waves, SimConfig::new()).expect("oracle check")
}

/// [`measure_compiled`] on a caller-supplied simulator config.
pub fn measure_compiled_with(
    label: impl Into<String>,
    compiled: &Compiled,
    output: &str,
    waves: usize,
    sim: SimConfig,
) -> Result<Measurement, VerifyError> {
    let inputs = inputs_for_compiled(compiled);
    let report = check_against_oracle_with(compiled, &inputs, waves, 1e-8, sim)?;
    let interval = report
        .run
        .timing(output)
        .interval()
        .expect("enough packets for a steady-state measurement");
    Ok(Measurement {
        label: label.into(),
        cells: compiled.graph.node_count(),
        buffers: compiled.stats.loop_buffers + compiled.stats.global_buffers,
        interval,
        rate: 1.0 / interval,
        max_rel_err: report.max_rel_err,
        total_fires: report.run.total_fires,
        am_fraction: report.run.am_traffic_fraction(),
        steps: report.run.steps,
    })
}

impl Measurement {
    /// One-line JSON rendering (for EXPERIMENTS.md regeneration scripts).
    pub fn to_json(&self) -> String {
        use valpipe_util::Json;
        Json::obj([
            ("label", Json::Str(self.label.clone())),
            ("cells", Json::Int(self.cells as i64)),
            ("buffers", Json::Int(self.buffers as i64)),
            ("interval", Json::Float(self.interval)),
            ("rate", Json::Float(self.rate)),
            ("max_rel_err", Json::Float(self.max_rel_err)),
            ("total_fires", Json::Int(self.total_fires as i64)),
            ("am_fraction", Json::Float(self.am_fraction)),
            ("steps", Json::Int(self.steps as i64)),
        ])
        .to_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::fig4_src;

    #[test]
    fn measure_produces_sane_numbers() {
        let m = measure_program("fig4", &fig4_src(16), &CompileOptions::paper(), "S", 20);
        assert!(m.cells > 5);
        assert!(m.interval > 1.9 && m.interval < 3.0);
        assert!(m.max_rel_err < 1e-8);
        assert!(m.am_fraction == 0.0);
    }
}
