//! A tiny wall-clock micro-benchmark harness for the `benches/` targets.
//!
//! The workspace builds with no external crates, so the benches cannot use
//! Criterion; this gives them the 20% they need — warmup, repeated timed
//! runs, and median/min reporting — with `harness = false` plain mains.

use std::time::Instant;

/// Whether the benches run in smoke mode: `cargo bench -- --test` passes
/// `--test` through to every `harness = false` main. Smoke mode is the
/// CI hook — each bench executes its workloads once to prove they still
/// run, without spending wall time on stable statistics.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Iteration count honoring smoke mode: `full` normally, 1 under
/// `--test`.
pub fn iters(full: usize) -> usize {
    if smoke_mode() {
        1
    } else {
        full
    }
}

/// Run `f` repeatedly and print a one-line summary.
///
/// `f` is called once for warmup, then `iters` timed times. The median and
/// minimum per-iteration wall times are printed; the return value of `f` is
/// folded into a black-box sink so the compiler cannot elide the work.
pub fn bench<T>(label: &str, iters: usize, mut f: impl FnMut() -> T) {
    assert!(iters > 0, "bench needs at least one iteration");
    sink(&f()); // warmup
    let mut times: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        sink(&f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    println!(
        "{label:<40} {:>10} median   {:>10} min   ({iters} iters)",
        human(median),
        human(times[0])
    );
}

/// Like [`bench`], but also prints a throughput figure for `elements`
/// items processed per call.
pub fn bench_throughput<T>(label: &str, iters: usize, elements: u64, mut f: impl FnMut() -> T) {
    assert!(iters > 0, "bench needs at least one iteration");
    sink(&f());
    let mut times: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        sink(&f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    println!(
        "{label:<40} {:>10} median   {:>12.0} elems/s   ({iters} iters)",
        human(median),
        elements as f64 / median
    );
}

fn human(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

/// Opaque value sink: reads the value through a volatile pointer so the
/// optimizer must treat it as used.
fn sink<T>(v: &T) {
    unsafe {
        std::ptr::read_volatile(&(v as *const T));
    }
}
