//! A tiny wall-clock micro-benchmark harness for the `benches/` targets.
//!
//! The workspace builds with no external crates, so the benches cannot use
//! Criterion; this gives them the 20% they need — warmup, repeated timed
//! runs, and median/min reporting — with `harness = false` plain mains.

use std::time::Instant;

use valpipe_util::Json;

/// Whether the benches run in smoke mode: `cargo bench -- --test` passes
/// `--test` through to every `harness = false` main. Smoke mode is the
/// CI hook — each bench executes its workloads once to prove they still
/// run, without spending wall time on stable statistics.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Iteration count honoring smoke mode: `full` normally, 1 under
/// `--test`.
pub fn iters(full: usize) -> usize {
    if smoke_mode() {
        1
    } else {
        full
    }
}

/// Run `f` repeatedly and print a one-line summary.
///
/// `f` is called once for warmup, then `iters` timed times. The median and
/// minimum per-iteration wall times are printed; the return value of `f` is
/// folded into a black-box sink so the compiler cannot elide the work.
pub fn bench<T>(label: &str, iters: usize, mut f: impl FnMut() -> T) {
    assert!(iters > 0, "bench needs at least one iteration");
    sink(&f()); // warmup
    let mut times: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        sink(&f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    println!(
        "{label:<40} {:>10} median   {:>10} min   ({iters} iters)",
        human(median),
        human(times[0])
    );
}

/// Like [`bench`], but also prints a throughput figure for `elements`
/// items processed per call.
pub fn bench_throughput<T>(label: &str, iters: usize, elements: u64, mut f: impl FnMut() -> T) {
    assert!(iters > 0, "bench needs at least one iteration");
    sink(&f());
    let mut times: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        sink(&f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    println!(
        "{label:<40} {:>10} median   {:>12.0} elems/s   ({iters} iters)",
        human(median),
        elements as f64 / median
    );
}

fn human(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

/// Opaque value sink: reads the value through a volatile pointer so the
/// optimizer must treat it as used.
fn sink<T>(v: &T) {
    unsafe {
        std::ptr::read_volatile(&(v as *const T));
    }
}

/// Whether the bench should also emit machine-readable results:
/// `cargo bench -- --json` passes `--json` through to every
/// `harness = false` main.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Peak resident set size of this process so far, in bytes (Linux
/// `VmHWM`); `None` on platforms without `/proc`.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .strip_suffix("kB")?
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Machine-readable bench trajectory: one record per measured
/// configuration, written as pretty JSON to `$BENCH_JSON_PATH` (or
/// `BENCH_machine.json` in the working directory) by [`BenchLog::write`].
#[derive(Debug, Default)]
pub struct BenchLog {
    records: Vec<Json>,
}

impl BenchLog {
    /// An empty log.
    pub fn new() -> BenchLog {
        BenchLog::default()
    }

    /// Record one measured configuration. `wall_s` is the median
    /// wall-clock seconds of one full run of `steps` instruction times
    /// over a `cells`-cell, `arcs`-arc graph.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        graph: &str,
        cells: usize,
        arcs: usize,
        kernel: &str,
        workers: usize,
        steps: u64,
        wall_s: f64,
    ) {
        self.record_with(graph, cells, arcs, kernel, workers, steps, wall_s, []);
    }

    /// [`BenchLog::record`] with extra key/value fields appended to the
    /// record — the kernels bench uses it to attach epoch/shard
    /// dimensions (`epoch_cap`, `shard_policy`) and the engine's
    /// per-run counters (`epochs`, `mean_horizon`, …).
    #[allow(clippy::too_many_arguments)]
    pub fn record_with(
        &mut self,
        graph: &str,
        cells: usize,
        arcs: usize,
        kernel: &str,
        workers: usize,
        steps: u64,
        wall_s: f64,
        extras: impl IntoIterator<Item = (&'static str, Json)>,
    ) {
        let mut fields = vec![
            ("graph", Json::Str(graph.to_string())),
            ("cells", Json::Int(cells as i64)),
            ("arcs", Json::Int(arcs as i64)),
            ("kernel", Json::Str(kernel.to_string())),
            ("workers", Json::Int(workers as i64)),
            ("steps", Json::Int(steps as i64)),
            ("wall_s", Json::Float(wall_s)),
            ("steps_per_sec", Json::Float(steps as f64 / wall_s)),
        ];
        fields.extend(extras);
        self.records.push(Json::obj(fields));
    }

    /// Write the trajectory file and return the path written. The
    /// destination honours `$BENCH_JSON_PATH` so CI smoke runs can emit
    /// to a scratch path without clobbering the committed baseline; by
    /// default it lands at the workspace root (cargo runs bench binaries
    /// with the *package* directory as the working directory, so a bare
    /// relative path would scatter baselines across `crates/`).
    pub fn write(&self, bench: &str) -> std::io::Result<String> {
        let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
            match std::env::var("CARGO_MANIFEST_DIR") {
                Ok(pkg) => format!("{pkg}/../../BENCH_machine.json"),
                Err(_) => "BENCH_machine.json".to_string(),
            }
        });
        self.write_at(&path, bench)?;
        Ok(path)
    }

    /// [`BenchLog::write`] to an explicit path. The file is a *trajectory*:
    /// a JSON array that each run APPENDS its document to, so successive
    /// bench invocations accumulate history instead of overwriting it. A
    /// pre-trajectory file holding a single object is wrapped into a
    /// one-element array first; an unreadable or corrupt file starts a
    /// fresh trajectory (benches must not fail on a damaged log).
    pub fn write_at(&self, path: &str, bench: &str) -> std::io::Result<()> {
        let doc = Json::obj([
            ("bench", Json::Str(bench.to_string())),
            ("smoke", Json::Bool(smoke_mode())),
            (
                "host_cores",
                Json::Int(std::thread::available_parallelism().map_or(0, |p| p.get() as i64)),
            ),
            (
                "peak_rss_bytes",
                peak_rss_bytes().map_or(Json::Null, |b| Json::Int(b as i64)),
            ),
            ("results", Json::Arr(self.records.clone())),
        ]);
        let mut trajectory = match std::fs::read_to_string(path)
            .ok()
            .and_then(|s| Json::parse(&s).ok())
        {
            Some(Json::Arr(entries)) => entries,
            Some(old @ Json::Obj(_)) => vec![old],
            _ => Vec::new(),
        };
        trajectory.push(doc);
        std::fs::write(path, Json::Arr(trajectory).to_pretty() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_at_appends_to_the_trajectory_and_wraps_legacy_objects() {
        let path = std::env::temp_dir()
            .join(format!("valpipe_benchlog_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&path);

        // A legacy single-object file is wrapped, not clobbered.
        std::fs::write(&path, "{\"bench\": \"legacy\", \"results\": []}\n").unwrap();
        let mut log = BenchLog::new();
        log.record("g", 3, 4, "event", 1, 100, 0.5);
        log.write_at(&path, "first").unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let arr = doc.as_arr().expect("trajectory is an array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("bench").and_then(|b| b.as_str()), Some("legacy"));
        assert_eq!(arr[1].get("bench").and_then(|b| b.as_str()), Some("first"));

        // A second run appends.
        log.write_at(&path, "second").unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("bench").and_then(|b| b.as_str()), Some("second"));

        // A corrupt file starts fresh instead of failing.
        std::fs::write(&path, "not json").unwrap();
        log.write_at(&path, "fresh").unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.as_arr().unwrap().len(), 1);

        let _ = std::fs::remove_file(&path);
    }
}
